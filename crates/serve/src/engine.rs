//! Batched policy inference and the greedy serving rollout.
//!
//! One dedicated thread owns the policy network. Request workers submit
//! observations and block on a result slot; the engine thread collects
//! everything that arrives within a small batching window (default
//! 100 µs, capped at [`EngineConfig::max_batch`]) and runs the gathered
//! batch through **one** SoA forward ([`SoaMlp::forward_batch`]) — one
//! wake-up, one queue-lock round, and one batched GEMM per batch instead
//! of per observation, which is where the throughput under concurrent
//! load comes from. The SoA kernels are bit-identical to
//! [`Mlp::forward`] (pinned by the nn crate's differential suite), so
//! batching never changes a served decision. Batch sizes land in the
//! `serve.batch_size` histogram, per-batch forward time in
//! `serve.engine_ns{forward}` (kept out of the `serve.stage_ns` family,
//! whose stages tile each request's timeline — a batch serves many
//! requests at once, so its time is not any single request's segment).
//!
//! The policy path is fault-isolated end to end: forward passes run
//! under `catch_unwind` (a poisoned network answers with a typed
//! [`PolicyFault`], not a dead daemon), and the rollout applies every
//! chosen pass through `apply_checked`, recording offenders in the
//! shared quarantine table so a pass that keeps faulting on a program
//! drops out of that program's action space. Injected faults
//! ([`InferenceEngine::inject_faults`]) hit the same surface the real
//! ones do, so chaos tests exercise the production degradation path.

use autophase_core::env::{
    EnvConfig, FeatureNorm, ObservationKind, PhaseOrderEnv, RewardKind, FILTERED_PASSES,
};
use autophase_core::Quarantine;
use autophase_features::{inst_count_filtered, IncrementalFeatures, FILTERED_FEATURES};
use autophase_ir::Module;
use autophase_nn::mlp::Mlp;
use autophase_nn::{softmax, BatchWorkspace, SoaMlp};
use autophase_passes::checked::{apply_checked_changeset, FuelBudget};
use autophase_rl::online::ExperienceStep;
use autophase_rl::serving::ObsLayout;
use autophase_telemetry as telemetry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Panic payload of an injected engine crash
/// ([`InferenceEngine::inject_crashes`]) — lets test panic hooks
/// silence on-purpose crashes without hiding real ones.
pub const INJECTED_CRASH_MSG: &str = "injected engine crash (chaos)";

/// Install (once) a panic hook that swallows *injected* engine crashes —
/// payloads equal to [`INJECTED_CRASH_MSG`] — and delegates everything
/// else to the previous hook. Chaos tests crash the engine on purpose;
/// this keeps their stderr readable without hiding real failures.
pub fn quiet_crash_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| *s == INJECTED_CRASH_MSG);
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Lock a mutex, recovering from poisoning: the engine supervisor
/// respawns after panics, and a panic mid-batch must not turn every
/// later `infer` into a second panic. All data under these locks stays
/// valid across unwinds (the batch guard answers in-flight slots).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Episode length of the serving rollout (and of the training
/// configuration a served checkpoint must come from).
pub const SERVE_EPISODE_LEN: usize = 12;

/// The environment configuration a served policy is trained under. The
/// engine reproduces this observation layout exactly at inference time;
/// a checkpoint trained under any other configuration is rejected at
/// startup by the shape check.
pub fn serve_env_config() -> EnvConfig {
    EnvConfig {
        observation: ObservationKind::Combined,
        feature_norm: FeatureNorm::InstCount,
        reward: RewardKind::Log,
        episode_len: SERVE_EPISODE_LEN,
        filtered_features: true,
        filtered_passes: true,
        ..EnvConfig::default()
    }
}

/// The serving observation layout as an [`ObsLayout`] — the single
/// source of truth the engine's rollout *and* the online learner share.
/// Both sides compose observations through [`ObsLayout::compose`] and
/// shape-check networks through it, so a feature-set change that
/// widens one side without the other is caught, not silently misread.
pub fn serve_layout() -> ObsLayout {
    ObsLayout::new(
        FILTERED_FEATURES.len(),
        FILTERED_PASSES.len(),
        SERVE_EPISODE_LEN,
    )
}

/// Observation width of [`serve_env_config`]: filtered features plus the
/// action histogram.
pub fn serve_obs_dim() -> usize {
    serve_layout().obs_dim()
}

/// Action count of [`serve_env_config`].
pub fn serve_num_actions() -> usize {
    serve_layout().num_actions()
}

/// A sanity environment over `program` in the serving configuration —
/// what `serve_bench` trains on.
pub fn serve_env(programs: Vec<Module>) -> PhaseOrderEnv {
    PhaseOrderEnv::new(programs, serve_env_config())
}

/// Why the policy path could not answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyFault {
    /// A forward pass panicked (or a chaos fault was injected).
    Inference,
    /// The engine is shutting down.
    Shutdown,
}

impl std::fmt::Display for PolicyFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyFault::Inference => write!(f, "policy inference faulted"),
            PolicyFault::Shutdown => write!(f, "inference engine shut down"),
        }
    }
}

impl std::error::Error for PolicyFault {}

/// Batching knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// How long the engine thread lingers for more arrivals after the
    /// first observation of a batch.
    pub batch_window: Duration,
    /// Hard cap on observations per batch.
    pub max_batch: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            batch_window: Duration::from_micros(100),
            max_batch: 64,
        }
    }
}

/// What a traced rollout did, beyond the chosen ordering — the
/// per-request aggregates the flight recorder attaches as trace notes
/// (the rollout interleaves inference and pass application, so its
/// inner structure is aggregate counts, not timeline segments).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RolloutReport {
    /// The effective ordering (the passes that changed the module).
    pub applied: Vec<usize>,
    /// Forward passes submitted to the batching queue.
    pub infer_calls: u32,
    /// Total nanoseconds this request spent blocked on inference
    /// (enqueue → result, including batch linger).
    pub infer_wait_ns: u64,
    /// Largest engine batch any of this request's inferences was served
    /// in — 1 means every forward ran alone, larger values mean the
    /// batched GEMM actually amortized work across concurrent requests.
    pub infer_batch_max: u32,
    /// Pass applications that faulted (rolled back and quarantined).
    pub pass_faults: u32,
    /// Version of the policy that served this rollout (0 is the boot
    /// checkpoint; published versions count from 1).
    pub policy_version: u64,
    /// The rollout's steps in learner form — what the policy saw, what
    /// it chose, and the log-probability it assigned — ready to stream
    /// into the online trainer as one episode.
    pub steps: Vec<ExperienceStep>,
}

/// A successful inference: the logits, the size of the engine batch
/// that served it (for [`RolloutReport::infer_batch_max`]), and the
/// version of the policy that answered.
type Inference = (Vec<f64>, u32, u64);

type Slot = Arc<(Mutex<Option<Result<Inference, PolicyFault>>>, Condvar)>;

/// Which serving policy a job is routed to: the active policy (A) or,
/// under A/B mode, the challenger (B). Routing is decided once per
/// rollout from the program fingerprint, so a request's whole episode
/// is served by one policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    A,
    B,
}

/// A policy with its registry version, immutable once installed: swaps
/// replace the `Arc`, never the weights behind it, so a batch that
/// cloned the `Arc` keeps its exact network to the end.
struct PolicyEntry {
    version: u64,
    mlp: Mlp,
}

/// The currently installed serving policies.
#[derive(Clone)]
struct ActiveSet {
    a: Arc<PolicyEntry>,
    /// A/B challenger, absent outside A/B mode.
    b: Option<Arc<PolicyEntry>>,
}

/// Lock-free-on-the-hot-path policy slot. The engine thread caches the
/// `ActiveSet` (and its SoA mirrors) and checks one relaxed-cost atomic
/// `seq` load per *batch*; only when a swap bumped `seq` does it take
/// the lock and rebuild the mirrors. A swap therefore never lands
/// mid-batch, and steady-state serving never contends on the mutex.
struct PolicySlot {
    seq: AtomicU64,
    set: Mutex<ActiveSet>,
}

struct Job {
    obs: Vec<f64>,
    route: Route,
    slot: Slot,
}

struct Queue {
    jobs: Vec<Job>,
    shutdown: bool,
}

/// Handle to the inference thread (see module docs).
pub struct InferenceEngine {
    queue: Arc<(Mutex<Queue>, Condvar)>,
    /// Hot-swappable serving policies; `None` in baseline-only mode.
    slot: Option<Arc<PolicySlot>>,
    /// Armed chaos faults: each pending fault makes one upcoming
    /// inference answer [`PolicyFault::Inference`].
    chaos: Arc<AtomicU32>,
    /// Armed chaos crashes: each one panics the engine thread at the
    /// start of an upcoming batch (the supervisor respawns it).
    crash: Arc<AtomicU32>,
    /// Times the supervisor respawned the engine loop after a panic.
    respawns: Arc<AtomicU64>,
    /// Policy swaps installed over this engine's lifetime.
    swaps: Arc<AtomicU64>,
    episode_len: usize,
    /// Baseline-only mode: no thread, every inference answers
    /// [`PolicyFault::Inference`] so callers take the baseline rung.
    disabled: bool,
    thread: Option<JoinHandle<()>>,
}

/// Checkpoint/engine shape mismatch at startup.
#[derive(Debug)]
pub struct ShapeError(pub String);

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "policy shape error: {}", self.0)
    }
}

impl std::error::Error for ShapeError {}

impl InferenceEngine {
    /// Spawn the engine thread around a trained policy network.
    ///
    /// # Errors
    ///
    /// Rejects a policy whose input/output dimensions do not match the
    /// serving observation layout — a checkpoint from a different
    /// training configuration would silently misread every observation.
    pub fn start(policy: Mlp, cfg: EngineConfig) -> Result<InferenceEngine, ShapeError> {
        InferenceEngine::start_versioned(policy, 0, cfg)
    }

    /// [`start`](InferenceEngine::start) with an explicit registry
    /// version for the boot policy (0 means "the boot checkpoint",
    /// published versions count from 1). The version travels with every
    /// inference so experience and A/B stats attribute to the policy
    /// that actually answered.
    ///
    /// # Errors
    ///
    /// Same contract as [`start`](InferenceEngine::start).
    pub fn start_versioned(
        policy: Mlp,
        version: u64,
        cfg: EngineConfig,
    ) -> Result<InferenceEngine, ShapeError> {
        serve_layout()
            .check_policy(&policy)
            .map_err(|e| ShapeError(format!("{e} (train with serve_env_config())")))?;
        let queue = Arc::new((
            Mutex::new(Queue {
                jobs: Vec::new(),
                shutdown: false,
            }),
            Condvar::new(),
        ));
        let slot = Arc::new(PolicySlot {
            seq: AtomicU64::new(0),
            set: Mutex::new(ActiveSet {
                a: Arc::new(PolicyEntry {
                    version,
                    mlp: policy,
                }),
                b: None,
            }),
        });
        let chaos = Arc::new(AtomicU32::new(0));
        let crash = Arc::new(AtomicU32::new(0));
        let respawns = Arc::new(AtomicU64::new(0));
        let thread = {
            let queue = Arc::clone(&queue);
            let slot = Arc::clone(&slot);
            let chaos = Arc::clone(&chaos);
            let crash = Arc::clone(&crash);
            let respawns = Arc::clone(&respawns);
            std::thread::Builder::new()
                .name("serve-infer".into())
                .spawn(move || {
                    // Supervisor: a panicking engine loop (injected crash
                    // or a bug past the per-forward catch_unwind) is
                    // respawned, not fatal. In-flight batch slots were
                    // already answered by the batch guard's Drop, so no
                    // request ever hangs across a respawn. Clean return
                    // means shutdown.
                    loop {
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            engine_loop(&queue, &chaos, &crash, &slot, &cfg)
                        }));
                        if run.is_ok() {
                            return;
                        }
                        respawns.fetch_add(1, Ordering::Relaxed);
                        telemetry::incr("serve.engine", "respawn", 1);
                    }
                })
                .expect("spawn inference thread")
        };
        Ok(InferenceEngine {
            queue,
            slot: Some(slot),
            chaos,
            crash,
            respawns,
            swaps: Arc::new(AtomicU64::new(0)),
            episode_len: SERVE_EPISODE_LEN,
            disabled: false,
            thread: Some(thread),
        })
    }

    /// An engine with no policy and no thread: every inference answers
    /// [`PolicyFault::Inference`] immediately, so every request degrades
    /// to the baseline ordering. This is how the daemon keeps serving
    /// when its checkpoint is quarantined at startup.
    pub fn start_baseline_only() -> InferenceEngine {
        InferenceEngine {
            queue: Arc::new((
                Mutex::new(Queue {
                    jobs: Vec::new(),
                    shutdown: false,
                }),
                Condvar::new(),
            )),
            slot: None,
            chaos: Arc::new(AtomicU32::new(0)),
            crash: Arc::new(AtomicU32::new(0)),
            respawns: Arc::new(AtomicU64::new(0)),
            swaps: Arc::new(AtomicU64::new(0)),
            episode_len: SERVE_EPISODE_LEN,
            disabled: true,
            thread: None,
        }
    }

    /// Whether this engine was started without a policy
    /// ([`start_baseline_only`](InferenceEngine::start_baseline_only)).
    pub fn is_baseline_only(&self) -> bool {
        self.disabled
    }

    /// Arm `n` injected faults: the next `n` inferences answer
    /// [`PolicyFault::Inference`], driving their requests down the
    /// degradation ladder exactly like a real forward-pass panic.
    pub fn inject_faults(&self, n: u32) {
        self.chaos.fetch_add(n, Ordering::Relaxed);
    }

    /// Arm `n` injected crashes: each one panics the engine thread at
    /// the start of an upcoming batch. The batch degrades (its requests
    /// get [`PolicyFault::Inference`]) and the supervisor respawns the
    /// loop — exercising the full whole-thread-death recovery path.
    pub fn inject_crashes(&self, n: u32) {
        self.crash.fetch_add(n, Ordering::Relaxed);
    }

    /// How many times the supervisor has respawned the engine loop after
    /// a panic.
    pub fn respawn_count(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }

    /// Hot-swap the active policy to `policy` (registry `version`),
    /// clearing any A/B challenger. The swap is installed between
    /// batches — in-flight batches finish on the policy they started
    /// with, and no request is dropped.
    ///
    /// # Errors
    ///
    /// Rejects a policy that fails the serving-layout shape check, and
    /// any swap on a baseline-only engine (it has no serving thread to
    /// swap under).
    pub fn swap_policy(&self, policy: Mlp, version: u64) -> Result<(), ShapeError> {
        self.install(policy, version, false)
    }

    /// Install `policy` as the A/B challenger (slot B): requests
    /// hash-split between it and the active policy until
    /// [`clear_ab`](InferenceEngine::clear_ab) or a full
    /// [`swap_policy`](InferenceEngine::swap_policy).
    ///
    /// # Errors
    ///
    /// Same contract as [`swap_policy`](InferenceEngine::swap_policy).
    pub fn swap_ab(&self, policy: Mlp, version: u64) -> Result<(), ShapeError> {
        self.install(policy, version, true)
    }

    fn install(&self, policy: Mlp, version: u64, as_challenger: bool) -> Result<(), ShapeError> {
        let Some(slot) = &self.slot else {
            return Err(ShapeError(
                "baseline-only engine has no policy slot to swap".into(),
            ));
        };
        serve_layout()
            .check_policy(&policy)
            .map_err(|e| ShapeError(e.to_string()))?;
        let entry = Arc::new(PolicyEntry {
            version,
            mlp: policy,
        });
        {
            let mut set = lock_recover(&slot.set);
            if as_challenger {
                set.b = Some(entry);
            } else {
                set.a = entry;
                set.b = None;
            }
        }
        // Publish after the set is consistent; the engine thread picks
        // the new set up at its next batch boundary.
        slot.seq.fetch_add(1, Ordering::Release);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        telemetry::incr(
            "serve.engine",
            if as_challenger { "swap_ab" } else { "swap" },
            1,
        );
        Ok(())
    }

    /// Drop the A/B challenger (if any); all traffic routes to the
    /// active policy again.
    pub fn clear_ab(&self) {
        let Some(slot) = &self.slot else { return };
        let had_b = {
            let mut set = lock_recover(&slot.set);
            set.b.take().is_some()
        };
        if had_b {
            slot.seq.fetch_add(1, Ordering::Release);
        }
    }

    /// The versions currently serving: `(active, challenger)`. `None`
    /// on a baseline-only engine.
    pub fn active_versions(&self) -> Option<(u64, Option<u64>)> {
        let slot = self.slot.as_ref()?;
        let set = lock_recover(&slot.set);
        Some((set.a.version, set.b.as_ref().map(|e| e.version)))
    }

    /// Policy swaps installed over this engine's lifetime (full and
    /// A/B).
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Which slot requests for `fp` route to under the current A/B
    /// split. Stable per fingerprint (a program's episodes all land on
    /// one policy); everything routes to A outside A/B mode.
    fn route_for(&self, fp: u64) -> Route {
        let Some(slot) = &self.slot else {
            return Route::A;
        };
        if lock_recover(&slot.set).b.is_none() {
            return Route::A;
        }
        if splitmix(fp) & 1 == 0 {
            Route::A
        } else {
            Route::B
        }
    }

    /// One blocking forward pass through the batching queue: logits over
    /// the serving action space.
    ///
    /// # Errors
    ///
    /// [`PolicyFault`] when the forward pass faulted (or was injected to)
    /// or the engine is shutting down.
    pub fn infer(&self, obs: Vec<f64>) -> Result<Vec<f64>, PolicyFault> {
        self.infer_sized(obs).map(|(logits, _, _)| logits)
    }

    /// [`infer`](InferenceEngine::infer), also reporting the size of the
    /// engine batch the forward ran in (≥ 1) and the version of the
    /// policy that answered. Always routes to the active policy; the
    /// A/B split applies per rollout, not per raw inference.
    ///
    /// # Errors
    ///
    /// Same contract as [`infer`](InferenceEngine::infer).
    pub fn infer_sized(&self, obs: Vec<f64>) -> Result<Inference, PolicyFault> {
        self.infer_routed(obs, Route::A)
    }

    fn infer_routed(&self, obs: Vec<f64>, route: Route) -> Result<Inference, PolicyFault> {
        if self.disabled {
            return Err(PolicyFault::Inference);
        }
        let slot: Slot = Arc::new((Mutex::new(None), Condvar::new()));
        {
            let (lock, cv) = &*self.queue;
            let mut q = lock_recover(lock);
            if q.shutdown {
                return Err(PolicyFault::Shutdown);
            }
            q.jobs.push(Job {
                obs,
                route,
                slot: Arc::clone(&slot),
            });
            cv.notify_all();
        }
        let (lock, cv) = &*slot;
        let mut state = lock_recover(lock);
        while state.is_none() {
            state = cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        state.take().expect("slot filled")
    }

    /// Greedy policy rollout on `m` in place: `episode_len` steps of
    /// argmax actions, each chosen pass applied transactionally. Faulted
    /// applies are recorded in `quarantine` and skipped; quarantined
    /// passes are masked out of the argmax. Returns the effective
    /// ordering (the changing passes).
    ///
    /// # Errors
    ///
    /// [`PolicyFault`] if any forward pass faults — `m` is left at the
    /// last good state and the caller degrades to the baseline ordering.
    pub fn choose_sequence(
        &self,
        m: &mut Module,
        fp: u64,
        quarantine: &Quarantine,
        fuel: &FuelBudget,
    ) -> Result<Vec<usize>, PolicyFault> {
        self.choose_sequence_report(m, fp, quarantine, fuel)
            .map(|r| r.applied)
    }

    /// [`choose_sequence`](InferenceEngine::choose_sequence), plus the
    /// per-request aggregates ([`RolloutReport`]) a trace records.
    ///
    /// # Errors
    ///
    /// Same contract as [`choose_sequence`](InferenceEngine::choose_sequence).
    pub fn choose_sequence_report(
        &self,
        m: &mut Module,
        fp: u64,
        quarantine: &Quarantine,
        fuel: &FuelBudget,
    ) -> Result<RolloutReport, PolicyFault> {
        let layout = serve_layout();
        let route = self.route_for(fp);
        let mut histogram = vec![0.0f64; layout.num_actions()];
        // Incremental feature state: seeded with one full extraction,
        // then resynced from each successful apply's ChangeSet — a
        // changing pass usually dirties a few functions, not the module.
        let mut inc = IncrementalFeatures::new(m);
        let mut feats = inst_count_filtered(&inc.total());
        let mut report = RolloutReport::default();
        for _ in 0..self.episode_len {
            let obs = layout.compose(&feats, &histogram);
            let infer_start = std::time::Instant::now();
            report.infer_calls += 1;
            let (logits, batch, version) = self.infer_routed(obs.clone(), route)?;
            report.policy_version = version;
            report.infer_wait_ns += infer_start.elapsed().as_nanos() as u64;
            report.infer_batch_max = report.infer_batch_max.max(batch);
            let mut best: Option<(usize, f64)> = None;
            for (a, &score) in logits.iter().enumerate() {
                if quarantine.is_quarantined(fp, FILTERED_PASSES[a]) {
                    continue;
                }
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((a, score));
                }
            }
            // Everything quarantined for this program: nothing left to try.
            let Some((action, _)) = best else { break };
            // Record the step for the online learner: the behavior
            // log-probability is the softmax mass the serving policy
            // put on the action it (greedily) took.
            let probs = softmax(&logits);
            report.steps.push(ExperienceStep {
                obs,
                action,
                logp: probs[action].max(1e-12).ln(),
            });
            let pass = FILTERED_PASSES[action];
            match apply_checked_changeset(m, pass, fuel) {
                Ok((true, cs)) => {
                    report.applied.push(pass);
                    if cs.needs_full_rebuild() {
                        inc.rebuild(m);
                    } else {
                        inc.update(m, &cs.dirty_funcs);
                    }
                    feats = inst_count_filtered(&inc.total());
                }
                Ok((false, _)) => {}
                Err(_fault) => {
                    // Rolled back by apply_checked; remember the offender
                    // so repeat faults stop costing attempts.
                    quarantine.record_fault(fp, pass);
                    report.pass_faults += 1;
                    telemetry::incr("serve.rollout", "pass_fault", 1);
                }
            }
            histogram[action] += 1.0;
        }
        Ok(report)
    }

    /// Stop the engine thread. Queued jobs are answered with
    /// [`PolicyFault::Shutdown`]. Idempotent.
    pub fn shutdown(&mut self) {
        {
            let (lock, cv) = &*self.queue;
            let mut q = lock_recover(lock);
            q.shutdown = true;
            cv.notify_all();
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for InferenceEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn fill(slot: &Slot, result: Result<Inference, PolicyFault>) {
    let (lock, cv) = &**slot;
    *lock_recover(lock) = Some(result);
    cv.notify_all();
}

/// A drained batch with panic insurance: if the engine thread unwinds
/// mid-batch (injected crash, or a panic outside the per-forward
/// `catch_unwind`), Drop answers every not-yet-filled slot with
/// [`PolicyFault::Inference`] so those requests degrade instead of
/// hanging forever on a dead thread.
struct BatchGuard {
    jobs: Vec<Job>,
    filled: usize,
}

impl Drop for BatchGuard {
    fn drop(&mut self) {
        for job in &self.jobs[self.filled..] {
            fill(&job.slot, Err(PolicyFault::Inference));
        }
    }
}

/// SplitMix64 finalizer — the A/B hash split over program fingerprints.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The engine thread's cached view of the policy slot: the `Arc`s it
/// cloned plus their SoA mirrors, rebuilt only when the slot's `seq`
/// says a swap landed. The transpose cost is paid per swap, never per
/// batch.
struct Serving {
    seq: u64,
    a: Arc<PolicyEntry>,
    a_soa: SoaMlp,
    b: Option<(Arc<PolicyEntry>, SoaMlp)>,
}

fn refresh_serving(slot: &PolicySlot) -> Serving {
    // Read `seq` before the set: a swap bumps `seq` *after* installing,
    // so a stale `seq` paired with a newer set only causes one harmless
    // extra refresh — never a missed swap.
    let seq = slot.seq.load(Ordering::Acquire);
    let set = lock_recover(&slot.set).clone();
    let a_soa = SoaMlp::from_mlp(&set.a.mlp);
    let b = set.b.map(|e| {
        let soa = SoaMlp::from_mlp(&e.mlp);
        (e, soa)
    });
    Serving {
        seq,
        a: set.a,
        a_soa,
        b,
    }
}

/// Where a triaged job's answer comes from.
enum Verdict {
    Fault(PolicyFault),
    Row(Route, usize),
}

fn engine_loop(
    queue: &Arc<(Mutex<Queue>, Condvar)>,
    chaos: &Arc<AtomicU32>,
    crash: &Arc<AtomicU32>,
    slot: &Arc<PolicySlot>,
    cfg: &EngineConfig,
) {
    // The engine thread caches the serving policies between swaps, so
    // the SoA transpose happens once per (re)spawn or swap and every
    // batch reuses the workspaces — a gathered batch is one
    // `forward_batch` per serving policy, not max_batch separate
    // matvec chains.
    let mut serving = refresh_serving(slot);
    let mut wsa = BatchWorkspace::new();
    let mut wsb = BatchWorkspace::new();
    let (lock, cv) = &**queue;
    let mut q = lock_recover(lock);
    loop {
        while q.jobs.is_empty() && !q.shutdown {
            q = cv.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
        if q.shutdown {
            for job in q.jobs.drain(..) {
                fill(&job.slot, Err(PolicyFault::Shutdown));
            }
            return;
        }
        // Linger one batching window for more arrivals, then drain.
        if q.jobs.len() < cfg.max_batch && !cfg.batch_window.is_zero() {
            let (guard, _) = cv
                .wait_timeout(q, cfg.batch_window)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
        let take = q.jobs.len().min(cfg.max_batch);
        let mut batch = BatchGuard {
            jobs: q.jobs.drain(..take).collect(),
            filled: 0,
        };
        drop(q);

        // One armed chaos crash kills this whole batch: panic with the
        // queue lock released (never poisoned by an injected crash) and
        // the batch in the guard, whose Drop degrades its requests.
        if crash
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
        {
            telemetry::incr("serve.policy_fault", "injected_crash", 1);
            std::panic::panic_any(INJECTED_CRASH_MSG);
        }

        // Hot-swap pickup: one atomic load per batch; only a bumped
        // `seq` pays for the lock and the SoA rebuild. The swap lands
        // here — at a batch boundary — never mid-batch.
        if slot.seq.load(Ordering::Acquire) != serving.seq {
            serving = refresh_serving(slot);
            telemetry::incr("serve.engine", "swap_applied", 1);
        }

        telemetry::observe("serve.batch_size", "", batch.jobs.len() as u64);
        let t = telemetry::maybe_now();
        let batch_size = batch.jobs.len() as u32;

        // Triage in arrival order before touching the networks: armed
        // chaos faults consume exactly one inference each (same drain
        // semantics as the per-job forward had), and a wrong-width
        // observation faults its own job instead of panicking the GEMM
        // under the whole batch. Live jobs split into the A and (under
        // A/B mode) B sub-batches; a B-routed job with no challenger
        // installed falls back to A.
        let mut verdicts: Vec<Verdict> = Vec::with_capacity(batch.jobs.len());
        let (mut row_a, mut row_b) = (0usize, 0usize);
        wsa.begin(&serving.a_soa);
        if let Some((_, b_soa)) = &serving.b {
            wsb.begin(b_soa);
        }
        for job in &batch.jobs {
            let injected = chaos
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok();
            if injected {
                telemetry::incr("serve.policy_fault", "injected", 1);
                verdicts.push(Verdict::Fault(PolicyFault::Inference));
            } else if job.obs.len() != serving.a_soa.input_dim() {
                telemetry::incr("serve.policy_fault", "shape", 1);
                verdicts.push(Verdict::Fault(PolicyFault::Inference));
            } else if job.route == Route::B && serving.b.is_some() {
                wsb.push_input(&job.obs);
                verdicts.push(Verdict::Row(Route::B, row_b));
                row_b += 1;
            } else {
                wsa.push_input(&job.obs);
                verdicts.push(Verdict::Row(Route::A, row_a));
                row_a += 1;
            }
        }

        // One batched forward per serving policy. A panic faults that
        // policy's jobs only (the armed/invalid ones keep their own
        // verdicts); the workspaces are rebuilt by `begin` next batch,
        // so a torn state cannot leak forward.
        let ok_a = wsa.batch() == 0
            || catch_unwind(AssertUnwindSafe(|| serving.a_soa.forward_batch(&mut wsa)))
                .map_err(|_| {
                    telemetry::incr("serve.policy_fault", "panic", wsa.batch() as u64);
                })
                .is_ok();
        let ok_b = match &serving.b {
            Some((_, b_soa)) if wsb.batch() > 0 => {
                catch_unwind(AssertUnwindSafe(|| b_soa.forward_batch(&mut wsb)))
                    .map_err(|_| {
                        telemetry::incr("serve.policy_fault", "panic", wsb.batch() as u64);
                    })
                    .is_ok()
            }
            _ => true,
        };

        for (i, verdict) in verdicts.into_iter().enumerate() {
            let result = match verdict {
                Verdict::Fault(fault) => Err(fault),
                Verdict::Row(Route::A, r) if ok_a => {
                    Ok((wsa.logits(r).to_vec(), batch_size, serving.a.version))
                }
                Verdict::Row(Route::B, r) if ok_b => {
                    let (entry, _) = serving.b.as_ref().expect("B row implies challenger");
                    Ok((wsb.logits(r).to_vec(), batch_size, entry.version))
                }
                Verdict::Row(..) => Err(PolicyFault::Inference),
            };
            fill(&batch.jobs[i].slot, result);
            batch.filled = i + 1;
        }
        telemetry::observe_since("serve.engine_ns", "forward", t);
        q = lock_recover(lock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_passes::checked::apply_checked;

    fn test_policy(seed: u64) -> Mlp {
        Mlp::new(
            &[serve_obs_dim(), 16, serve_num_actions()],
            autophase_nn::mlp::Activation::Tanh,
            seed,
        )
    }

    #[test]
    fn rejects_mismatched_checkpoint_shape() {
        let bad = Mlp::new(&[3, 4, 2], autophase_nn::mlp::Activation::Tanh, 1);
        assert!(InferenceEngine::start(bad, EngineConfig::default()).is_err());
    }

    #[test]
    fn concurrent_inference_matches_direct_forward() {
        let policy = test_policy(7);
        let engine =
            Arc::new(InferenceEngine::start(policy.clone(), EngineConfig::default()).unwrap());
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let engine = Arc::clone(&engine);
                let policy = policy.clone();
                std::thread::spawn(move || {
                    for k in 0..20 {
                        let obs: Vec<f64> = (0..serve_obs_dim())
                            .map(|j| ((i * 31 + k * 7 + j) % 13) as f64 / 13.0)
                            .collect();
                        let got = engine.infer(obs.clone()).unwrap();
                        assert_eq!(got, policy.forward(&obs));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn wrong_width_observation_faults_its_job_not_the_engine() {
        let engine = InferenceEngine::start(test_policy(5), EngineConfig::default()).unwrap();
        assert_eq!(engine.infer(vec![0.0; 3]), Err(PolicyFault::Inference));
        // The engine keeps serving well-formed observations afterwards.
        assert!(engine.infer(vec![0.0; serve_obs_dim()]).is_ok());
    }

    #[test]
    fn infer_sized_reports_the_serving_batch() {
        let engine = InferenceEngine::start(test_policy(6), EngineConfig::default()).unwrap();
        let (logits, batch, version) = engine.infer_sized(vec![0.0; serve_obs_dim()]).unwrap();
        assert_eq!(logits.len(), serve_num_actions());
        assert_eq!(batch, 1, "a lone request is a batch of one");
        assert_eq!(version, 0, "boot policy serves as version 0");
    }

    #[test]
    fn hot_swap_changes_answers_without_dropping_requests() {
        let old = test_policy(31);
        let new = test_policy(32);
        let engine =
            Arc::new(InferenceEngine::start(old.clone(), EngineConfig::default()).unwrap());
        let obs: Vec<f64> = (0..serve_obs_dim()).map(|j| (j % 5) as f64 / 5.0).collect();
        assert_eq!(engine.infer(obs.clone()).unwrap(), old.forward(&obs));

        // Hammer inference from several threads across 20 swaps: every
        // single request must get an Ok answer from one of the two
        // policies (never a fault, never a hang).
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let obs = obs.clone();
                let old = old.clone();
                let new = new.clone();
                std::thread::spawn(move || {
                    let mut served = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let got = engine.infer(obs.clone()).expect("swap dropped a request");
                        assert!(
                            got == old.forward(&obs) || got == new.forward(&obs),
                            "answer from neither installed policy"
                        );
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        for i in 0..20 {
            let policy = if i % 2 == 0 { new.clone() } else { old.clone() };
            engine.swap_policy(policy, i + 1).unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert!(total > 0, "workers served during the swap storm");
        assert_eq!(engine.swap_count(), 20);
        assert_eq!(engine.active_versions(), Some((20, None)));
        // After the storm every answer comes from the last policy in.
        assert_eq!(engine.infer(obs.clone()).unwrap(), old.forward(&obs));
    }

    #[test]
    fn swap_rejects_wrong_shape_and_baseline_only() {
        let engine = InferenceEngine::start(test_policy(33), EngineConfig::default()).unwrap();
        let bad = Mlp::new(&[3, 4, 2], autophase_nn::mlp::Activation::Tanh, 1);
        assert!(engine.swap_policy(bad, 1).is_err());
        assert_eq!(
            engine.active_versions(),
            Some((0, None)),
            "rejected swap is a no-op"
        );

        let baseline = InferenceEngine::start_baseline_only();
        assert!(baseline.swap_policy(test_policy(34), 1).is_err());
        assert!(baseline.active_versions().is_none());
    }

    #[test]
    fn ab_mode_splits_and_reports_versions() {
        let a = test_policy(41);
        let b = test_policy(42);
        let engine = InferenceEngine::start(a.clone(), EngineConfig::default()).unwrap();
        engine.swap_ab(b.clone(), 7).unwrap();
        assert_eq!(engine.active_versions(), Some((0, Some(7))));
        // Fingerprints split across both routes; each side's rollout
        // answers carry that side's version.
        let (mut saw_a, mut saw_b) = (false, false);
        for fp in 0..32u64 {
            match engine.route_for(fp) {
                Route::A => saw_a = true,
                Route::B => saw_b = true,
            }
        }
        assert!(saw_a && saw_b, "hash split uses both slots");
        let obs: Vec<f64> = (0..serve_obs_dim()).map(|j| (j % 3) as f64).collect();
        let (logits_a, _, va) = engine.infer_routed(obs.clone(), Route::A).unwrap();
        let (logits_b, _, vb) = engine.infer_routed(obs.clone(), Route::B).unwrap();
        assert_eq!((va, vb), (0, 7));
        assert_eq!(logits_a, a.forward(&obs));
        assert_eq!(logits_b, b.forward(&obs));
        // Clearing the challenger routes everything (even B) back to A.
        engine.clear_ab();
        assert_eq!(engine.active_versions(), Some((0, None)));
        let (logits, _, v) = engine.infer_routed(obs.clone(), Route::B).unwrap();
        assert_eq!((logits, v), (a.forward(&obs), 0));
    }

    #[test]
    fn rollout_records_experience_steps() {
        let mut m = autophase_benchmarks::suite()
            .into_iter()
            .find(|b| b.name == "gsm")
            .expect("gsm present")
            .module;
        let engine = InferenceEngine::start(test_policy(51), EngineConfig::default()).unwrap();
        let fp = autophase_core::eval_cache::fingerprint_module(&m);
        let report = engine
            .choose_sequence_report(&mut m, fp, &Quarantine::default(), &FuelBudget::default())
            .unwrap();
        assert_eq!(report.steps.len(), SERVE_EPISODE_LEN);
        assert_eq!(report.policy_version, 0);
        for step in &report.steps {
            assert_eq!(step.obs.len(), serve_obs_dim());
            assert!(step.action < serve_num_actions());
            assert!(step.logp <= 0.0 && step.logp.is_finite());
        }
    }

    #[test]
    fn injected_faults_surface_and_drain() {
        let engine = InferenceEngine::start(test_policy(3), EngineConfig::default()).unwrap();
        engine.inject_faults(2);
        let obs = vec![0.0; serve_obs_dim()];
        assert_eq!(engine.infer(obs.clone()), Err(PolicyFault::Inference));
        assert_eq!(engine.infer(obs.clone()), Err(PolicyFault::Inference));
        assert!(engine.infer(obs).is_ok(), "faults must drain");
    }

    #[test]
    fn injected_crash_degrades_batch_and_respawns() {
        quiet_crash_hook();
        let engine = InferenceEngine::start(test_policy(21), EngineConfig::default()).unwrap();
        engine.inject_crashes(1);
        let obs = vec![0.0; serve_obs_dim()];
        // The crashed batch answers with a fault (never hangs) ...
        assert_eq!(engine.infer(obs.clone()), Err(PolicyFault::Inference));
        // ... and the supervisor respawns the loop, so the engine keeps
        // serving without a new handle.
        assert!(engine.infer(obs).is_ok(), "engine must survive the crash");
        assert_eq!(engine.respawn_count(), 1);
    }

    #[test]
    fn baseline_only_engine_faults_every_inference() {
        let mut engine = InferenceEngine::start_baseline_only();
        assert!(engine.is_baseline_only());
        assert_eq!(
            engine.infer(vec![0.0; serve_obs_dim()]),
            Err(PolicyFault::Inference)
        );
        // The rollout degrades up front: the first inference faults, so
        // callers fall through to the baseline ordering.
        let mut m = autophase_benchmarks::suite()
            .into_iter()
            .find(|b| b.name == "gsm")
            .expect("gsm present")
            .module;
        let fp = autophase_core::eval_cache::fingerprint_module(&m);
        let got =
            engine.choose_sequence(&mut m, fp, &Quarantine::default(), &FuelBudget::default());
        assert_eq!(got, Err(PolicyFault::Inference));
        engine.shutdown(); // no thread: must be a no-op, not a hang
    }

    #[test]
    fn shutdown_answers_instead_of_hanging() {
        let mut engine = InferenceEngine::start(test_policy(9), EngineConfig::default()).unwrap();
        engine.shutdown();
        assert_eq!(
            engine.infer(vec![0.0; serve_obs_dim()]),
            Err(PolicyFault::Shutdown)
        );
    }

    #[test]
    fn greedy_rollout_improves_a_real_program() {
        let program = autophase_benchmarks::suite()
            .into_iter()
            .find(|b| b.name == "gsm")
            .expect("gsm present")
            .module;
        let engine = InferenceEngine::start(test_policy(11), EngineConfig::default()).unwrap();
        let quarantine = Quarantine::default();
        let fuel = FuelBudget::default();
        let fp = autophase_core::eval_cache::fingerprint_module(&program);
        let mut m = program.clone();
        let seq = engine
            .choose_sequence(&mut m, fp, &quarantine, &fuel)
            .unwrap();
        // Replaying the returned effective ordering on a fresh copy gives
        // exactly the module the rollout produced.
        let mut replay = program.clone();
        for &p in &seq {
            apply_checked(&mut replay, p, &fuel).unwrap();
        }
        use autophase_ir::printer::print_module;
        assert_eq!(print_module(&replay), print_module(&m));
    }
}
