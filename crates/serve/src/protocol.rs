//! Wire protocol of the compile service.
//!
//! Text-framed, one request/reply pair at a time per connection
//! (keep-alive: a client may send any number of pairs sequentially).
//! Every message is one header line, `AUTOPHASE/1 <verb> [key=value ...]`,
//! optionally followed by a byte-exact body whose length a header key
//! announces:
//!
//! ```text
//! -> AUTOPHASE/1 COMPILE ir_len=482 deadline_ms=250 want_ir=1\n<482 bytes of IR>
//! <- AUTOPHASE/1 OK source=policy cycles=913 baseline_cycles=1310 passes=31,38,30 ir_len=390\n<390 bytes>
//! <- AUTOPHASE/1 ERR kind=overloaded msg=queue full\n
//! ```
//!
//! The body is the textual IR form produced by `autophase_ir::printer`
//! and accepted by `autophase_ir::parser` — the printer/parser round-trip
//! is lossless, so a module survives the wire bit-identically. `passes`
//! is the effective ordering (Table-1 ids of the passes that changed the
//! module), `-` when empty. `msg` is free text and always the last key.

use std::io::{self, BufRead, Write};

/// Protocol tag every message starts with.
pub const PROTOCOL: &str = "AUTOPHASE/1";

/// Hard cap on request IR size: a parse-side guard so one hostile
/// request cannot make the daemon buffer arbitrary memory.
pub const MAX_IR_LEN: usize = 4 << 20;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Compile one module: choose an ordering, predict its cycle count.
    Compile {
        /// Textual IR of the module to optimize.
        ir: String,
        /// Per-request deadline; `None` uses the server default.
        deadline_ms: Option<u64>,
        /// Return the optimized module's IR in the reply body.
        want_ir: bool,
    },
    /// Liveness probe.
    Ping,
    /// Arm injected faults (test/bench only; the server rejects it
    /// unless chaos is enabled in its config).
    Chaos {
        /// How many upcoming policy inferences fault.
        faults: u32,
        /// How many engine-thread crashes (panics mid-batch) to inject —
        /// exercises the supervisor's respawn path.
        crashes: u32,
        /// How many upcoming `PROMOTE` candidates get their checkpoint
        /// corrupted on disk first — proves the hot-swap armor
        /// quarantines the candidate and keeps the old policy serving.
        swaps: u32,
    },
    /// Ask the daemon to shut down cleanly.
    Shutdown,
    /// Fetch a telemetry registry snapshot (metrics JSONL body).
    Stats,
    /// Fetch the last `n` completed request traces (trace JSONL body).
    Trace {
        /// How many recent traces to return (server clamps to its ring
        /// capacity).
        n: usize,
    },
    /// List registry versions, the serving/challenger versions, and the
    /// per-policy A/B stats (models JSONL body).
    Model,
    /// Hot-swap the serving policy to registry version `version`
    /// (admin-gated).
    Promote {
        /// Registry version to promote.
        version: u64,
        /// Install as the A/B challenger instead of replacing the
        /// active policy.
        ab: bool,
    },
}

/// Where a compile answer came from — the degradation ladder, best first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Persistent best-ordering store hit (no inference, no profiling).
    Store,
    /// Fresh policy rollout.
    Policy,
    /// Fixed -O3-equivalent fallback (policy path faulted).
    Baseline,
}

impl Source {
    /// Wire name of this source (also the trace-outcome suffix:
    /// `ok:store`, `ok:policy`, `ok:baseline`).
    pub fn as_str(self) -> &'static str {
        match self {
            Source::Store => "store",
            Source::Policy => "policy",
            Source::Baseline => "baseline",
        }
    }

    fn parse(s: &str) -> Option<Source> {
        match s {
            "store" => Some(Source::Store),
            "policy" => Some(Source::Policy),
            "baseline" => Some(Source::Baseline),
            _ => None,
        }
    }
}

/// Typed failure classes a request can be refused with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrKind {
    /// Admission queue full: shed instead of queueing unboundedly.
    Overloaded,
    /// The request's deadline expired before an answer was ready.
    Deadline,
    /// The IR did not parse or verify.
    Parse,
    /// The header line was malformed (or chaos without chaos enabled).
    BadRequest,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrKind {
    /// Wire name of this refusal kind (also the trace-outcome suffix:
    /// `refused:deadline`, `refused:overloaded`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrKind::Overloaded => "overloaded",
            ErrKind::Deadline => "deadline",
            ErrKind::Parse => "parse",
            ErrKind::BadRequest => "bad_request",
            ErrKind::Internal => "internal",
        }
    }

    fn parse(s: &str) -> Option<ErrKind> {
        match s {
            "overloaded" => Some(ErrKind::Overloaded),
            "deadline" => Some(ErrKind::Deadline),
            "parse" => Some(ErrKind::Parse),
            "bad_request" => Some(ErrKind::BadRequest),
            "internal" => Some(ErrKind::Internal),
            _ => None,
        }
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// A compile answer.
    Compiled {
        /// Which rung of the degradation ladder answered.
        source: Source,
        /// Predicted cycle count of the optimized module.
        cycles: u64,
        /// Cycle count of the unoptimized input (for speedup math).
        baseline_cycles: u64,
        /// The effective pass ordering (changing passes, Table-1 ids).
        passes: Vec<usize>,
        /// Optimized IR when the request asked for it.
        ir: Option<String>,
    },
    /// Acknowledgement for `Ping`/`Chaos`/`Shutdown`.
    Ack,
    /// Registry snapshot: metrics JSONL, one instrument per line.
    Stats {
        /// The metrics JSONL body.
        body: String,
    },
    /// Recent request traces: trace JSONL, newest first.
    Traces {
        /// The trace JSONL body.
        body: String,
    },
    /// Model listing: models JSONL, one version per line plus a summary
    /// line (see `stats::ModelsSnapshot`).
    Models {
        /// The models JSONL body.
        body: String,
    },
    /// Typed refusal.
    Err {
        /// Failure class.
        kind: ErrKind,
        /// Server-chosen backoff hint: retrying sooner than this many
        /// milliseconds is unlikely to succeed. Sent with `overloaded`
        /// and `deadline` refusals; clients honor it in their retry
        /// policy.
        retry_ms: Option<u64>,
        /// Human-readable detail.
        msg: String,
    },
}

/// Wire-format violation while reading a message.
#[derive(Debug)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

impl From<ProtocolError> for io::Error {
    fn from(e: ProtocolError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// A parsed header line: the verb and its `key=value` pairs.
type Header<'a> = (&'a str, Vec<(&'a str, &'a str)>);

fn header_fields(line: &str) -> Result<Header<'_>, ProtocolError> {
    let line = line.trim_end_matches(['\r', '\n']);
    let rest = line
        .strip_prefix(PROTOCOL)
        .ok_or_else(|| ProtocolError(format!("bad protocol tag in {line:?}")))?;
    let rest = rest.trim_start();
    let (verb, tail) = match rest.split_once(' ') {
        Some((v, t)) => (v, t),
        None => (rest, ""),
    };
    if verb.is_empty() {
        return Err(ProtocolError("missing verb".into()));
    }
    let mut kvs = Vec::new();
    let mut tail = tail;
    while !tail.is_empty() {
        let (k, after_k) = tail
            .split_once('=')
            .ok_or_else(|| ProtocolError(format!("bare token {tail:?}")))?;
        // `msg` swallows the rest of the line (it may contain spaces);
        // every other value ends at the next space.
        if k == "msg" {
            kvs.push((k, after_k));
            break;
        }
        let (v, next) = match after_k.split_once(' ') {
            Some((v, n)) => (v, n),
            None => (after_k, ""),
        };
        kvs.push((k, v));
        tail = next;
    }
    Ok((verb, kvs))
}

fn get<'a>(kvs: &[(&str, &'a str)], key: &str) -> Option<&'a str> {
    kvs.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
}

fn get_u64(kvs: &[(&str, &str)], key: &str) -> Result<Option<u64>, ProtocolError> {
    match get(kvs, key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| ProtocolError(format!("bad {key}={v:?}"))),
    }
}

fn read_body<R: BufRead>(r: &mut R, len: usize) -> io::Result<String> {
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))
}

/// Serialize a request onto `w` (header line + body).
///
/// # Errors
///
/// Propagates write failures.
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> io::Result<()> {
    match req {
        Request::Compile {
            ir,
            deadline_ms,
            want_ir,
        } => {
            let mut line = format!("{PROTOCOL} COMPILE ir_len={}", ir.len());
            if let Some(d) = deadline_ms {
                line.push_str(&format!(" deadline_ms={d}"));
            }
            if *want_ir {
                line.push_str(" want_ir=1");
            }
            line.push('\n');
            w.write_all(line.as_bytes())?;
            w.write_all(ir.as_bytes())?;
        }
        Request::Ping => w.write_all(format!("{PROTOCOL} PING\n").as_bytes())?,
        Request::Chaos {
            faults,
            crashes,
            swaps,
        } => {
            let mut line = format!("{PROTOCOL} CHAOS n={faults}");
            if *crashes > 0 {
                line.push_str(&format!(" crash={crashes}"));
            }
            if *swaps > 0 {
                line.push_str(&format!(" swap={swaps}"));
            }
            line.push('\n');
            w.write_all(line.as_bytes())?;
        }
        Request::Shutdown => w.write_all(format!("{PROTOCOL} SHUTDOWN\n").as_bytes())?,
        Request::Stats => w.write_all(format!("{PROTOCOL} STATS\n").as_bytes())?,
        Request::Trace { n } => w.write_all(format!("{PROTOCOL} TRACE n={n}\n").as_bytes())?,
        Request::Model => w.write_all(format!("{PROTOCOL} MODEL\n").as_bytes())?,
        Request::Promote { version, ab } => {
            let mut line = format!("{PROTOCOL} PROMOTE v={version}");
            if *ab {
                line.push_str(" ab=1");
            }
            line.push('\n');
            w.write_all(line.as_bytes())?;
        }
    }
    w.flush()
}

/// Read one request from `r`. `Ok(None)` on clean EOF before any bytes
/// of a message (the client hung up between requests).
///
/// # Errors
///
/// I/O failures, or [`ProtocolError`] (as `InvalidData`) on malformed
/// headers, oversized `ir_len`, or a body that is not UTF-8.
pub fn read_request<R: BufRead>(r: &mut R) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let (verb, kvs) = header_fields(&line)?;
    match verb {
        "COMPILE" => {
            let ir_len = get_u64(&kvs, "ir_len")?
                .ok_or_else(|| ProtocolError("COMPILE without ir_len".into()))?
                as usize;
            if ir_len > MAX_IR_LEN {
                return Err(
                    ProtocolError(format!("ir_len {ir_len} exceeds cap {MAX_IR_LEN}")).into(),
                );
            }
            let deadline_ms = get_u64(&kvs, "deadline_ms")?;
            let want_ir = get(&kvs, "want_ir") == Some("1");
            let ir = read_body(r, ir_len)?;
            Ok(Some(Request::Compile {
                ir,
                deadline_ms,
                want_ir,
            }))
        }
        "PING" => Ok(Some(Request::Ping)),
        "CHAOS" => {
            let faults =
                get_u64(&kvs, "n")?.ok_or_else(|| ProtocolError("CHAOS without n".into()))?;
            let crashes = get_u64(&kvs, "crash")?.unwrap_or(0);
            let swaps = get_u64(&kvs, "swap")?.unwrap_or(0);
            Ok(Some(Request::Chaos {
                faults: faults.min(u32::MAX as u64) as u32,
                crashes: crashes.min(u32::MAX as u64) as u32,
                swaps: swaps.min(u32::MAX as u64) as u32,
            }))
        }
        "SHUTDOWN" => Ok(Some(Request::Shutdown)),
        "STATS" => Ok(Some(Request::Stats)),
        "TRACE" => {
            let n = get_u64(&kvs, "n")?.ok_or_else(|| ProtocolError("TRACE without n".into()))?;
            Ok(Some(Request::Trace {
                n: n.min(usize::MAX as u64) as usize,
            }))
        }
        "MODEL" => Ok(Some(Request::Model)),
        "PROMOTE" => {
            let version =
                get_u64(&kvs, "v")?.ok_or_else(|| ProtocolError("PROMOTE without v".into()))?;
            let ab = get(&kvs, "ab") == Some("1");
            Ok(Some(Request::Promote { version, ab }))
        }
        other => Err(ProtocolError(format!("unknown verb {other:?}")).into()),
    }
}

/// Serialize a reply onto `w` (header line + optional body).
///
/// # Errors
///
/// Propagates write failures.
pub fn write_reply<W: Write>(w: &mut W, reply: &Reply) -> io::Result<()> {
    match reply {
        Reply::Compiled {
            source,
            cycles,
            baseline_cycles,
            passes,
            ir,
        } => {
            let pass_list = if passes.is_empty() {
                "-".to_string()
            } else {
                passes
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let body = ir.as_deref().unwrap_or("");
            let line = format!(
                "{PROTOCOL} OK source={} cycles={cycles} baseline_cycles={baseline_cycles} \
                 passes={pass_list} ir_len={}\n",
                source.as_str(),
                body.len()
            );
            w.write_all(line.as_bytes())?;
            w.write_all(body.as_bytes())?;
        }
        Reply::Ack => w.write_all(format!("{PROTOCOL} OK ack=1\n").as_bytes())?,
        Reply::Stats { body } => {
            w.write_all(format!("{PROTOCOL} OK stats_len={}\n", body.len()).as_bytes())?;
            w.write_all(body.as_bytes())?;
        }
        Reply::Traces { body } => {
            w.write_all(format!("{PROTOCOL} OK traces_len={}\n", body.len()).as_bytes())?;
            w.write_all(body.as_bytes())?;
        }
        Reply::Models { body } => {
            w.write_all(format!("{PROTOCOL} OK models_len={}\n", body.len()).as_bytes())?;
            w.write_all(body.as_bytes())?;
        }
        Reply::Err {
            kind,
            retry_ms,
            msg,
        } => {
            // `msg` is always last and the only value allowed spaces; keep
            // it line-shaped so the header stays one line.
            let msg = msg.replace(['\n', '\r'], " ");
            let mut line = format!("{PROTOCOL} ERR kind={}", kind.as_str());
            if let Some(ms) = retry_ms {
                line.push_str(&format!(" retry_ms={ms}"));
            }
            line.push_str(&format!(" msg={msg}\n"));
            w.write_all(line.as_bytes())?;
        }
    }
    w.flush()
}

/// Read one reply from `r`.
///
/// # Errors
///
/// I/O failures, or [`ProtocolError`] (as `InvalidData`) on malformed
/// headers, unexpected EOF, or a body that is not UTF-8.
pub fn read_reply<R: BufRead>(r: &mut R) -> io::Result<Reply> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before reply",
        ));
    }
    let (verb, kvs) = header_fields(&line)?;
    match verb {
        "OK" => {
            if let Some(src) = get(&kvs, "source") {
                let source = Source::parse(src)
                    .ok_or_else(|| ProtocolError(format!("bad source {src:?}")))?;
                let cycles = get_u64(&kvs, "cycles")?
                    .ok_or_else(|| ProtocolError("OK without cycles".into()))?;
                let baseline_cycles = get_u64(&kvs, "baseline_cycles")?
                    .ok_or_else(|| ProtocolError("OK without baseline_cycles".into()))?;
                let passes_str =
                    get(&kvs, "passes").ok_or_else(|| ProtocolError("OK without passes".into()))?;
                let passes = if passes_str == "-" {
                    Vec::new()
                } else {
                    passes_str
                        .split(',')
                        .map(|p| {
                            p.parse()
                                .map_err(|_| ProtocolError(format!("bad pass id {p:?}")))
                        })
                        .collect::<Result<Vec<usize>, _>>()?
                };
                let ir_len = get_u64(&kvs, "ir_len")?.unwrap_or(0) as usize;
                if ir_len > MAX_IR_LEN {
                    return Err(ProtocolError(format!("reply ir_len {ir_len} over cap")).into());
                }
                let ir = if ir_len > 0 {
                    Some(read_body(r, ir_len)?)
                } else {
                    None
                };
                Ok(Reply::Compiled {
                    source,
                    cycles,
                    baseline_cycles,
                    passes,
                    ir,
                })
            } else if let Some(len) = get_u64(&kvs, "stats_len")? {
                let len = len as usize;
                if len > MAX_IR_LEN {
                    return Err(ProtocolError(format!("stats_len {len} over cap")).into());
                }
                Ok(Reply::Stats {
                    body: read_body(r, len)?,
                })
            } else if let Some(len) = get_u64(&kvs, "traces_len")? {
                let len = len as usize;
                if len > MAX_IR_LEN {
                    return Err(ProtocolError(format!("traces_len {len} over cap")).into());
                }
                Ok(Reply::Traces {
                    body: read_body(r, len)?,
                })
            } else if let Some(len) = get_u64(&kvs, "models_len")? {
                let len = len as usize;
                if len > MAX_IR_LEN {
                    return Err(ProtocolError(format!("models_len {len} over cap")).into());
                }
                Ok(Reply::Models {
                    body: read_body(r, len)?,
                })
            } else {
                Ok(Reply::Ack)
            }
        }
        "ERR" => {
            let kind_str =
                get(&kvs, "kind").ok_or_else(|| ProtocolError("ERR without kind".into()))?;
            let kind = ErrKind::parse(kind_str)
                .ok_or_else(|| ProtocolError(format!("bad kind {kind_str:?}")))?;
            let retry_ms = get_u64(&kvs, "retry_ms")?;
            let msg = get(&kvs, "msg").unwrap_or("").to_string();
            Ok(Reply::Err {
                kind,
                retry_ms,
                msg,
            })
        }
        other => Err(ProtocolError(format!("unknown reply verb {other:?}")).into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip_request(req: Request) -> Request {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let mut r = BufReader::new(buf.as_slice());
        read_request(&mut r).unwrap().expect("one request")
    }

    fn roundtrip_reply(reply: Reply) -> Reply {
        let mut buf = Vec::new();
        write_reply(&mut buf, &reply).unwrap();
        let mut r = BufReader::new(buf.as_slice());
        read_reply(&mut r).unwrap()
    }

    #[test]
    fn request_roundtrips() {
        for req in [
            Request::Compile {
                ir: "; module m\n".into(),
                deadline_ms: Some(250),
                want_ir: true,
            },
            Request::Compile {
                ir: String::new(),
                deadline_ms: None,
                want_ir: false,
            },
            Request::Ping,
            Request::Chaos {
                faults: 7,
                crashes: 0,
                swaps: 0,
            },
            Request::Chaos {
                faults: 0,
                crashes: 3,
                swaps: 0,
            },
            Request::Chaos {
                faults: 0,
                crashes: 0,
                swaps: 2,
            },
            Request::Shutdown,
            Request::Stats,
            Request::Trace { n: 32 },
            Request::Model,
            Request::Promote {
                version: 4,
                ab: false,
            },
            Request::Promote {
                version: 9,
                ab: true,
            },
        ] {
            assert_eq!(roundtrip_request(req.clone()), req);
        }
    }

    #[test]
    fn reply_roundtrips() {
        for reply in [
            Reply::Compiled {
                source: Source::Policy,
                cycles: 913,
                baseline_cycles: 1310,
                passes: vec![31, 38, 30],
                ir: Some("define i32 @main() {\n}\n".into()),
            },
            Reply::Compiled {
                source: Source::Store,
                cycles: 1,
                baseline_cycles: 1,
                passes: vec![],
                ir: None,
            },
            Reply::Ack,
            Reply::Stats {
                body: "{\"type\":\"counter\",\"name\":\"serve.req\",\"value\":3}\n".into(),
            },
            Reply::Traces {
                body: "{\"type\":\"trace\",\"id\":0,\"stages\":[[\"parse\",10]]}\n".into(),
            },
            Reply::Models {
                body: "{\"type\":\"model\",\"version\":1,\"active\":true}\n".into(),
            },
            Reply::Err {
                kind: ErrKind::Overloaded,
                retry_ms: None,
                msg: "queue full (cap 64)".into(),
            },
            Reply::Err {
                kind: ErrKind::Overloaded,
                retry_ms: Some(50),
                msg: "queue full (cap 64)".into(),
            },
            Reply::Err {
                kind: ErrKind::Deadline,
                retry_ms: Some(u64::MAX),
                msg: String::new(),
            },
        ] {
            assert_eq!(roundtrip_reply(reply.clone()), reply);
        }
    }

    #[test]
    fn hostile_retry_ms_values_are_rejected_or_bounded() {
        // Non-numeric, negative, overflowing, and empty values must be
        // typed protocol errors, never panics or silent zeroes.
        for bad in [
            "AUTOPHASE/1 ERR kind=overloaded retry_ms=abc msg=x\n",
            "AUTOPHASE/1 ERR kind=overloaded retry_ms=-5 msg=x\n",
            "AUTOPHASE/1 ERR kind=overloaded retry_ms=99999999999999999999999 msg=x\n",
            "AUTOPHASE/1 ERR kind=overloaded retry_ms= msg=x\n",
            "AUTOPHASE/1 ERR kind=overloaded retry_ms=1.5 msg=x\n",
        ] {
            let mut r = BufReader::new(bad.as_bytes());
            assert!(read_reply(&mut r).is_err(), "accepted {bad:?}");
        }
        // u64::MAX is representable: parses, and the client clamps it.
        let line = format!("AUTOPHASE/1 ERR kind=deadline retry_ms={} msg=\n", u64::MAX);
        let mut r = BufReader::new(line.as_bytes());
        match read_reply(&mut r).unwrap() {
            Reply::Err { retry_ms, .. } => assert_eq!(retry_ms, Some(u64::MAX)),
            other => panic!("expected ERR, got {other:?}"),
        }
        // retry_ms tucked inside msg is data, not a hint.
        let mut r =
            BufReader::new(&b"AUTOPHASE/1 ERR kind=deadline msg=try retry_ms=10 later\n"[..]);
        match read_reply(&mut r).unwrap() {
            Reply::Err { retry_ms, msg, .. } => {
                assert_eq!(retry_ms, None);
                assert_eq!(msg, "try retry_ms=10 later");
            }
            other => panic!("expected ERR, got {other:?}"),
        }
    }

    #[test]
    fn eof_between_requests_is_clean() {
        let mut r = BufReader::new(&b""[..]);
        assert!(read_request(&mut r).unwrap().is_none());
    }

    #[test]
    fn malformed_headers_are_errors_not_panics() {
        for bad in [
            "HTTP/1.1 GET /\n",
            "AUTOPHASE/1\n",
            "AUTOPHASE/1 COMPILE\n",
            "AUTOPHASE/1 COMPILE ir_len=notanumber\n",
            "AUTOPHASE/1 COMPILE ir_len=99999999999\n",
            "AUTOPHASE/1 NOSUCHVERB a=b\n",
            "AUTOPHASE/1 CHAOS\n",
            "AUTOPHASE/1 TRACE\n",
            "AUTOPHASE/1 TRACE n=abc\n",
            "AUTOPHASE/1 PROMOTE\n",
            "AUTOPHASE/1 PROMOTE v=abc\n",
            "AUTOPHASE/1 CHAOS n=1 swap=notanumber\n",
        ] {
            let mut r = BufReader::new(bad.as_bytes());
            assert!(read_request(&mut r).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn truncated_body_is_an_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"AUTOPHASE/1 COMPILE ir_len=100\nshort");
        let mut r = BufReader::new(buf.as_slice());
        assert!(read_request(&mut r).is_err());
    }

    #[test]
    fn err_msg_preserves_spaces_and_strips_newlines() {
        let got = roundtrip_reply(Reply::Err {
            kind: ErrKind::Internal,
            retry_ms: None,
            msg: "a b\nc".into(),
        });
        assert_eq!(
            got,
            Reply::Err {
                kind: ErrKind::Internal,
                retry_ms: None,
                msg: "a b c".into(),
            }
        );
    }
}
