//! Blocking client for the compile service.
//!
//! One [`Client`] wraps one keep-alive connection; requests on it are
//! sequential (the protocol is one outstanding request per connection).
//! Load generators open one client per thread.
//!
//! Every socket operation is bounded: [`ClientConfig`] sets connect,
//! read, and write timeouts (all on by default — a wedged daemon costs
//! a timeout, never a hang). For callers that want the service to look
//! reliable across transient failures, [`RetryingClient`] wraps
//! connect-per-need and jittered-exponential retry under a total
//! [`RetryPolicy::budget`], honoring the server's `retry_ms=` hint on
//! `overloaded`/`deadline` refusals.

use crate::protocol::{self, ErrKind, Reply, Request, Source};
use crate::stats::{ModelsSnapshot, StatsSnapshot};
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A compile answer (the `OK source=...` reply, destructured).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileReply {
    /// Which rung of the degradation ladder answered.
    pub source: Source,
    /// Predicted cycle count of the optimized module.
    pub cycles: u64,
    /// Cycle count of the unoptimized input.
    pub baseline_cycles: u64,
    /// The effective pass ordering.
    pub passes: Vec<usize>,
    /// Optimized IR when requested.
    pub ir: Option<String>,
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Io(std::io::Error),
    /// The server refused with a typed error.
    Server {
        /// Refusal class.
        kind: ErrKind,
        /// Server-suggested wait before retrying, when it gave one.
        retry_ms: Option<u64>,
        /// Server-provided detail.
        msg: String,
    },
}

impl ClientError {
    fn server(kind: ErrKind, retry_ms: Option<u64>, msg: String) -> ClientError {
        ClientError::Server {
            kind,
            retry_ms,
            msg,
        }
    }

    /// Whether retrying this failure can help: transport errors (the
    /// daemon may be restarting) and load-shedding refusals
    /// (`overloaded`, `deadline`). Semantic refusals (`parse`,
    /// `bad_request`) never become retryable by waiting.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Server { kind, .. } => {
                matches!(kind, ErrKind::Overloaded | ErrKind::Deadline)
            }
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client io: {e}"),
            ClientError::Server { kind, msg, .. } => write!(f, "server refused ({kind:?}): {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Per-connection socket timeouts. Everything is bounded by default;
/// `None` disables that bound (for debuggers stepping the daemon).
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Cap on establishing the TCP connection (per resolved address).
    pub connect_timeout: Option<Duration>,
    /// Cap on any single reply read.
    pub read_timeout: Option<Duration>,
    /// Cap on any single request write.
    pub write_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(2)),
            // Compiles can legitimately take a while under load; reads
            // are bounded generously, not tightly.
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// One keep-alive connection to a daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a daemon with the default [`ClientConfig`] timeouts.
    ///
    /// # Errors
    ///
    /// Connection failures (including connect timeout).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        Client::connect_with(addr, &ClientConfig::default())
    }

    /// Connect to a daemon with explicit socket timeouts.
    ///
    /// # Errors
    ///
    /// Connection failures; every resolved address is tried before
    /// giving up with the last error.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        cfg: &ClientConfig,
    ) -> Result<Client, ClientError> {
        let stream = match cfg.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(limit) => {
                let mut last: Option<std::io::Error> = None;
                let mut stream = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, limit) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match stream {
                    Some(s) => s,
                    None => {
                        return Err(ClientError::Io(last.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to nothing",
                            )
                        })))
                    }
                }
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(cfg.read_timeout)?;
        stream.set_write_timeout(cfg.write_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Cap how long any single reply read may block.
    ///
    /// # Errors
    ///
    /// Propagates `set_read_timeout` failures.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Reply, ClientError> {
        protocol::write_request(&mut self.writer, req)?;
        Ok(protocol::read_reply(&mut self.reader)?)
    }

    /// Compile one module (textual IR).
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Server`] with the typed
    /// refusal (`overloaded`, `deadline`, `parse`, ...).
    pub fn compile(
        &mut self,
        ir: &str,
        deadline_ms: Option<u64>,
        want_ir: bool,
    ) -> Result<CompileReply, ClientError> {
        let reply = self.roundtrip(&Request::Compile {
            ir: ir.to_string(),
            deadline_ms,
            want_ir,
        })?;
        match reply {
            Reply::Compiled {
                source,
                cycles,
                baseline_cycles,
                passes,
                ir,
            } => Ok(CompileReply {
                source,
                cycles,
                baseline_cycles,
                passes,
                ir,
            }),
            Reply::Err {
                kind,
                retry_ms,
                msg,
            } => Err(ClientError::server(kind, retry_ms, msg)),
            _ => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "non-compile reply to a compile",
            ))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Reply::Ack => Ok(()),
            Reply::Err {
                kind,
                retry_ms,
                msg,
            } => Err(ClientError::server(kind, retry_ms, msg)),
            _ => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected reply to a ping",
            ))),
        }
    }

    /// Fetch a parsed telemetry snapshot (`STATS`). Answers even when
    /// the daemon is saturated — the verb bypasses admission.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        Ok(StatsSnapshot::parse(&self.stats_raw()?))
    }

    /// Fetch the raw metrics-JSONL body of a `STATS` reply.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal.
    pub fn stats_raw(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Reply::Stats { body } => Ok(body),
            Reply::Err {
                kind,
                retry_ms,
                msg,
            } => Err(ClientError::server(kind, retry_ms, msg)),
            _ => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected reply to stats",
            ))),
        }
    }

    /// Fetch the last `n` completed request traces as trace JSONL,
    /// newest first (`TRACE n=<k>`; the server clamps to its ring
    /// capacity).
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal.
    pub fn traces(&mut self, n: usize) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Trace { n })? {
            Reply::Traces { body } => Ok(body),
            Reply::Err {
                kind,
                retry_ms,
                msg,
            } => Err(ClientError::server(kind, retry_ms, msg)),
            _ => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected reply to trace",
            ))),
        }
    }

    /// Arm `n` injected policy faults (server must run with chaos on).
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal (chaos disabled).
    pub fn chaos(&mut self, faults: u32) -> Result<(), ClientError> {
        self.chaos_full(faults, 0, 0)
    }

    /// Arm `n` injected engine crashes: each one panics the engine
    /// thread at an upcoming batch (the daemon's supervisor respawns
    /// it). Server must run with chaos on.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal (chaos disabled).
    pub fn chaos_crash(&mut self, crashes: u32) -> Result<(), ClientError> {
        self.chaos_full(0, crashes, 0)
    }

    /// Arm `n` swap corruptions: each upcoming `PROMOTE` candidate is
    /// corrupted on disk before its armored load, which must quarantine
    /// it while the old policy keeps serving. Server must run with
    /// chaos on.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal (chaos disabled).
    pub fn chaos_swap(&mut self, swaps: u32) -> Result<(), ClientError> {
        self.chaos_full(0, 0, swaps)
    }

    fn chaos_full(&mut self, faults: u32, crashes: u32, swaps: u32) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Chaos {
            faults,
            crashes,
            swaps,
        })? {
            Reply::Ack => Ok(()),
            Reply::Err {
                kind,
                retry_ms,
                msg,
            } => Err(ClientError::server(kind, retry_ms, msg)),
            _ => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected reply to chaos",
            ))),
        }
    }

    /// Fetch the parsed model snapshot (`MODEL`): registry versions,
    /// per-version win/insert rates, and what the engine serves now.
    /// Bypasses admission like the other introspection verbs.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal.
    pub fn models(&mut self) -> Result<ModelsSnapshot, ClientError> {
        Ok(ModelsSnapshot::parse(&self.models_raw()?))
    }

    /// Fetch the raw JSONL body of a `MODEL` reply.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal.
    pub fn models_raw(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Model)? {
            Reply::Models { body } => Ok(body),
            Reply::Err {
                kind,
                retry_ms,
                msg,
            } => Err(ClientError::server(kind, retry_ms, msg)),
            _ => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected reply to model",
            ))),
        }
    }

    /// Promote registry version `v` to the active serving policy
    /// (`PROMOTE v=<n>`; daemon must run with admin on).
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal — `bad_request` when admin
    /// is off or the version does not exist, `internal` when the
    /// candidate was quarantined or failed validation (the old policy
    /// keeps serving).
    pub fn promote(&mut self, version: u64) -> Result<(), ClientError> {
        self.promote_inner(version, false)
    }

    /// Install registry version `v` as the B-side challenger for A/B
    /// serving (`PROMOTE v=<n> ab=1`; daemon must run with admin on).
    ///
    /// # Errors
    ///
    /// Same contract as [`promote`](Client::promote).
    pub fn promote_ab(&mut self, version: u64) -> Result<(), ClientError> {
        self.promote_inner(version, true)
    }

    fn promote_inner(&mut self, version: u64, ab: bool) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Promote { version, ab })? {
            Reply::Ack => Ok(()),
            Reply::Err {
                kind,
                retry_ms,
                msg,
            } => Err(ClientError::server(kind, retry_ms, msg)),
            _ => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected reply to promote",
            ))),
        }
    }

    /// Ask the daemon to shut down cleanly.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Reply::Ack => Ok(()),
            Reply::Err {
                kind,
                retry_ms,
                msg,
            } => Err(ClientError::server(kind, retry_ms, msg)),
            _ => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected reply to shutdown",
            ))),
        }
    }
}

/// Retry shape for [`RetryingClient`]: jittered exponential backoff
/// under a hard attempt cap and a total sleep budget.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 means no retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff — also clamps the server's
    /// `retry_ms=` hint, so a hostile hint cannot park the client.
    pub max_backoff: Duration,
    /// Total time the policy may spend sleeping across all retries of
    /// one call; a backoff that would exceed it fails fast instead.
    pub budget: Duration,
    /// Seed of the jitter stream — retries are deterministic per seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            budget: Duration::from_secs(10),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no sleeping).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            budget: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }
}

/// A self-healing client: connects lazily, reconnects after transport
/// errors, and retries retryable failures ([`ClientError::is_retryable`])
/// with jittered exponential backoff. When the server's refusal carries
/// a `retry_ms=` hint, the hint (clamped to
/// [`RetryPolicy::max_backoff`]) replaces the exponential delay.
pub struct RetryingClient {
    addr: String,
    cfg: ClientConfig,
    policy: RetryPolicy,
    rng: u64,
    conn: Option<Client>,
}

impl RetryingClient {
    /// A retrying client for `addr` with default timeouts and policy.
    pub fn new(addr: impl Into<String>) -> RetryingClient {
        RetryingClient::with(addr, ClientConfig::default(), RetryPolicy::default())
    }

    /// A retrying client with explicit timeouts and retry policy.
    pub fn with(addr: impl Into<String>, cfg: ClientConfig, policy: RetryPolicy) -> RetryingClient {
        let rng = policy.seed | 1;
        RetryingClient {
            addr: addr.into(),
            cfg,
            policy,
            rng,
            conn: None,
        }
    }

    fn conn(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            self.conn = Some(Client::connect_with(&*self.addr, &self.cfg)?);
        }
        Ok(self.conn.as_mut().expect("connection just established"))
    }

    /// Compile with retries. Note a retried compile may execute twice
    /// server-side; compiles are idempotent (same IR, same answer
    /// modulo degradation rung), so this is safe.
    ///
    /// # Errors
    ///
    /// The final attempt's error once attempts or budget run out, or
    /// immediately for non-retryable failures.
    pub fn compile(
        &mut self,
        ir: &str,
        deadline_ms: Option<u64>,
        want_ir: bool,
    ) -> Result<CompileReply, ClientError> {
        self.retry(|c| c.compile(ir, deadline_ms, want_ir))
    }

    /// Ping with retries.
    ///
    /// # Errors
    ///
    /// Same contract as [`compile`](RetryingClient::compile).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.retry(Client::ping)
    }

    fn retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let start = Instant::now();
        let mut attempt = 0u32;
        loop {
            let result = match self.conn() {
                Ok(client) => op(client),
                Err(e) => Err(e),
            };
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            if matches!(err, ClientError::Io(_)) {
                // The connection is in an unknown state: drop it and
                // reconnect on the next attempt.
                self.conn = None;
            }
            attempt += 1;
            if !err.is_retryable() || attempt >= self.policy.max_attempts {
                return Err(err);
            }
            let hint = match &err {
                ClientError::Server { retry_ms, .. } => *retry_ms,
                ClientError::Io(_) => None,
            };
            let delay = self.backoff(attempt, hint);
            if start.elapsed() + delay > self.policy.budget {
                return Err(err);
            }
            std::thread::sleep(delay);
        }
    }

    /// Delay before retry number `attempt` (1-based): the server hint
    /// when present, otherwise `base * 2^(attempt-1)` jittered uniformly
    /// down to half — both clamped to `max_backoff`.
    fn backoff(&mut self, attempt: u32, hint_ms: Option<u64>) -> Duration {
        if let Some(ms) = hint_ms {
            return Duration::from_millis(ms).min(self.policy.max_backoff);
        }
        let exp = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(20))
            .min(self.policy.max_backoff);
        let nanos = exp.as_nanos().min(u128::from(u64::MAX)) as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        // SplitMix64 jitter stream: uniform in [nanos/2, nanos].
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let span = nanos / 2;
        Duration::from_nanos(nanos - span + (z % (span + 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_clamps_and_honors_hints() {
        let mut c = RetryingClient::new("127.0.0.1:1");
        let b1 = c.backoff(1, None);
        let b2 = c.backoff(2, None);
        let b3 = c.backoff(3, None);
        // Jittered exponential: each delay lands in [base*2^k/2, base*2^k].
        let base = c.policy.base_backoff;
        assert!(b1 >= base / 2 && b1 <= base, "b1={b1:?}");
        assert!(b2 >= base && b2 <= base * 2, "b2={b2:?}");
        assert!(b3 >= base * 2 && b3 <= base * 4, "b3={b3:?}");
        // A huge attempt number clamps to max_backoff, no overflow.
        assert!(c.backoff(60, None) <= c.policy.max_backoff);
        // Server hints are taken verbatim but clamped: a hostile hint
        // cannot park the client past max_backoff.
        assert_eq!(c.backoff(1, Some(40)), Duration::from_millis(40));
        assert_eq!(c.backoff(1, Some(u64::MAX)), c.policy.max_backoff);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let seq = |seed: u64| -> Vec<Duration> {
            let mut c = RetryingClient::with(
                "127.0.0.1:1",
                ClientConfig::default(),
                RetryPolicy {
                    seed,
                    ..RetryPolicy::default()
                },
            );
            (1..=4).map(|a| c.backoff(a, None)).collect()
        };
        assert_eq!(seq(7), seq(7), "same seed, same delays");
        assert_ne!(seq(7), seq(8), "different seed, different jitter");
    }

    #[test]
    fn retryability_is_typed() {
        assert!(ClientError::Io(std::io::Error::other("x")).is_retryable());
        let refused = |kind| ClientError::server(kind, None, String::new());
        assert!(refused(ErrKind::Overloaded).is_retryable());
        assert!(refused(ErrKind::Deadline).is_retryable());
        assert!(!refused(ErrKind::Parse).is_retryable());
        assert!(!refused(ErrKind::BadRequest).is_retryable());
        assert!(!refused(ErrKind::Internal).is_retryable());
    }

    #[test]
    fn retry_gives_up_when_nothing_listens() {
        // Port 1 refuses immediately: the retrying client should make
        // its attempts and fail with Io, not hang.
        let mut c = RetryingClient::with(
            "127.0.0.1:1",
            ClientConfig::default(),
            RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
        );
        match c.ping() {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
