//! Blocking client for the compile service.
//!
//! One [`Client`] wraps one keep-alive connection; requests on it are
//! sequential (the protocol is one outstanding request per connection).
//! Load generators open one client per thread.

use crate::protocol::{self, ErrKind, Reply, Request, Source};
use crate::stats::StatsSnapshot;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A compile answer (the `OK source=...` reply, destructured).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileReply {
    /// Which rung of the degradation ladder answered.
    pub source: Source,
    /// Predicted cycle count of the optimized module.
    pub cycles: u64,
    /// Cycle count of the unoptimized input.
    pub baseline_cycles: u64,
    /// The effective pass ordering.
    pub passes: Vec<usize>,
    /// Optimized IR when requested.
    pub ir: Option<String>,
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Io(std::io::Error),
    /// The server refused with a typed error.
    Server {
        /// Refusal class.
        kind: ErrKind,
        /// Server-provided detail.
        msg: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client io: {e}"),
            ClientError::Server { kind, msg } => write!(f, "server refused ({kind:?}): {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One keep-alive connection to a daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a daemon.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Cap how long any single reply read may block.
    ///
    /// # Errors
    ///
    /// Propagates `set_read_timeout` failures.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Reply, ClientError> {
        protocol::write_request(&mut self.writer, req)?;
        Ok(protocol::read_reply(&mut self.reader)?)
    }

    /// Compile one module (textual IR).
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Server`] with the typed
    /// refusal (`overloaded`, `deadline`, `parse`, ...).
    pub fn compile(
        &mut self,
        ir: &str,
        deadline_ms: Option<u64>,
        want_ir: bool,
    ) -> Result<CompileReply, ClientError> {
        let reply = self.roundtrip(&Request::Compile {
            ir: ir.to_string(),
            deadline_ms,
            want_ir,
        })?;
        match reply {
            Reply::Compiled {
                source,
                cycles,
                baseline_cycles,
                passes,
                ir,
            } => Ok(CompileReply {
                source,
                cycles,
                baseline_cycles,
                passes,
                ir,
            }),
            Reply::Err { kind, msg } => Err(ClientError::Server { kind, msg }),
            _ => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "non-compile reply to a compile",
            ))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Reply::Ack => Ok(()),
            Reply::Err { kind, msg } => Err(ClientError::Server { kind, msg }),
            _ => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected reply to a ping",
            ))),
        }
    }

    /// Fetch a parsed telemetry snapshot (`STATS`). Answers even when
    /// the daemon is saturated — the verb bypasses admission.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        Ok(StatsSnapshot::parse(&self.stats_raw()?))
    }

    /// Fetch the raw metrics-JSONL body of a `STATS` reply.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal.
    pub fn stats_raw(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Reply::Stats { body } => Ok(body),
            Reply::Err { kind, msg } => Err(ClientError::Server { kind, msg }),
            _ => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected reply to stats",
            ))),
        }
    }

    /// Fetch the last `n` completed request traces as trace JSONL,
    /// newest first (`TRACE n=<k>`; the server clamps to its ring
    /// capacity).
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal.
    pub fn traces(&mut self, n: usize) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Trace { n })? {
            Reply::Traces { body } => Ok(body),
            Reply::Err { kind, msg } => Err(ClientError::Server { kind, msg }),
            _ => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected reply to trace",
            ))),
        }
    }

    /// Arm `n` injected policy faults (server must run with chaos on).
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal (chaos disabled).
    pub fn chaos(&mut self, faults: u32) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Chaos { faults })? {
            Reply::Ack => Ok(()),
            Reply::Err { kind, msg } => Err(ClientError::Server { kind, msg }),
            _ => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected reply to chaos",
            ))),
        }
    }

    /// Ask the daemon to shut down cleanly.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed refusal.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Reply::Ack => Ok(()),
            Reply::Err { kind, msg } => Err(ClientError::Server { kind, msg }),
            _ => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected reply to shutdown",
            ))),
        }
    }
}
