//! The daemon: TCP listener, bounded admission, and the request pipeline.
//!
//! Each connection gets a handler thread that reads framed requests in a
//! loop (keep-alive); connections beyond `max_conns` are refused with a
//! typed `overloaded` reply so the thread count stays bounded. Admission
//! per request is a counting gate: `workers` requests
//! execute concurrently, at most `queue_cap` more may wait, and anything
//! beyond that is shed immediately with a typed `overloaded` reply —
//! the queue never grows without bound, and the wait is bounded by the
//! request's deadline (a request whose deadline expires while queued is
//! answered `deadline`, not silently dropped).
//!
//! The compile pipeline walks the degradation ladder:
//!
//! 1. **store** — fingerprint the parsed module and serve the persistent
//!    best-known ordering: no inference, no profiling, O(1). A hit that
//!    must carry IR replays the stored passes first; if one no longer
//!    applies cleanly the entry is retired and the request recomputes
//!    cold, so a reply's IR always matches its reported numbers.
//! 2. **policy** — greedy batched-inference rollout
//!    ([`crate::engine::InferenceEngine::choose_sequence`]), every pass
//!    applied transactionally with quarantine bookkeeping.
//! 3. **baseline** — if the policy path faults, fall back to the fixed
//!    fault-isolated -O3 ordering (`autophase_passes::o3::o3_checked`)
//!    and still answer inside the deadline.
//!
//! # Request tracing
//!
//! Every compile request carries a [`telemetry::TraceBuilder`] with a
//! monotonic id. Stage marks (`queue_wait → parse → store → [replay |
//! baseline_profile → rollout → profile → record] → reply_write`) close
//! consecutive segments of the request's timeline, so per-stage
//! durations sum *exactly* to the end-to-end time. Completed traces are
//! recorded into per-stage `serve.stage_ns{...}` histograms (plus
//! `serve.stage_ns{total}`) and pushed into the flight recorder's ring,
//! where the `TRACE` verb reads them and fault/refusal/slow triggers
//! dump them (with ring context) to JSONL artifacts. `STATS` answers
//! with the registry snapshot as metrics JSONL. Both introspection verbs
//! bypass the admission gate — they must answer precisely when the
//! daemon is drowning. Requests are counted per outcome in
//! `serve.req{...}`; the waiting count lives in the `serve.queue_depth`
//! gauge.

use crate::engine::{serve_layout, EngineConfig, InferenceEngine};
use crate::learner::{Learner, LearnerConfig};
use crate::protocol::{self, ErrKind, Reply, Request, Source};
use crate::store::{BestEntry, BestStore, CompactionPolicy};
use autophase_core::eval_cache::fingerprint_module;
use autophase_core::Quarantine;
use autophase_hls::profile::profile_module;
use autophase_hls::HlsConfig;
use autophase_ir::parser::parse_module;
use autophase_ir::printer::print_module;
use autophase_ir::verify::verify_module;
use autophase_ir::Module;

use autophase_nn::mlp::Mlp;
use autophase_passes::checked::{apply_checked, FuelBudget};
use autophase_passes::o3::o3_checked;
use autophase_rl::checkpoint::ArmoredLoad;
use autophase_rl::online::Experience;
use autophase_rl::registry::{ModelRegistry, VersionInfo};
use autophase_telemetry as telemetry;
use autophase_telemetry::{FlightConfig, FlightRecorder, TraceBuilder};
use std::collections::{BTreeSet, HashMap};
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Lock a mutex, recovering from poisoning. Handler threads share the
/// store, connection table, and record-backoff state; a panic in one
/// handler must degrade that one request, not wedge every later one.
/// The data under these locks stays consistent across unwinds (the
/// store appends before it acks; maps are update-in-place).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Concurrent in-flight compile requests.
    pub workers: usize,
    /// Requests allowed to wait for a worker before shedding.
    pub queue_cap: usize,
    /// Concurrent connections (each costs a handler thread). Connections
    /// beyond the cap are refused with a typed `overloaded` reply rather
    /// than spawning without bound.
    pub max_conns: usize,
    /// Deadline applied when a request names none.
    pub default_deadline: Duration,
    /// Inference batching knobs.
    pub engine: EngineConfig,
    /// Fuel for transactional pass applications.
    pub fuel: FuelBudget,
    /// Interpreter budget per profile (untrusted designs must not spin).
    pub profile_fuel: u64,
    /// Path of the persistent best-ordering log.
    pub store_path: PathBuf,
    /// When the store folds its tail log into a snapshot.
    pub compaction: CompactionPolicy,
    /// How long recording stays disabled after the disk fills. While
    /// down, compiles still answer (store reads, policy, baseline) —
    /// only persistence is skipped; after the backoff the next record
    /// retries.
    pub store_retry: Duration,
    /// `retry_ms=` hint attached to `overloaded`/`deadline` refusals —
    /// how long a well-behaved client should back off before retrying.
    pub retry_hint_ms: u64,
    /// Accept the `CHAOS` verb (tests/benches only).
    pub chaos: bool,
    /// Turn the telemetry registry on at startup (required for `STATS`
    /// to answer anything useful; traces are recorded either way).
    pub telemetry: bool,
    /// Flight-recorder knobs: ring capacity, slow threshold, dump
    /// directory and triggers. The default keeps the ring but writes no
    /// dump artifacts (`dump_dir: None`).
    pub flight: FlightConfig,
    /// Accept the admin-gated `PROMOTE` verb. Off by default: a daemon
    /// exposed to untrusted clients must not let them pick its policy.
    pub admin: bool,
    /// Directory of the versioned model registry. `None` disables the
    /// online-learning subsystem entirely (no registry, no `PROMOTE`,
    /// no per-version win accounting).
    pub registry_dir: Option<PathBuf>,
    /// Run the in-daemon background learner (requires `registry_dir`).
    pub learner: Option<LearnerConfig>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 64,
            max_conns: 256,
            default_deadline: Duration::from_millis(1000),
            engine: EngineConfig::default(),
            fuel: FuelBudget::default(),
            profile_fuel: 4_000_000,
            store_path: PathBuf::from("serve_store.log"),
            compaction: CompactionPolicy::default(),
            store_retry: Duration::from_secs(2),
            retry_hint_ms: 50,
            chaos: false,
            telemetry: true,
            flight: FlightConfig {
                dump_outcomes: vec![
                    "refused:deadline".to_string(),
                    "refused:overloaded".to_string(),
                ],
                ..FlightConfig::default()
            },
            admin: false,
            registry_dir: None,
            learner: None,
        }
    }
}

/// Outcome of asking the admission gate for a slot.
enum Admission {
    Granted,
    Overloaded,
    DeadlineExpired,
}

/// Counting gate: `permits` run, at most `queue_cap` wait, the rest shed.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    queue_cap: usize,
}

struct GateState {
    permits: usize,
    waiting: usize,
}

impl Gate {
    fn new(permits: usize, queue_cap: usize) -> Gate {
        Gate {
            state: Mutex::new(GateState {
                permits: permits.max(1),
                waiting: 0,
            }),
            cv: Condvar::new(),
            queue_cap,
        }
    }

    fn acquire(&self, deadline: Instant) -> Admission {
        let mut s = self.state.lock().unwrap();
        if s.permits > 0 {
            s.permits -= 1;
            return Admission::Granted;
        }
        if s.waiting >= self.queue_cap {
            return Admission::Overloaded;
        }
        s.waiting += 1;
        telemetry::add_gauge("serve.queue_depth", "", 1.0);
        loop {
            let now = Instant::now();
            if s.permits > 0 {
                s.permits -= 1;
                s.waiting -= 1;
                telemetry::add_gauge("serve.queue_depth", "", -1.0);
                return Admission::Granted;
            }
            if now >= deadline {
                s.waiting -= 1;
                telemetry::add_gauge("serve.queue_depth", "", -1.0);
                return Admission::DeadlineExpired;
            }
            let (guard, _) = self.cv.wait_timeout(s, deadline - now).unwrap();
            s = guard;
        }
    }

    fn release(&self) {
        let mut s = self.state.lock().unwrap();
        s.permits += 1;
        self.cv.notify_one();
    }
}

/// Per-policy-version outcome counters behind the `MODEL` verb: the
/// win rate (improvement over -O3) and store-insert rate are the A/B
/// signals a promotion decision reads.
#[derive(Debug, Clone, Copy, Default)]
struct ModelStats {
    requests: u64,
    wins: u64,
    store_inserts: u64,
    improvement_sum: f64,
}

struct Shared {
    cfg: ServerConfig,
    engine: Arc<InferenceEngine>,
    store: Mutex<BestStore>,
    /// While `Some(t)` and `now < t`, recording is down (the disk
    /// filled): compiles keep answering but skip persistence until the
    /// backoff elapses, then the next record retries the disk.
    record_down_until: Mutex<Option<Instant>>,
    quarantine: Quarantine,
    gate: Gate,
    hls: HlsConfig,
    flight: FlightRecorder,
    shutting_down: AtomicBool,
    /// Live connection streams, so shutdown can unblock parked reads.
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_seq: AtomicU64,
    active_conns: AtomicUsize,
    local_addr: SocketAddr,
    /// Versioned checkpoint store; `None` when online learning is off.
    registry: Option<Arc<Mutex<ModelRegistry>>>,
    /// Background learner thread; `None` unless configured.
    learner: Option<Learner>,
    /// Per-version outcome counters (`MODEL` verb).
    models: Mutex<HashMap<u64, ModelStats>>,
    /// `-O3` cycles by fingerprint, so the per-version win rate costs
    /// one extra apply+profile per *unique* program, not per request.
    o3_cycles: Mutex<HashMap<u64, u64>>,
    /// Armed `CHAOS swap=` injections: each pending count corrupts the
    /// next `PROMOTE` candidate on disk before its armored load.
    chaos_swaps: AtomicU32,
}

impl Shared {
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        // Unblock handler threads parked in read_request.
        let conns = lock_recover(&self.conns);
        for stream in conns.values() {
            let _ = stream.shutdown(NetShutdown::Both);
        }
    }
}

/// Failure bringing the daemon up.
#[derive(Debug)]
pub struct StartError(pub String);

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serve start error: {}", self.0)
    }
}

impl std::error::Error for StartError {}

/// A running daemon. Dropping the handle does NOT stop it; call
/// [`Server::shutdown`] (or send the protocol `SHUTDOWN`, then
/// [`Server::wait`]).
pub struct Server {
    shared: Arc<Shared>,
    listener_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, open the store, spin up the inference engine, and start
    /// accepting connections.
    ///
    /// # Errors
    ///
    /// Bad bind address, unopenable store, or a policy whose shape does
    /// not match the serving observation layout.
    pub fn start(policy: Mlp, cfg: ServerConfig) -> Result<Server, StartError> {
        let engine = InferenceEngine::start(policy, cfg.engine.clone())
            .map_err(|e| StartError(e.to_string()))?;
        Server::start_with_engine(engine, cfg)
    }

    /// Bring the daemon up with *no* policy: every request degrades to
    /// the store or the fixed baseline ordering. This is the survival
    /// mode behind checkpoint armor — a corrupt checkpoint quarantines,
    /// and the service keeps answering instead of dying.
    ///
    /// # Errors
    ///
    /// Bad bind address or an unopenable store.
    pub fn start_baseline_only(cfg: ServerConfig) -> Result<Server, StartError> {
        telemetry::incr("serve.engine", "baseline_only", 1);
        Server::start_with_engine(InferenceEngine::start_baseline_only(), cfg)
    }

    fn start_with_engine(engine: InferenceEngine, cfg: ServerConfig) -> Result<Server, StartError> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| StartError(format!("bind {}: {e}", cfg.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| StartError(format!("local_addr: {e}")))?;
        let store = BestStore::open_with(&cfg.store_path, cfg.compaction)
            .map_err(|e| StartError(format!("store {}: {e}", cfg.store_path.display())))?;
        if store.dropped_on_open() {
            telemetry::incr("serve.store", "torn_tail_dropped", 1);
        }
        let hls = HlsConfig::default().with_profile_fuel(cfg.profile_fuel);
        if cfg.telemetry {
            telemetry::enable();
        }
        let engine = Arc::new(engine);
        let registry = match &cfg.registry_dir {
            Some(dir) => {
                let reg = ModelRegistry::open(dir)
                    .map_err(|e| StartError(format!("registry {}: {e}", dir.display())))?;
                Some(Arc::new(Mutex::new(reg)))
            }
            None => None,
        };
        let learner = match (&cfg.learner, &registry) {
            (Some(lc), Some(reg)) => Some(Learner::start(
                lc.clone(),
                Arc::clone(&engine),
                Arc::clone(reg),
            )),
            (Some(_), None) => {
                return Err(StartError(
                    "learner requires a model registry (set registry_dir)".into(),
                ))
            }
            (None, _) => None,
        };
        let shared = Arc::new(Shared {
            gate: Gate::new(cfg.workers, cfg.queue_cap),
            flight: FlightRecorder::new(cfg.flight.clone()),
            cfg,
            engine,
            store: Mutex::new(store),
            registry,
            learner,
            models: Mutex::new(HashMap::new()),
            o3_cycles: Mutex::new(HashMap::new()),
            chaos_swaps: AtomicU32::new(0),
            record_down_until: Mutex::new(None),
            quarantine: Quarantine::default(),
            hls,
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            conn_seq: AtomicU64::new(0),
            active_conns: AtomicUsize::new(0),
            local_addr,
        });
        let listener_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(|e| StartError(format!("spawn: {e}")))?
        };
        Ok(Server {
            shared,
            listener_thread: Some(listener_thread),
        })
    }

    /// The bound address (useful with `127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Programs currently in the persistent store.
    pub fn store_len(&self) -> usize {
        lock_recover(&self.shared.store).len()
    }

    /// Whether this daemon is serving without a policy (checkpoint armor
    /// fell back to [`Server::start_baseline_only`]).
    pub fn is_baseline_only(&self) -> bool {
        self.shared.engine.is_baseline_only()
    }

    /// Block until the daemon shuts down (a client sent the protocol
    /// `SHUTDOWN`). In-process embedders that decide the lifetime
    /// themselves use [`Server::shutdown`] instead.
    pub fn wait(mut self) {
        self.join_all();
    }

    /// Stop accepting, unblock and drain connections, and join every
    /// daemon thread.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
        // Handler threads are detached; they exit promptly once their
        // streams are shut down. Bounded drain so a wedged peer cannot
        // hang shutdown forever.
        let drain_deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.active_conns.load(Ordering::SeqCst) > 0 && Instant::now() < drain_deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Stop the learner after the connections drain: late cold-path
        // experiences still land in the queue and get trained on.
        if let Some(learner) = &self.shared.learner {
            learner.stop();
        }
        // Graceful shutdown folds the tail into a snapshot, so the next
        // open replays O(live entries) instead of the whole history.
        // Best-effort: a failed compaction leaves a valid tail behind.
        if lock_recover(&self.shared.store).compact_if_dirty().is_err() {
            telemetry::incr("serve.store", "compaction_error", 1);
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                // Accept errors such as EMFILE tend to persist; a brief
                // back-off keeps this loop from busy-spinning while the
                // condition clears.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client): refuse politely.
            let mut w = BufWriter::new(stream);
            let _ = protocol::write_reply(
                &mut w,
                &Reply::Err {
                    kind: ErrKind::Internal,
                    retry_ms: None,
                    msg: "shutting down".into(),
                },
            );
            return;
        }
        if shared.active_conns.load(Ordering::SeqCst) >= shared.cfg.max_conns {
            // Thread-per-connection must not be unbounded: past the cap,
            // answer `overloaded` once and hang up instead of spawning.
            telemetry::incr("serve.req", "conn_refused", 1);
            let mut w = BufWriter::new(stream);
            let _ = protocol::write_reply(
                &mut w,
                &Reply::Err {
                    kind: ErrKind::Overloaded,
                    retry_ms: Some(shared.cfg.retry_hint_ms),
                    msg: format!("connection limit ({}) reached", shared.cfg.max_conns),
                },
            );
            continue;
        }
        shared.active_conns.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || {
                handle_conn(&conn_shared, stream);
                conn_shared.active_conns.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            // The closure (stream included) was dropped without running.
            shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let conn_id = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
    if let Ok(clone) = stream.try_clone() {
        lock_recover(&shared.conns).insert(conn_id, clone);
    }
    let reader = stream.try_clone();
    if let Ok(reader) = reader {
        let mut reader = BufReader::new(reader);
        let mut writer = BufWriter::new(stream);
        loop {
            let req = match protocol::read_request(&mut reader) {
                Ok(Some(r)) => r,
                Ok(None) => break,
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    // Framing is unrecoverable after a malformed header:
                    // answer once, then hang up.
                    let _ = protocol::write_reply(
                        &mut writer,
                        &Reply::Err {
                            kind: ErrKind::BadRequest,
                            retry_ms: None,
                            msg: e.to_string(),
                        },
                    );
                    break;
                }
                Err(_) => break,
            };
            let mut trace: Option<TraceBuilder> = None;
            let (reply, hang_up) = match req {
                Request::Ping => (Reply::Ack, false),
                Request::Shutdown => (Reply::Ack, true),
                Request::Chaos {
                    faults,
                    crashes,
                    swaps,
                } => {
                    if shared.cfg.chaos {
                        shared.engine.inject_faults(faults);
                        shared.engine.inject_crashes(crashes);
                        shared.chaos_swaps.fetch_add(swaps, Ordering::SeqCst);
                        (Reply::Ack, false)
                    } else {
                        (
                            Reply::Err {
                                kind: ErrKind::BadRequest,
                                retry_ms: None,
                                msg: "chaos disabled".into(),
                            },
                            false,
                        )
                    }
                }
                // Introspection bypasses the admission gate: exactly when
                // the daemon is drowning is when these must still answer.
                Request::Stats => (
                    Reply::Stats {
                        body: capped_jsonl(telemetry::render_metrics_jsonl_from(
                            &telemetry::snapshot(),
                        )),
                    },
                    false,
                ),
                Request::Trace { n } => (
                    Reply::Traces {
                        body: capped_jsonl(shared.flight.render_recent(n)),
                    },
                    false,
                ),
                Request::Model => (model_reply(shared), false),
                Request::Promote { version, ab } => (promote(shared, version, ab), false),
                Request::Compile {
                    ir,
                    deadline_ms,
                    want_ir,
                } => {
                    let mut tr = shared.flight.begin();
                    let reply = compile(shared, &mut tr, &ir, deadline_ms, want_ir);
                    trace = Some(tr);
                    (reply, false)
                }
            };
            let write_ok = protocol::write_reply(&mut writer, &reply).is_ok();
            if let Some(mut tr) = trace.take() {
                tr.mark("reply_write");
                tr.set_outcome(match &reply {
                    Reply::Compiled { source, .. } => format!("ok:{}", source.as_str()),
                    Reply::Err { kind, .. } => format!("refused:{}", kind.as_str()),
                    _ => "unknown".to_string(),
                });
                complete_trace(shared, tr);
            }
            if hang_up {
                shared.begin_shutdown();
                break;
            }
            if !write_ok || shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
        }
    }
    shared.conns.lock().unwrap().remove(&conn_id);
}

struct PermitGuard<'a>(&'a Gate);

impl Drop for PermitGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// Keep an introspection body inside the reply frame's length cap,
/// truncating at a line boundary so the body stays parseable JSONL.
fn capped_jsonl(mut body: String) -> String {
    if body.len() > protocol::MAX_IR_LEN {
        body.truncate(protocol::MAX_IR_LEN);
        match body.rfind('\n') {
            Some(i) => body.truncate(i + 1),
            None => body.clear(),
        }
    }
    body
}

/// Seal a compile trace: feed its stage segments into the
/// `serve.stage_ns{...}` histograms (they tile the timeline, so the
/// per-stage sums add up to `serve.stage_ns{total}` exactly) and hand it
/// to the flight recorder, which fires any dump trigger it matches.
fn complete_trace(shared: &Shared, trace: TraceBuilder) {
    let done = trace.finish();
    for &(stage, ns) in &done.stages {
        telemetry::observe("serve.stage_ns", stage, ns);
    }
    telemetry::observe("serve.stage_ns", "total", done.total_ns);
    shared.flight.complete(done);
}

/// Persist a best-known ordering, degrading gracefully on disk faults.
///
/// Any append error is non-fatal — the reply is already computed, only
/// persistence failed. A *full disk* additionally disables recording
/// for [`ServerConfig::store_retry`]: while down, compiles skip the
/// write entirely (`serve.store{record_skipped}`) instead of hammering
/// a disk known to be full; after the backoff the next record retries
/// (`serve.store{record_retry}`) and re-arms the backoff if the disk is
/// still full.
///
/// Returns whether the entry was actually inserted (new program or an
/// improvement over the stored best) — the store-insert rate is one of
/// the per-version signals behind the `MODEL` verb.
fn record_best(shared: &Shared, fp: u64, entry: BestEntry) -> bool {
    let now = Instant::now();
    {
        let mut down = lock_recover(&shared.record_down_until);
        match *down {
            Some(until) if now < until => {
                telemetry::incr("serve.store", "record_skipped", 1);
                return false;
            }
            Some(_) => {
                *down = None;
                telemetry::incr("serve.store", "record_retry", 1);
            }
            None => {}
        }
    }
    match lock_recover(&shared.store).record(fp, entry) {
        Ok(inserted) => inserted,
        Err(e) => {
            telemetry::incr("serve.store", "append_error", 1);
            if autophase_telemetry::faultfs::is_disk_full(&e) {
                telemetry::incr("serve.store", "enospc", 1);
                *lock_recover(&shared.record_down_until) = Some(now + shared.cfg.store_retry);
            }
            false
        }
    }
}

/// One JSONL line of the `MODEL` reply body.
fn model_line(
    version: u64,
    info: Option<&VersionInfo>,
    serving: Option<u64>,
    challenger: Option<u64>,
    stat: Option<&ModelStats>,
) -> String {
    let st = stat.copied().unwrap_or_default();
    let mean_improvement = if st.requests > 0 {
        st.improvement_sum / st.requests as f64
    } else {
        0.0
    };
    format!(
        "{{\"type\":\"model\",\"version\":{version},\"samples\":{},\"updates\":{},\
         \"serving\":{},\"challenger\":{},\"requests\":{},\"wins\":{},\
         \"store_inserts\":{},\"mean_improvement\":{mean_improvement:.6}}}\n",
        info.map_or(0, |i| i.samples),
        info.map_or(0, |i| i.updates),
        u8::from(serving == Some(version)),
        u8::from(challenger == Some(version)),
        st.requests,
        st.wins,
        st.store_inserts,
    )
}

/// Answer `MODEL`: one line per registry version (plus any live-serving
/// version the registry does not know, e.g. the boot policy's v0), then
/// a summary line with what the engine is serving right now.
fn model_reply(shared: &Shared) -> Reply {
    let (serving, challenger) = match shared.engine.active_versions() {
        Some((a, b)) => (Some(a), b),
        None => (None, None),
    };
    let stats = lock_recover(&shared.models).clone();
    let mut body = String::new();
    let mut listed = BTreeSet::new();
    if let Some(registry) = &shared.registry {
        let reg = lock_recover(registry);
        for v in reg.versions() {
            listed.insert(v.version);
            body.push_str(&model_line(
                v.version,
                Some(v),
                serving,
                challenger,
                stats.get(&v.version),
            ));
        }
    }
    for v in [serving, challenger].into_iter().flatten() {
        if listed.insert(v) {
            body.push_str(&model_line(v, None, serving, challenger, stats.get(&v)));
        }
    }
    body.push_str(&format!(
        "{{\"type\":\"model_summary\",\"serving\":{},\"challenger\":{},\"swaps\":{},\"registry\":{}}}\n",
        serving.map_or(-1, |v| v as i64),
        challenger.map_or(-1, |v| v as i64),
        shared.engine.swap_count(),
        u8::from(shared.registry.is_some()),
    ));
    telemetry::incr("serve.req", "models", 1);
    Reply::Models {
        body: capped_jsonl(body),
    }
}

/// Chaos injection for `CHAOS swap=`: truncate the candidate on disk so
/// the next armored load must fail to decode and quarantine it. Real
/// bytes are destroyed — this exercises the promotion armor against
/// genuine corruption, not a simulated flag.
fn corrupt_checkpoint(path: &Path) {
    if let Ok(mut bytes) = std::fs::read(path) {
        bytes.truncate(bytes.len() / 2);
        let _ = std::fs::write(path, &bytes);
    }
}

/// Handle `PROMOTE v=<n> [ab=1]` — the promotion armor. The candidate
/// is read back through the registry's armored load (corrupt bytes are
/// quarantined on disk), then shape/finiteness-validated against the
/// serving layout *before* the engine ever sees it. A bad candidate
/// refuses the verb and the old policy keeps serving; nothing on the
/// request path notices. `ab=1` installs the version as the B-side
/// challenger instead of replacing the active policy.
fn promote(shared: &Shared, version: u64, ab: bool) -> Reply {
    if !shared.cfg.admin {
        return refuse(
            ErrKind::BadRequest,
            None,
            "promotion disabled (daemon not started with admin)".into(),
        );
    }
    let Some(registry) = &shared.registry else {
        return refuse(
            ErrKind::BadRequest,
            None,
            "no model registry configured".into(),
        );
    };
    let mut reg = lock_recover(registry);
    // Armed chaos corrupts the candidate on disk *before* the armored
    // load, so the armor is proven against real on-disk damage.
    let chaos_armed = shared
        .chaos_swaps
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok();
    if chaos_armed {
        if let Some(path) = reg.checkpoint_path(version) {
            corrupt_checkpoint(&path);
            telemetry::incr("serve.swap", "chaos_corrupted", 1);
        }
    }
    let ckpt = match reg.load_armored(version) {
        ArmoredLoad::Loaded(c) => c,
        ArmoredLoad::Quarantined { error, .. } => {
            telemetry::incr("serve.swap", "quarantined", 1);
            return refuse(
                ErrKind::Internal,
                None,
                format!("candidate v{version} quarantined: {error}"),
            );
        }
        ArmoredLoad::Unreadable(e) => {
            return refuse(
                ErrKind::BadRequest,
                None,
                format!("no loadable version v{version}: {e}"),
            );
        }
    };
    if let Err(e) = serve_layout().validate_checkpoint(&ckpt) {
        // Decodable but wrong-shaped or non-finite: quarantine it so a
        // later PROMOTE cannot trip over it either.
        let _ = reg.quarantine(version);
        telemetry::incr("serve.swap", "rejected_invalid", 1);
        return refuse(
            ErrKind::Internal,
            None,
            format!("candidate v{version} invalid: {e}"),
        );
    }
    let swapped = if ab {
        shared.engine.swap_ab(ckpt.policy.clone(), version)
    } else {
        shared.engine.swap_policy(ckpt.policy.clone(), version)
    };
    match swapped {
        Ok(()) => {
            if !ab {
                let _ = reg.set_active(version);
            }
            telemetry::incr("serve.swap", if ab { "promoted_ab" } else { "promoted" }, 1);
            Reply::Ack
        }
        Err(e) => refuse(ErrKind::Internal, None, format!("swap failed: {e}")),
    }
}

/// Per-version outcome accounting for a policy-served compile. Requests
/// and store-inserts are always counted; the improvement-over-`-O3` win
/// rate needs one extra `-O3` apply+profile per unique program, so it
/// is computed (and cached by fingerprint) only when the online
/// subsystem — the model registry — is enabled.
fn note_model_outcome(
    shared: &Shared,
    version: u64,
    fp: u64,
    module: &Module,
    cycles: u64,
    inserted: bool,
) {
    // NB: the cache probe is a standalone statement — `if let` on the
    // guard would keep `o3_cycles` locked through the else branch,
    // deadlocking against the insert below.
    let cached = match &shared.registry {
        Some(_) => lock_recover(&shared.o3_cycles).get(&fp).copied(),
        None => None,
    };
    let o3c = if shared.registry.is_none() {
        None
    } else if cached.is_some() {
        cached
    } else {
        let mut m = module.clone();
        let _ = o3_checked(&mut m, &shared.cfg.fuel);
        match profile_module(&m, &shared.hls) {
            Ok(r) => {
                lock_recover(&shared.o3_cycles).insert(fp, r.cycles);
                Some(r.cycles)
            }
            Err(_) => None,
        }
    };
    let mut won = false;
    {
        let mut models = lock_recover(&shared.models);
        let stat = models.entry(version).or_default();
        stat.requests += 1;
        if inserted {
            stat.store_inserts += 1;
        }
        if let Some(o3c) = o3c {
            stat.improvement_sum += (o3c as f64 - cycles as f64) / o3c.max(1) as f64;
            if cycles <= o3c {
                stat.wins += 1;
                won = true;
            }
        }
    }
    telemetry::incr("serve.model", &format!("v{version}_req"), 1);
    if inserted {
        telemetry::incr("serve.model", &format!("v{version}_insert"), 1);
    }
    if won {
        telemetry::incr("serve.model", &format!("v{version}_win"), 1);
    }
}

fn refuse(kind: ErrKind, retry_ms: Option<u64>, msg: String) -> Reply {
    let label = match kind {
        ErrKind::Overloaded => "err_overloaded",
        ErrKind::Deadline => "err_deadline",
        ErrKind::Parse => "err_parse",
        ErrKind::BadRequest => "err_bad_request",
        ErrKind::Internal => "err_internal",
    };
    telemetry::incr("serve.req", label, 1);
    Reply::Err {
        kind,
        retry_ms,
        msg,
    }
}

fn compile(
    shared: &Shared,
    trace: &mut TraceBuilder,
    ir: &str,
    deadline_ms: Option<u64>,
    want_ir: bool,
) -> Reply {
    telemetry::incr("serve.req", "recv", 1);
    let deadline = trace.start()
        + deadline_ms
            .map(Duration::from_millis)
            .unwrap_or(shared.cfg.default_deadline);

    let admission = shared.gate.acquire(deadline);
    trace.mark("queue_wait");
    match admission {
        Admission::Granted => {}
        Admission::Overloaded => {
            return refuse(
                ErrKind::Overloaded,
                Some(shared.cfg.retry_hint_ms),
                format!("queue full (cap {})", shared.cfg.queue_cap),
            )
        }
        Admission::DeadlineExpired => {
            return refuse(
                ErrKind::Deadline,
                Some(shared.cfg.retry_hint_ms),
                "deadline expired while queued".into(),
            )
        }
    }
    let _permit = PermitGuard(&shared.gate);

    // A request that arrives (or is granted a permit) already past its
    // deadline gets the typed refusal before any pipeline work.
    if Instant::now() >= deadline {
        return refuse(
            ErrKind::Deadline,
            Some(shared.cfg.retry_hint_ms),
            "deadline expired before parse".into(),
        );
    }

    // Parse + verify. The parser is total on untrusted text with a
    // module-wide arena budget, and the verifier total on parser output,
    // so hostile input costs a bounded amount of work and an error
    // reply — never a crash or a runaway allocation.
    let module = match parse_module(ir) {
        Ok(m) => m,
        Err(e) => {
            trace.mark("parse");
            return refuse(ErrKind::Parse, None, e.to_string());
        }
    };
    if let Err(e) = verify_module(&module) {
        trace.mark("parse");
        return refuse(ErrKind::Parse, None, format!("verify: {e}"));
    }
    trace.mark("parse");

    // Store rung: a known program answers from the index.
    let fp = fingerprint_module(&module);
    let hit = lock_recover(&shared.store).lookup(fp).cloned();
    trace.mark("store");
    if let Some(entry) = hit {
        let passes: Vec<usize> = entry.seq.iter().map(|&p| p as usize).collect();
        // The stored cycles/passes were computed from the IR the stored
        // ordering produces, so a reply carrying IR must replay cleanly:
        // if a stored pass now faults or runs out of fuel (quarantine or
        // config drift since it was recorded), the entry can no longer
        // back its numbers. Retire it and recompute cold instead of
        // serving IR that disagrees with the reported cycles.
        let replayed = if want_ir {
            let mut m = module.clone();
            let out = passes
                .iter()
                .try_for_each(|&p| apply_checked(&mut m, p, &shared.cfg.fuel).map(|_| ()))
                .ok()
                .map(|()| Some(print_module(&m)));
            trace.mark("replay");
            out
        } else {
            Some(None)
        };
        match replayed {
            Some(ir_out) => {
                telemetry::incr("serve.req", "ok_store", 1);
                telemetry::incr("serve.store", "hit", 1);
                return Reply::Compiled {
                    source: Source::Store,
                    cycles: entry.cycles,
                    baseline_cycles: entry.baseline_cycles,
                    passes,
                    ir: ir_out,
                };
            }
            None => {
                trace.fault("replay");
                lock_recover(&shared.store).remove(fp);
                telemetry::incr("serve.store", "stale_dropped", 1);
            }
        }
    } else {
        telemetry::incr("serve.store", "miss", 1);
    }

    // The cold pipeline is the expensive part; do not start it for a
    // request that can no longer make its deadline.
    if Instant::now() >= deadline {
        return refuse(
            ErrKind::Deadline,
            Some(shared.cfg.retry_hint_ms),
            "deadline expired before rollout".into(),
        );
    }

    // Cold: profile the input once (the baseline number and the store
    // record need it), then walk policy → baseline.
    let baseline_cycles = match profile_module(&module, &shared.hls) {
        Ok(r) => r.cycles,
        Err(e) => {
            trace.mark("baseline_profile");
            return refuse(ErrKind::Parse, None, format!("unprofileable input: {e}"));
        }
    };
    trace.mark("baseline_profile");

    let mut optimized = module.clone();
    let mut policy_version = None;
    let mut steps = Vec::new();
    let (source, passes) = match shared.engine.choose_sequence_report(
        &mut optimized,
        fp,
        &shared.quarantine,
        &shared.cfg.fuel,
    ) {
        Ok(report) => {
            trace.note("infer_calls", report.infer_calls);
            trace.note("infer_wait_ns", report.infer_wait_ns);
            trace.note("infer_batch_max", report.infer_batch_max);
            trace.note("policy_version", report.policy_version);
            if report.pass_faults > 0 {
                // Quarantined and skipped inside the rollout: the answer
                // is still policy-sourced, but the trace names the stage
                // so the dump points at the offender.
                trace.note("pass_faults", report.pass_faults);
                trace.fault("rollout");
            }
            policy_version = Some(report.policy_version);
            steps = report.steps;
            (Source::Policy, report.applied)
        }
        Err(_fault) => {
            // Degradation rung 3: fixed fault-isolated -O3. The trace
            // blames inference — that is where the fault surfaced (real
            // forward-pass panic or injected chaos).
            trace.fault("inference");
            telemetry::incr("serve.req", "degraded_to_baseline", 1);
            optimized = module.clone();
            let seq = o3_checked(&mut optimized, &shared.cfg.fuel);
            (Source::Baseline, seq)
        }
    };
    trace.mark("rollout");

    let cycles = match profile_module(&optimized, &shared.hls) {
        Ok(r) => r.cycles,
        Err(e) => {
            trace.mark("profile");
            return refuse(
                ErrKind::Internal,
                None,
                format!("optimized unprofileable: {e}"),
            );
        }
    };
    trace.mark("profile");

    // Persist if this beats the best known answer (first answer always
    // does — there was no entry). Record *before* the deadline check:
    // the computed ordering is valid regardless of how long it took, and
    // storing it turns the next identical request into an O(1) hit
    // instead of a from-scratch recompute.
    let entry = BestEntry {
        cycles,
        baseline_cycles,
        seq: passes.iter().map(|&p| p as u16).collect(),
    };
    let inserted = record_best(shared, fp, entry);
    trace.mark("record");

    // Online-learning hooks, both strictly after the answer is computed:
    // attribute the outcome to the policy version that produced it, and
    // stream the rollout's episode to the learner (`offer` never blocks;
    // a full queue sheds its oldest entry instead).
    if let Some(version) = policy_version {
        note_model_outcome(shared, version, fp, &module, cycles, inserted);
        if let Some(learner) = &shared.learner {
            if !steps.is_empty() {
                learner.offer(Experience {
                    steps: std::mem::take(&mut steps),
                    cycles,
                    baseline_cycles,
                });
            }
        }
    }

    if Instant::now() > deadline {
        return refuse(
            ErrKind::Deadline,
            Some(shared.cfg.retry_hint_ms),
            "deadline expired mid-pipeline".into(),
        );
    }

    telemetry::incr(
        "serve.req",
        match source {
            Source::Policy => "ok_policy",
            Source::Baseline => "ok_baseline",
            Source::Store => unreachable!("store answered above"),
        },
        1,
    );
    Reply::Compiled {
        source,
        cycles,
        baseline_cycles,
        passes,
        ir: want_ir.then(|| print_module(&optimized)),
    }
}
