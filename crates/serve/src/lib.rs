//! `autophase-serve`: the phase-ordering compile service.
//!
//! Turns a trained AutoPhase policy into a request/response system — the
//! deployment story the paper's §1 positions RL inference for ("a
//! fraction of a second" per unseen program, versus hours of
//! per-program search). A request is a textual IR module; the reply is
//! the chosen pass ordering, its predicted cycle count, and optionally
//! the optimized IR.
//!
//! The daemon composes four pieces, each its own module:
//!
//! * [`protocol`] — the framed text wire format and its typed errors;
//! * [`engine`] — a dedicated inference thread batching policy forward
//!   passes across concurrent requests, plus the greedy fault-isolated
//!   serving rollout;
//! * [`store`] — the crash-safe append-only log memoizing the best
//!   known ordering per program fingerprint across restarts;
//! * [`server`] — bounded admission, per-request deadlines, typed
//!   `overloaded` shedding, and the store → policy → baseline
//!   degradation ladder;
//! * [`stats`] — the client-side parser for `STATS` replies (metrics
//!   JSONL → lookup tables), feeding the `serve top` dashboard and the
//!   benches;
//! * [`learner`] — the online-learning subsystem: a background thread
//!   training on cold-path outcomes, publishing versioned checkpoints
//!   into a model registry, and (behind the admin-gated `PROMOTE`
//!   verb or auto-promotion) hot-swapping them into the live engine.
//!
//! Every compile request carries a trace through the pipeline; the
//! daemon's flight recorder keeps the recent ones and dumps
//! fault/refusal/slow offenders to JSONL artifacts (see
//! `autophase_telemetry::flight` and the `STATS`/`TRACE` verbs).
//!
//! [`client`] is the matching blocking client library; the `serve`
//! binary wraps [`server::Server`] behind a CLI. Like
//! `autophase-telemetry`, the crate is std-only: no external
//! dependencies, `std::net` + `std::thread` all the way down.
//!
//! # Quick start (in-process)
//!
//! ```no_run
//! use autophase_serve::client::Client;
//! use autophase_serve::engine::{serve_num_actions, serve_obs_dim};
//! use autophase_serve::server::{Server, ServerConfig};
//! use autophase_nn::mlp::{Activation, Mlp};
//!
//! let policy = Mlp::new(&[serve_obs_dim(), 32, serve_num_actions()], Activation::Tanh, 7);
//! let server = Server::start(policy, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let reply = client.compile("; module m\ndefine i32 @main() {\nb0:\n  ret i32 0\n}\n", None, false).unwrap();
//! println!("{} cycles via {:?}", reply.cycles, reply.passes);
//! server.shutdown();
//! ```
#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod learner;
pub mod protocol;
pub mod server;
pub mod stats;
pub mod store;

pub use client::{Client, ClientConfig, CompileReply, RetryPolicy, RetryingClient};
pub use engine::{
    serve_env_config, serve_layout, InferenceEngine, RolloutReport, SERVE_EPISODE_LEN,
};
pub use learner::{Learner, LearnerConfig};
pub use protocol::{ErrKind, Source};
pub use server::{Server, ServerConfig};
pub use stats::{HistStat, ModelVersionStat, ModelsSnapshot, StatsSnapshot};
pub use store::{BestStore, CompactionPolicy};
