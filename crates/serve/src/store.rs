//! Content-addressed persistent store of best-known pass orderings.
//!
//! An append-only log plus an in-memory index keyed by program
//! fingerprint (the workspace-wide content hash from
//! `autophase_core::eval_cache::fingerprint_module`). Serving a repeat
//! program is a `HashMap` lookup; discovering a better ordering appends
//! one record. The log survives restarts, so everything the daemon ever
//! learned about a program keeps paying off across deployments.
//!
//! # On-disk format
//!
//! ```text
//! "APSTORE1"                                  // 8-byte file header
//! record := len u32 LE | payload | fnv1a-64(payload) u64 LE
//! payload := fingerprint u64 | cycles u64 | baseline_cycles u64
//!          | n u16 | n × pass id u16         // all LE
//! ```
//!
//! # Crash safety
//!
//! Appends are a single `write_all` followed by `sync_data`, and reopen
//! scans records until the first one that is truncated or fails its
//! checksum — everything from that point is dropped and the file is
//! truncated back to the last good record, so a torn tail (power loss
//! mid-append) costs at most the interrupted record, never a panic or a
//! poisoned log. Within one file, later records for a fingerprint
//! supersede earlier ones only when strictly better (fewer cycles), so
//! replaying the log in order rebuilds the same index the writer had.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const FILE_MAGIC: &[u8; 8] = b"APSTORE1";
/// Cap on passes per record — same plausibility guard the codecs use.
const MAX_SEQ_LEN: usize = 4096;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Best-known answer for one program fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BestEntry {
    /// Cycle count the ordering achieves.
    pub cycles: u64,
    /// Cycle count of the unoptimized program (cached so store hits
    /// answer without any profiling).
    pub baseline_cycles: u64,
    /// The effective ordering (changing passes, Table-1 ids).
    pub seq: Vec<u16>,
}

/// The persistent best-ordering store (see module docs).
#[derive(Debug)]
pub struct BestStore {
    file: File,
    path: PathBuf,
    index: HashMap<u64, BestEntry>,
    /// Bytes of good records (the append offset).
    tail: u64,
    /// Records dropped by the last open's torn-tail scan.
    dropped_on_open: usize,
}

fn encode_record(fp: u64, entry: &BestEntry) -> Vec<u8> {
    let mut payload = Vec::with_capacity(26 + 2 * entry.seq.len());
    payload.extend_from_slice(&fp.to_le_bytes());
    payload.extend_from_slice(&entry.cycles.to_le_bytes());
    payload.extend_from_slice(&entry.baseline_cycles.to_le_bytes());
    payload.extend_from_slice(&(entry.seq.len() as u16).to_le_bytes());
    for &p in &entry.seq {
        payload.extend_from_slice(&p.to_le_bytes());
    }
    let mut rec = Vec::with_capacity(12 + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    rec
}

fn decode_payload(payload: &[u8]) -> Option<(u64, BestEntry)> {
    if payload.len() < 26 {
        return None;
    }
    let fp = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let cycles = u64::from_le_bytes(payload[8..16].try_into().ok()?);
    let baseline_cycles = u64::from_le_bytes(payload[16..24].try_into().ok()?);
    let n = u16::from_le_bytes(payload[24..26].try_into().ok()?) as usize;
    if n > MAX_SEQ_LEN || payload.len() != 26 + 2 * n {
        return None;
    }
    let seq = (0..n)
        .map(|i| u16::from_le_bytes(payload[26 + 2 * i..28 + 2 * i].try_into().unwrap()))
        .collect();
    Some((
        fp,
        BestEntry {
            cycles,
            baseline_cycles,
            seq,
        },
    ))
}

impl BestStore {
    /// Open (creating if absent) the store at `path`, replaying the log
    /// into the in-memory index. A torn or corrupt tail is dropped and
    /// the file truncated back to the last good record.
    ///
    /// # Errors
    ///
    /// Filesystem errors, or `InvalidData` if the file exists but does
    /// not start with the store magic (it is some other file — refuse to
    /// clobber it).
    pub fn open(path: &Path) -> io::Result<BestStore> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            file.write_all(FILE_MAGIC)?;
            file.sync_data()?;
            bytes.extend_from_slice(FILE_MAGIC);
        } else if !bytes.starts_with(FILE_MAGIC) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not an autophase store", path.display()),
            ));
        }
        let mut index: HashMap<u64, BestEntry> = HashMap::new();
        let mut offset = FILE_MAGIC.len();
        let mut dropped_on_open = 0;
        loop {
            let rest = &bytes[offset..];
            if rest.is_empty() {
                break;
            }
            let parsed = rest
                .get(0..4)
                .map(|l| u32::from_le_bytes(l.try_into().unwrap()) as usize)
                .and_then(|len| {
                    let payload = rest.get(4..4 + len)?;
                    let sum = rest.get(4 + len..12 + len)?;
                    if fnv1a(payload) != u64::from_le_bytes(sum.try_into().unwrap()) {
                        return None;
                    }
                    decode_payload(payload).map(|d| (d, 12 + len))
                });
            match parsed {
                Some(((fp, entry), consumed)) => {
                    let better = index.get(&fp).is_none_or(|cur| entry.cycles < cur.cycles);
                    if better {
                        index.insert(fp, entry);
                    }
                    offset += consumed;
                }
                None => {
                    // Torn or corrupt from here on: count whole dropped
                    // region as one incident per remaining record guess —
                    // we cannot reframe past a bad length, so it is all
                    // one dropped tail.
                    dropped_on_open = 1;
                    break;
                }
            }
        }
        file.set_len(offset as u64)?;
        file.seek(SeekFrom::Start(offset as u64))?;
        Ok(BestStore {
            file,
            path: path.to_path_buf(),
            index,
            tail: offset as u64,
            dropped_on_open,
        })
    }

    /// Best-known entry for a program fingerprint.
    pub fn lookup(&self, fp: u64) -> Option<&BestEntry> {
        self.index.get(&fp)
    }

    /// Record an answer if it beats (strictly) the best known one.
    /// Returns whether the entry was stored. The append is durable
    /// (synced) before the index is updated.
    ///
    /// # Errors
    ///
    /// Filesystem errors; the in-memory index is left unchanged on error.
    pub fn record(&mut self, fp: u64, entry: BestEntry) -> io::Result<bool> {
        if entry.seq.len() > MAX_SEQ_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "pass sequence too long for a store record",
            ));
        }
        if let Some(cur) = self.index.get(&fp) {
            if entry.cycles >= cur.cycles {
                return Ok(false);
            }
        }
        let rec = encode_record(fp, &entry);
        // The synced append is the store's slow path; time it so STATS
        // can show when fsync latency starts dominating cold requests.
        let t = autophase_telemetry::maybe_now();
        self.file.seek(SeekFrom::Start(self.tail))?;
        self.file.write_all(&rec)?;
        self.file.sync_data()?;
        autophase_telemetry::observe_since("serve.store_ns", "append", t);
        self.tail += rec.len() as u64;
        self.index.insert(fp, entry);
        Ok(true)
    }

    /// Retire a fingerprint from the in-memory index, returning the entry
    /// it held. The server uses this when a stored ordering no longer
    /// replays cleanly (a pass in it now faults or runs out of fuel), so
    /// the next request recomputes instead of serving numbers the IR
    /// cannot back. The log is append-only, so the record stays on disk;
    /// if nothing strictly better is recorded over it, the entry can
    /// resurface on the next [`BestStore::open`] — at worst it is retired
    /// again on first touch, never served inconsistently.
    pub fn remove(&mut self, fp: u64) -> Option<BestEntry> {
        self.index.remove(&fp)
    }

    /// Number of distinct programs in the index.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no program has an entry yet.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether the last open dropped a torn/corrupt tail.
    pub fn dropped_on_open(&self) -> bool {
        self.dropped_on_open > 0
    }

    /// The log's filesystem path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("autophase_store_{}_{name}.log", std::process::id()))
    }

    fn entry(cycles: u64, seq: &[u16]) -> BestEntry {
        BestEntry {
            cycles,
            baseline_cycles: cycles * 2,
            seq: seq.to_vec(),
        }
    }

    #[test]
    fn roundtrips_across_reopen() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = BestStore::open(&path).unwrap();
            assert!(s.is_empty());
            assert!(s.record(1, entry(100, &[31, 38])).unwrap());
            assert!(s.record(2, entry(50, &[])).unwrap());
            // Not better: ignored, not appended.
            assert!(!s.record(1, entry(100, &[30])).unwrap());
            assert!(!s.record(1, entry(150, &[30])).unwrap());
            // Strictly better: supersedes.
            assert!(s.record(1, entry(90, &[31, 38, 30])).unwrap());
        }
        let s = BestStore::open(&path).unwrap();
        assert!(!s.dropped_on_open());
        assert_eq!(s.len(), 2);
        assert_eq!(s.lookup(1).unwrap(), &entry(90, &[31, 38, 30]));
        assert_eq!(s.lookup(2).unwrap(), &entry(50, &[]));
        assert!(s.lookup(3).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_record_is_dropped_not_a_panic() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = BestStore::open(&path).unwrap();
            s.record(1, entry(100, &[31])).unwrap();
            s.record(2, entry(200, &[38, 30])).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Simulate a crash mid-append: a fresh record cut off partway.
        let torn_rec = encode_record(3, &entry(300, &[7, 8, 9]));
        for cut in [1, 5, torn_rec.len() - 1] {
            let mut bytes = full.clone();
            bytes.extend_from_slice(&torn_rec[..cut]);
            std::fs::write(&path, &bytes).unwrap();
            let s = BestStore::open(&path).unwrap();
            assert!(s.dropped_on_open(), "cut at {cut} not detected");
            assert_eq!(s.len(), 2, "good prefix lost at cut {cut}");
            assert!(s.lookup(3).is_none());
            // The truncation leaves a healthy file behind.
            assert_eq!(std::fs::read(&path).unwrap(), full);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_tail_checksum_is_dropped_and_appends_resume() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = BestStore::open(&path).unwrap();
            s.record(1, entry(100, &[31])).unwrap();
        }
        let good = std::fs::read(&path).unwrap();
        let mut bytes = good.clone();
        let mut bad = encode_record(2, &entry(50, &[38]));
        let last = bad.len() - 1;
        bad[last] ^= 0xff; // break the checksum
        bytes.extend_from_slice(&bad);
        std::fs::write(&path, &bytes).unwrap();
        {
            let mut s = BestStore::open(&path).unwrap();
            assert!(s.dropped_on_open());
            assert_eq!(s.len(), 1);
            // New appends land where the good prefix ended.
            assert!(s.record(4, entry(70, &[23])).unwrap());
        }
        let s = BestStore::open(&path).unwrap();
        assert!(!s.dropped_on_open());
        assert_eq!(s.len(), 2);
        assert_eq!(s.lookup(4).unwrap(), &entry(70, &[23]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn removed_entries_can_be_rerecorded() {
        let path = tmp("remove");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = BestStore::open(&path).unwrap();
            assert!(s.record(1, entry(100, &[31])).unwrap());
            assert_eq!(s.remove(1), Some(entry(100, &[31])));
            assert!(s.lookup(1).is_none());
            assert!(s.remove(1).is_none());
            // After removal even a worse answer is recordable — the slot
            // is empty again as far as the index is concerned.
            assert!(s.record(1, entry(150, &[30])).unwrap());
            assert_eq!(s.lookup(1).unwrap(), &entry(150, &[30]));
        }
        // Removal is in-memory: replay keeps the best record on disk.
        let s = BestStore::open(&path).unwrap();
        assert_eq!(s.lookup(1).unwrap(), &entry(100, &[31]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn refuses_to_clobber_foreign_files() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a store file").unwrap();
        assert!(BestStore::open(&path).is_err());
        // Untouched.
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"definitely not a store file"
        );
        let _ = std::fs::remove_file(&path);
    }
}
