//! Content-addressed persistent store of best-known pass orderings.
//!
//! A compacting snapshot + tail-log pair with an in-memory index keyed
//! by program fingerprint (the workspace-wide content hash from
//! `autophase_core::eval_cache::fingerprint_module`). Serving a repeat
//! program is a `HashMap` lookup; discovering a better ordering appends
//! one record. The files survive restarts, so everything the daemon
//! ever learned about a program keeps paying off across deployments.
//!
//! # On-disk format (`APSTORE2` generation)
//!
//! Two files. The **tail log** at the store path holds records appended
//! since the last compaction:
//!
//! ```text
//! "APSTORE2"                                  // 8-byte file header
//! record := len u32 LE | payload | fnv1a-64(payload) u64 LE
//! payload := fingerprint u64 | cycles u64 | baseline_cycles u64
//!          | n u16 | n × pass id u16         // all LE
//! ```
//!
//! The **snapshot** at `<path>.snap` holds one record per live entry as
//! of its generation, plus a self-checking trailer:
//!
//! ```text
//! "APSNAPS2" | generation u64 LE
//! records (same framing; one per fingerprint, sorted)
//! 0xFFFF_FFFF u32 LE                          // sentinel: no record is this long
//! count u64 LE | fnv1a-64(all preceding bytes) u64 LE
//! ```
//!
//! Reopen loads the snapshot, replays the tail over it, and is O(live
//! entries + tail records) — compaction keeps the tail bounded, so
//! restart cost no longer grows with the store's full history.
//!
//! # Crash safety
//!
//! Appends are a single `write_all` + `sync_data` (routed through
//! [`autophase_telemetry::faultfs`] so the chaos suite can tear them).
//! Reopen scans tail records until the first truncated or
//! checksum-failing one and truncates back to the last good record, so
//! a torn tail costs at most the interrupted — unacknowledged — record.
//!
//! Compaction writes the next-generation snapshot to `<path>.snap.tmp`,
//! fsyncs, renames over `<path>.snap`, fsyncs the directory, and only
//! then truncates the tail. A crash at **any** byte of that sequence
//! recovers: before the rename the old snapshot + full tail replay to
//! the same index; after it, the new snapshot + not-yet-truncated tail
//! replay idempotently (insert-if-strictly-better is order-insensitive
//! for the same data). A stale `.snap.tmp` is deleted on open. A
//! snapshot that fails validation (bit rot — crashes cannot produce one
//! past the atomic rename) is quarantined to `<path>.snap.corrupt` and
//! the store continues from the tail alone.
//!
//! `APSTORE1` logs (the previous, append-only generation) migrate on
//! first open: the log is replayed, its index written as snapshot
//! generation 1, and the log atomically replaced by an empty `APSTORE2`
//! tail. The v1 file is not touched until the snapshot is durable, so a
//! crash mid-migration re-runs it idempotently.

use autophase_telemetry::faultfs;
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

const TAIL_MAGIC: &[u8; 8] = b"APSTORE2";
const V1_MAGIC: &[u8; 8] = b"APSTORE1";
const SNAP_MAGIC: &[u8; 8] = b"APSNAPS2";
/// Record-length sentinel opening the snapshot trailer. Unambiguous:
/// a real record's length field is at most `26 + 2 * MAX_SEQ_LEN`.
const SNAP_SENTINEL: u32 = u32::MAX;
/// Cap on passes per record — same plausibility guard the codecs use.
const MAX_SEQ_LEN: usize = 4096;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Best-known answer for one program fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BestEntry {
    /// Cycle count the ordering achieves.
    pub cycles: u64,
    /// Cycle count of the unoptimized program (cached so store hits
    /// answer without any profiling).
    pub baseline_cycles: u64,
    /// The effective ordering (changing passes, Table-1 ids).
    pub seq: Vec<u16>,
}

/// When the store folds its tail log into the next snapshot generation.
///
/// Compaction runs after an append when the tail is at least
/// `min_tail_bytes` long **and** either outweighs the snapshot
/// (`tail_bytes ≥ tail_factor × snapshot_bytes`) or is mostly dead
/// weight (superseded re-records of fingerprints already in the tail:
/// `dead / records ≥ dead_ratio`). It also runs on graceful shutdown
/// via [`BestStore::compact_if_dirty`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Tails shorter than this never trigger compaction (bytes past the
    /// 8-byte header).
    pub min_tail_bytes: u64,
    /// Compact when `tail_bytes ≥ tail_factor × snapshot_bytes`.
    pub tail_factor: f64,
    /// Compact when the fraction of tail records superseded by later
    /// tail records reaches this.
    pub dead_ratio: f64,
}

impl Default for CompactionPolicy {
    fn default() -> CompactionPolicy {
        CompactionPolicy {
            min_tail_bytes: 64 * 1024,
            tail_factor: 1.0,
            dead_ratio: 0.5,
        }
    }
}

impl CompactionPolicy {
    /// A policy that never compacts automatically (benchmarks use this
    /// to measure what unbounded history costs).
    pub fn never() -> CompactionPolicy {
        CompactionPolicy {
            min_tail_bytes: u64::MAX,
            ..CompactionPolicy::default()
        }
    }
}

/// A point-in-time accounting of the store's two files, for telemetry
/// and the durability benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Live fingerprints in the index.
    pub entries: usize,
    /// Snapshot generation (0 = no snapshot written yet).
    pub generation: u64,
    /// Size of the current snapshot file in bytes (0 when none).
    pub snapshot_bytes: u64,
    /// Tail-log record bytes (excludes the 8-byte header).
    pub tail_bytes: u64,
    /// Records currently in the tail.
    pub tail_records: u64,
    /// Tail records superseded by later tail records.
    pub dead_tail_records: u64,
    /// Compactions performed by this handle.
    pub compactions: u64,
    /// Whether this open migrated an `APSTORE1` log.
    pub migrated_v1: bool,
    /// Whether this open quarantined a corrupt snapshot.
    pub snapshot_quarantined: bool,
}

/// The persistent best-ordering store (see module docs).
#[derive(Debug)]
pub struct BestStore {
    file: File,
    path: PathBuf,
    index: HashMap<u64, BestEntry>,
    /// Tail-file append offset (includes the 8-byte header).
    tail: u64,
    tail_records: u64,
    /// Fingerprints appended to the tail since the last compaction.
    tail_fps: HashSet<u64>,
    dead_tail_records: u64,
    generation: u64,
    snapshot_bytes: u64,
    policy: CompactionPolicy,
    compactions: u64,
    migrated_v1: bool,
    snapshot_quarantined: bool,
    /// Records dropped by the last open's torn-tail scan.
    dropped_on_open: usize,
}

fn encode_record(fp: u64, entry: &BestEntry) -> Vec<u8> {
    let mut payload = Vec::with_capacity(26 + 2 * entry.seq.len());
    payload.extend_from_slice(&fp.to_le_bytes());
    payload.extend_from_slice(&entry.cycles.to_le_bytes());
    payload.extend_from_slice(&entry.baseline_cycles.to_le_bytes());
    payload.extend_from_slice(&(entry.seq.len() as u16).to_le_bytes());
    for &p in &entry.seq {
        payload.extend_from_slice(&p.to_le_bytes());
    }
    let mut rec = Vec::with_capacity(12 + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    rec
}

fn decode_payload(payload: &[u8]) -> Option<(u64, BestEntry)> {
    if payload.len() < 26 {
        return None;
    }
    let fp = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let cycles = u64::from_le_bytes(payload[8..16].try_into().ok()?);
    let baseline_cycles = u64::from_le_bytes(payload[16..24].try_into().ok()?);
    let n = u16::from_le_bytes(payload[24..26].try_into().ok()?) as usize;
    if n > MAX_SEQ_LEN || payload.len() != 26 + 2 * n {
        return None;
    }
    let seq = (0..n)
        .map(|i| u16::from_le_bytes(payload[26 + 2 * i..28 + 2 * i].try_into().unwrap()))
        .collect();
    Some((
        fp,
        BestEntry {
            cycles,
            baseline_cycles,
            seq,
        },
    ))
}

/// Scan a record region, folding each good record into `index` with
/// insert-if-strictly-better. Returns the fingerprints in record order,
/// the byte length of the good prefix, and whether a torn/corrupt tail
/// was hit (everything from there on is dropped).
fn replay_records(bytes: &[u8], index: &mut HashMap<u64, BestEntry>) -> (Vec<u64>, usize, bool) {
    let mut fps = Vec::new();
    let mut offset = 0;
    let mut dropped = false;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            break;
        }
        let parsed = rest
            .get(0..4)
            .map(|l| u32::from_le_bytes(l.try_into().unwrap()) as usize)
            .and_then(|len| {
                let payload = rest.get(4..4 + len)?;
                let sum = rest.get(4 + len..12 + len)?;
                if fnv1a(payload) != u64::from_le_bytes(sum.try_into().unwrap()) {
                    return None;
                }
                decode_payload(payload).map(|d| (d, 12 + len))
            });
        match parsed {
            Some(((fp, entry), consumed)) => {
                let better = index.get(&fp).is_none_or(|cur| entry.cycles < cur.cycles);
                if better {
                    index.insert(fp, entry);
                }
                fps.push(fp);
                offset += consumed;
            }
            None => {
                // Torn or corrupt from here on — we cannot reframe past
                // a bad length, so it is all one dropped tail.
                dropped = true;
                break;
            }
        }
    }
    (fps, offset, dropped)
}

fn snap_path(path: &Path) -> PathBuf {
    PathBuf::from(format!("{}.snap", path.display()))
}

fn snap_tmp_path(path: &Path) -> PathBuf {
    PathBuf::from(format!("{}.snap.tmp", path.display()))
}

fn snap_quarantine_path(path: &Path) -> PathBuf {
    PathBuf::from(format!("{}.snap.corrupt", path.display()))
}

/// Parse a complete snapshot file; `None` on any framing, checksum,
/// count, or trailing-bytes violation.
fn parse_snapshot(bytes: &[u8]) -> Option<(u64, HashMap<u64, BestEntry>)> {
    let body = bytes.strip_prefix(SNAP_MAGIC)?;
    let generation = u64::from_le_bytes(body.get(0..8)?.try_into().ok()?);
    let mut entries = HashMap::new();
    let mut off = 8;
    loop {
        let rest = body.get(off..)?;
        let len_raw = u32::from_le_bytes(rest.get(0..4)?.try_into().ok()?);
        if len_raw == SNAP_SENTINEL {
            let count = u64::from_le_bytes(rest.get(4..12)?.try_into().ok()?);
            let sum = u64::from_le_bytes(rest.get(12..20)?.try_into().ok()?);
            if rest.len() != 20 || count != entries.len() as u64 {
                return None;
            }
            // The trailer checksum covers every byte before itself.
            if fnv1a(&bytes[..bytes.len() - 8]) != sum {
                return None;
            }
            return Some((generation, entries));
        }
        let len = len_raw as usize;
        let payload = rest.get(4..4 + len)?;
        let sum = rest.get(4 + len..12 + len)?;
        if fnv1a(payload) != u64::from_le_bytes(sum.try_into().ok()?) {
            return None;
        }
        let (fp, entry) = decode_payload(payload)?;
        if entries.insert(fp, entry).is_some() {
            return None; // duplicate fingerprint: not a writer artifact
        }
        off += 12 + len;
    }
}

/// Serialize `index` as snapshot `generation` and publish it atomically
/// at `<path>.snap` (tmp + fsync + rename + directory fsync). Returns
/// the snapshot's size in bytes.
fn write_snapshot(
    path: &Path,
    generation: u64,
    index: &HashMap<u64, BestEntry>,
) -> io::Result<u64> {
    let mut body = Vec::new();
    body.extend_from_slice(SNAP_MAGIC);
    body.extend_from_slice(&generation.to_le_bytes());
    let mut fps: Vec<u64> = index.keys().copied().collect();
    fps.sort_unstable(); // deterministic bytes for a given index
    for fp in fps {
        body.extend_from_slice(&encode_record(fp, &index[&fp]));
    }
    body.extend_from_slice(&SNAP_SENTINEL.to_le_bytes());
    body.extend_from_slice(&(index.len() as u64).to_le_bytes());
    let sum = fnv1a(&body);
    body.extend_from_slice(&sum.to_le_bytes());

    let tmp = snap_tmp_path(path);
    let publish = (|| {
        let mut f = File::create(&tmp)?;
        faultfs::write_all(&mut f, &body, "store.snapshot")?;
        faultfs::sync_all(&f, "store.snapshot")?;
        drop(f);
        faultfs::rename(&tmp, &snap_path(path), "store.snapshot")
    })();
    if let Err(e) = publish {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    sync_dir(path);
    Ok(body.len() as u64)
}

/// Best-effort fsync of `path`'s parent directory, so a just-renamed
/// file's directory entry is durable. Errors are ignored: some
/// filesystems refuse directory fsync and the rename itself is already
/// atomic.
fn sync_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

impl BestStore {
    /// Open (creating if absent) the store at `path` with the default
    /// [`CompactionPolicy`]. See [`BestStore::open_with`].
    pub fn open(path: &Path) -> io::Result<BestStore> {
        BestStore::open_with(path, CompactionPolicy::default())
    }

    /// Open (creating if absent) the store at `path`: load the
    /// snapshot, replay the tail log over it, and truncate any torn
    /// tail back to the last good record. `APSTORE1` logs are migrated
    /// in place (see module docs).
    ///
    /// # Errors
    ///
    /// Filesystem errors, or `InvalidData` if the file exists but is
    /// not an autophase store (refuse to clobber foreign files).
    pub fn open_with(path: &Path, policy: CompactionPolicy) -> io::Result<BestStore> {
        // A stale tmp is a crashed compaction's half-written snapshot;
        // it was never renamed into place, so it holds nothing durable.
        let _ = std::fs::remove_file(snap_tmp_path(path));

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.starts_with(V1_MAGIC) {
            drop(file);
            return BestStore::migrate_v1(path, &bytes, policy);
        }
        let torn_header = bytes.len() < TAIL_MAGIC.len() && TAIL_MAGIC.starts_with(&bytes);
        if bytes.is_empty() || torn_header {
            // Fresh store, or a creation torn mid-header (the only
            // write that can leave a short file): (re)write the header.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            faultfs::write_all(&mut file, TAIL_MAGIC, "store.log")?;
            faultfs::sync_data(&file, "store.log")?;
            bytes.clear();
            bytes.extend_from_slice(TAIL_MAGIC);
        } else if !bytes.starts_with(TAIL_MAGIC) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not an autophase store", path.display()),
            ));
        }

        // Snapshot first, tail over it.
        let mut index: HashMap<u64, BestEntry> = HashMap::new();
        let mut generation = 0u64;
        let mut snapshot_bytes = 0u64;
        let mut snapshot_quarantined = false;
        let sp = snap_path(path);
        match faultfs::read(&sp, "store.snapshot") {
            Ok(snap) => match parse_snapshot(&snap) {
                Some((gen, entries)) => {
                    generation = gen;
                    snapshot_bytes = snap.len() as u64;
                    index = entries;
                }
                None => {
                    // Disk corruption, not a crash artifact: the rename
                    // is atomic, so no crash leaves a half snapshot at
                    // the published path. Quarantine it and serve from
                    // the tail alone.
                    let _ = std::fs::rename(&sp, snap_quarantine_path(path));
                    snapshot_quarantined = true;
                    autophase_telemetry::incr("serve.store", "snapshot_quarantined", 1);
                }
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }

        let (fps, good, dropped) = replay_records(&bytes[TAIL_MAGIC.len()..], &mut index);
        let offset = (TAIL_MAGIC.len() + good) as u64;
        file.set_len(offset)?;
        file.seek(SeekFrom::Start(offset))?;
        let tail_records = fps.len() as u64;
        let tail_fps: HashSet<u64> = fps.iter().copied().collect();
        let dead_tail_records = tail_records - tail_fps.len() as u64;
        Ok(BestStore {
            file,
            path: path.to_path_buf(),
            index,
            tail: offset,
            tail_records,
            tail_fps,
            dead_tail_records,
            generation,
            snapshot_bytes,
            policy,
            compactions: 0,
            migrated_v1: false,
            snapshot_quarantined,
            dropped_on_open: dropped as usize,
        })
    }

    /// One-time migration: replay the v1 log, publish it as snapshot
    /// generation 1, then atomically replace the log with an empty v2
    /// tail. The v1 bytes stay untouched until the snapshot is durable,
    /// so a crash anywhere in here just re-runs the migration.
    fn migrate_v1(path: &Path, bytes: &[u8], policy: CompactionPolicy) -> io::Result<BestStore> {
        let mut index: HashMap<u64, BestEntry> = HashMap::new();
        let (_, _, dropped) = replay_records(&bytes[V1_MAGIC.len()..], &mut index);
        let snapshot_bytes = write_snapshot(path, 1, &index)?;

        let tmp = PathBuf::from(format!("{}.tmp", path.display()));
        {
            let mut f = File::create(&tmp)?;
            faultfs::write_all(&mut f, TAIL_MAGIC, "store.log")?;
            faultfs::sync_all(&f, "store.log")?;
        }
        faultfs::rename(&tmp, path, "store.log")?;
        sync_dir(path);

        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.seek(SeekFrom::End(0))?;
        autophase_telemetry::incr("serve.store", "migrated_v1", 1);
        Ok(BestStore {
            file,
            path: path.to_path_buf(),
            index,
            tail: TAIL_MAGIC.len() as u64,
            tail_records: 0,
            tail_fps: HashSet::new(),
            dead_tail_records: 0,
            generation: 1,
            snapshot_bytes,
            policy,
            compactions: 0,
            migrated_v1: true,
            snapshot_quarantined: false,
            dropped_on_open: dropped as usize,
        })
    }

    /// Best-known entry for a program fingerprint.
    pub fn lookup(&self, fp: u64) -> Option<&BestEntry> {
        self.index.get(&fp)
    }

    /// Record an answer if it beats (strictly) the best known one.
    /// Returns whether the entry was stored. The append is durable
    /// (synced) before the index is updated, so a `true` return is an
    /// acknowledgment: the record survives any subsequent crash.
    ///
    /// May trigger a compaction per the [`CompactionPolicy`]; a failed
    /// compaction is counted (`serve.store{compaction_error}`) and
    /// retried on a later append, never surfaced as a record failure —
    /// the acknowledged append is already safe in the tail.
    ///
    /// # Errors
    ///
    /// Filesystem errors; the in-memory index is left unchanged on error.
    pub fn record(&mut self, fp: u64, entry: BestEntry) -> io::Result<bool> {
        if entry.seq.len() > MAX_SEQ_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "pass sequence too long for a store record",
            ));
        }
        if let Some(cur) = self.index.get(&fp) {
            if entry.cycles >= cur.cycles {
                return Ok(false);
            }
        }
        let rec = encode_record(fp, &entry);
        // The synced append is the store's slow path; time it so STATS
        // can show when fsync latency starts dominating cold requests.
        let t = autophase_telemetry::maybe_now();
        self.file.seek(SeekFrom::Start(self.tail))?;
        faultfs::write_all(&mut self.file, &rec, "store.append")?;
        faultfs::sync_data(&self.file, "store.append")?;
        autophase_telemetry::observe_since("serve.store_ns", "append", t);
        self.tail += rec.len() as u64;
        self.tail_records += 1;
        if !self.tail_fps.insert(fp) {
            self.dead_tail_records += 1;
        }
        self.index.insert(fp, entry);
        if self.should_compact() {
            if let Err(e) = self.compact() {
                autophase_telemetry::incr("serve.store", "compaction_error", 1);
                let _ = e; // deferred: the tail still holds everything
            }
        }
        Ok(true)
    }

    fn should_compact(&self) -> bool {
        let tail_bytes = self.tail - TAIL_MAGIC.len() as u64;
        if tail_bytes < self.policy.min_tail_bytes {
            return false;
        }
        let dead = self.dead_tail_records as f64 / (self.tail_records.max(1)) as f64;
        tail_bytes as f64 >= self.policy.tail_factor * self.snapshot_bytes as f64
            || dead >= self.policy.dead_ratio
    }

    /// Fold the tail into the next snapshot generation and truncate the
    /// tail. Crash-safe at every byte (see module docs). On error the
    /// store stays fully consistent — at worst the new snapshot is
    /// published but the tail not yet truncated, which reopens
    /// idempotently and is retried by the next triggered compaction.
    pub fn compact(&mut self) -> io::Result<()> {
        let t = autophase_telemetry::maybe_now();
        let generation = self.generation + 1;
        self.snapshot_bytes = write_snapshot(&self.path, generation, &self.index)?;
        self.generation = generation;
        self.file.set_len(TAIL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::Start(TAIL_MAGIC.len() as u64))?;
        faultfs::sync_data(&self.file, "store.log")?;
        self.tail = TAIL_MAGIC.len() as u64;
        self.tail_records = 0;
        self.tail_fps.clear();
        self.dead_tail_records = 0;
        self.compactions += 1;
        autophase_telemetry::incr("serve.store", "compaction", 1);
        autophase_telemetry::observe_since("serve.store_ns", "compact", t);
        Ok(())
    }

    /// [`BestStore::compact`], but only when the tail holds records —
    /// the graceful-shutdown hook, so a cleanly stopped daemon restarts
    /// from a pure snapshot.
    pub fn compact_if_dirty(&mut self) -> io::Result<()> {
        if self.tail_records > 0 {
            self.compact()
        } else {
            Ok(())
        }
    }

    /// Retire a fingerprint from the in-memory index, returning the entry
    /// it held. The server uses this when a stored ordering no longer
    /// replays cleanly (a pass in it now faults or runs out of fuel), so
    /// the next request recomputes instead of serving numbers the IR
    /// cannot back. The on-disk record is not rewritten; if nothing
    /// strictly better is recorded over it, the entry can resurface on
    /// the next [`BestStore::open`] — at worst it is retired again on
    /// first touch, never served inconsistently. The next compaction
    /// drops it for good (snapshots hold only the live index).
    pub fn remove(&mut self, fp: u64) -> Option<BestEntry> {
        self.index.remove(&fp)
    }

    /// Number of distinct programs in the index.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no program has an entry yet.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether the last open dropped a torn/corrupt tail.
    pub fn dropped_on_open(&self) -> bool {
        self.dropped_on_open > 0
    }

    /// Current file accounting (see [`StoreStats`]).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            entries: self.index.len(),
            generation: self.generation,
            snapshot_bytes: self.snapshot_bytes,
            tail_bytes: self.tail - TAIL_MAGIC.len() as u64,
            tail_records: self.tail_records,
            dead_tail_records: self.dead_tail_records,
            compactions: self.compactions,
            migrated_v1: self.migrated_v1,
            snapshot_quarantined: self.snapshot_quarantined,
        }
    }

    /// The tail log's filesystem path (the snapshot lives beside it at
    /// `<path>.snap`).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("autophase_store_{}_{name}.log", std::process::id()))
    }

    fn wipe(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(snap_path(path));
        let _ = std::fs::remove_file(snap_tmp_path(path));
        let _ = std::fs::remove_file(snap_quarantine_path(path));
    }

    fn entry(cycles: u64, seq: &[u16]) -> BestEntry {
        BestEntry {
            cycles,
            baseline_cycles: cycles * 2,
            seq: seq.to_vec(),
        }
    }

    /// A policy that compacts after every append.
    fn eager() -> CompactionPolicy {
        CompactionPolicy {
            min_tail_bytes: 1,
            tail_factor: 0.0,
            dead_ratio: 0.0,
        }
    }

    #[test]
    fn roundtrips_across_reopen() {
        let path = tmp("roundtrip");
        wipe(&path);
        {
            let mut s = BestStore::open(&path).unwrap();
            assert!(s.is_empty());
            assert!(s.record(1, entry(100, &[31, 38])).unwrap());
            assert!(s.record(2, entry(50, &[])).unwrap());
            // Not better: ignored, not appended.
            assert!(!s.record(1, entry(100, &[30])).unwrap());
            assert!(!s.record(1, entry(150, &[30])).unwrap());
            // Strictly better: supersedes.
            assert!(s.record(1, entry(90, &[31, 38, 30])).unwrap());
        }
        let s = BestStore::open(&path).unwrap();
        assert!(!s.dropped_on_open());
        assert_eq!(s.len(), 2);
        assert_eq!(s.lookup(1).unwrap(), &entry(90, &[31, 38, 30]));
        assert_eq!(s.lookup(2).unwrap(), &entry(50, &[]));
        assert!(s.lookup(3).is_none());
        wipe(&path);
    }

    #[test]
    fn torn_trailing_record_is_dropped_not_a_panic() {
        let path = tmp("torn");
        wipe(&path);
        {
            let mut s = BestStore::open(&path).unwrap();
            s.record(1, entry(100, &[31])).unwrap();
            s.record(2, entry(200, &[38, 30])).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Simulate a crash mid-append: a fresh record cut off partway.
        let torn_rec = encode_record(3, &entry(300, &[7, 8, 9]));
        for cut in [1, 5, torn_rec.len() - 1] {
            let mut bytes = full.clone();
            bytes.extend_from_slice(&torn_rec[..cut]);
            std::fs::write(&path, &bytes).unwrap();
            let s = BestStore::open(&path).unwrap();
            assert!(s.dropped_on_open(), "cut at {cut} not detected");
            assert_eq!(s.len(), 2, "good prefix lost at cut {cut}");
            assert!(s.lookup(3).is_none());
            // The truncation leaves a healthy file behind.
            assert_eq!(std::fs::read(&path).unwrap(), full);
        }
        wipe(&path);
    }

    #[test]
    fn corrupt_tail_checksum_is_dropped_and_appends_resume() {
        let path = tmp("corrupt");
        wipe(&path);
        {
            let mut s = BestStore::open(&path).unwrap();
            s.record(1, entry(100, &[31])).unwrap();
        }
        let good = std::fs::read(&path).unwrap();
        let mut bytes = good.clone();
        let mut bad = encode_record(2, &entry(50, &[38]));
        let last = bad.len() - 1;
        bad[last] ^= 0xff; // break the checksum
        bytes.extend_from_slice(&bad);
        std::fs::write(&path, &bytes).unwrap();
        {
            let mut s = BestStore::open(&path).unwrap();
            assert!(s.dropped_on_open());
            assert_eq!(s.len(), 1);
            // New appends land where the good prefix ended.
            assert!(s.record(4, entry(70, &[23])).unwrap());
        }
        let s = BestStore::open(&path).unwrap();
        assert!(!s.dropped_on_open());
        assert_eq!(s.len(), 2);
        assert_eq!(s.lookup(4).unwrap(), &entry(70, &[23]));
        wipe(&path);
    }

    #[test]
    fn removed_entries_can_be_rerecorded() {
        let path = tmp("remove");
        wipe(&path);
        {
            let mut s = BestStore::open(&path).unwrap();
            assert!(s.record(1, entry(100, &[31])).unwrap());
            assert_eq!(s.remove(1), Some(entry(100, &[31])));
            assert!(s.lookup(1).is_none());
            assert!(s.remove(1).is_none());
            // After removal even a worse answer is recordable — the slot
            // is empty again as far as the index is concerned.
            assert!(s.record(1, entry(150, &[30])).unwrap());
            assert_eq!(s.lookup(1).unwrap(), &entry(150, &[30]));
        }
        // Removal is in-memory: tail replay keeps the best record.
        let s = BestStore::open(&path).unwrap();
        assert_eq!(s.lookup(1).unwrap(), &entry(100, &[31]));
        wipe(&path);
    }

    #[test]
    fn removed_entries_die_at_compaction() {
        let path = tmp("remove_compact");
        wipe(&path);
        let mut s = BestStore::open(&path).unwrap();
        s.record(1, entry(100, &[31])).unwrap();
        s.record(2, entry(200, &[38])).unwrap();
        s.remove(1);
        s.compact().unwrap();
        drop(s);
        let s = BestStore::open(&path).unwrap();
        assert!(s.lookup(1).is_none(), "compaction drops retired entries");
        assert_eq!(s.lookup(2).unwrap(), &entry(200, &[38]));
        wipe(&path);
    }

    #[test]
    fn refuses_to_clobber_foreign_files() {
        let path = tmp("foreign");
        wipe(&path);
        std::fs::write(&path, b"definitely not a store file").unwrap();
        assert!(BestStore::open(&path).is_err());
        // Untouched.
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"definitely not a store file"
        );
        wipe(&path);
    }

    #[test]
    fn compaction_folds_tail_into_snapshot() {
        let path = tmp("compact");
        wipe(&path);
        {
            let mut s = BestStore::open_with(&path, eager()).unwrap();
            for fp in 0..20u64 {
                assert!(s.record(fp, entry(1000 + fp, &[31, 38])).unwrap());
            }
            let st = s.stats();
            assert!(st.compactions >= 19, "eager policy compacts per append");
            assert_eq!(st.tail_records, 0, "tail folded away");
            assert!(st.generation >= 19);
            assert!(st.snapshot_bytes > 0);
        }
        let s = BestStore::open(&path).unwrap();
        assert_eq!(s.len(), 20);
        for fp in 0..20u64 {
            assert_eq!(s.lookup(fp).unwrap(), &entry(1000 + fp, &[31, 38]));
        }
        assert_eq!(
            s.stats().tail_bytes,
            0,
            "reopen after compaction replays no tail"
        );
        wipe(&path);
    }

    #[test]
    fn dead_ratio_triggers_compaction() {
        let path = tmp("dead");
        wipe(&path);
        let mut s = BestStore::open_with(
            &path,
            CompactionPolicy {
                min_tail_bytes: 1,
                tail_factor: f64::INFINITY,
                dead_ratio: 0.5,
            },
        )
        .unwrap();
        // Churn one fingerprint: each re-record supersedes the last.
        for i in 0..10u64 {
            assert!(s.record(7, entry(1000 - i, &[31])).unwrap());
        }
        assert!(s.stats().compactions > 0, "churn must trigger compaction");
        assert_eq!(s.len(), 1);
        assert_eq!(s.lookup(7).unwrap().cycles, 991);
        wipe(&path);
    }

    #[test]
    fn stale_snapshot_tmp_is_removed_on_open() {
        let path = tmp("staletmp");
        wipe(&path);
        {
            let mut s = BestStore::open(&path).unwrap();
            s.record(1, entry(100, &[31])).unwrap();
        }
        std::fs::write(snap_tmp_path(&path), b"half-written garbage").unwrap();
        let s = BestStore::open(&path).unwrap();
        assert_eq!(s.len(), 1);
        assert!(
            !snap_tmp_path(&path).exists(),
            "crashed compaction's tmp cleaned up"
        );
        wipe(&path);
    }

    #[test]
    fn rename_window_crash_replays_idempotently() {
        // The one crash window with *both* files populated: the new
        // snapshot has been renamed into place but the tail not yet
        // truncated. Reopen must fold them to the same index.
        let path = tmp("renamewin");
        wipe(&path);
        let mut s = BestStore::open(&path).unwrap();
        for fp in 0..8u64 {
            s.record(fp, entry(500 + fp, &[31])).unwrap();
        }
        // Publish the snapshot by hand, leaving the tail untouched —
        // exactly the post-rename, pre-truncate disk state.
        write_snapshot(&path, 1, &s.index).unwrap();
        drop(s);
        let s = BestStore::open(&path).unwrap();
        assert_eq!(s.len(), 8);
        for fp in 0..8u64 {
            assert_eq!(s.lookup(fp).unwrap(), &entry(500 + fp, &[31]));
        }
        assert_eq!(s.stats().generation, 1);
        assert!(!s.dropped_on_open());
        wipe(&path);
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_tail_survives() {
        let path = tmp("snapcorrupt");
        wipe(&path);
        {
            let mut s = BestStore::open_with(&path, eager()).unwrap();
            s.record(1, entry(100, &[31])).unwrap();
            s.record(2, entry(200, &[38])).unwrap();
        }
        {
            // Post-compaction append so the tail holds something too.
            let mut s = BestStore::open_with(&path, CompactionPolicy::never()).unwrap();
            s.record(3, entry(300, &[30])).unwrap();
        }
        // Flip one snapshot byte: validation must fail closed.
        let sp = snap_path(&path);
        let mut snap = std::fs::read(&sp).unwrap();
        let mid = snap.len() / 2;
        snap[mid] ^= 0xff;
        std::fs::write(&sp, &snap).unwrap();

        let mut s = BestStore::open(&path).unwrap();
        let st = s.stats();
        assert!(st.snapshot_quarantined);
        assert!(snap_quarantine_path(&path).exists(), "moved aside, kept");
        assert!(!sp.exists());
        // Snapshot entries are gone (that is the cost of bit rot), but
        // the tail still serves and the store still records.
        assert_eq!(s.lookup(3).unwrap(), &entry(300, &[30]));
        assert!(s.record(4, entry(400, &[23])).unwrap());
        drop(s);
        let s = BestStore::open(&path).unwrap();
        assert!(!s.stats().snapshot_quarantined, "fresh open, no snapshot");
        assert_eq!(s.len(), 2);
        wipe(&path);
    }

    #[test]
    fn truncated_snapshot_at_every_offset_recovers() {
        let path = tmp("snapmatrix");
        wipe(&path);
        {
            let mut s = BestStore::open_with(&path, eager()).unwrap();
            for fp in 0..6u64 {
                s.record(fp, entry(900 + fp, &[31, 38, 30])).unwrap();
            }
        }
        let sp = snap_path(&path);
        let snap = std::fs::read(&sp).unwrap();
        for cut in 0..snap.len() {
            std::fs::write(&sp, &snap[..cut]).unwrap();
            let _ = std::fs::remove_file(snap_quarantine_path(&path));
            let s = BestStore::open(&path).unwrap();
            assert!(
                s.stats().snapshot_quarantined,
                "cut at {cut} must quarantine"
            );
            // The tail was compacted away, so entries are lost to the
            // quarantine — but open never fails and the store serves.
            assert!(s.len() <= 6);
            drop(s);
            // Restore for the next iteration.
            let _ = std::fs::remove_file(snap_quarantine_path(&path));
            std::fs::write(&sp, &snap).unwrap();
        }
        let s = BestStore::open(&path).unwrap();
        assert_eq!(s.len(), 6, "pristine snapshot still loads");
        wipe(&path);
    }

    #[test]
    fn migrates_v1_logs_in_place() {
        let path = tmp("migrate");
        wipe(&path);
        // Forge a v1 log byte-for-byte: magic + records (same framing).
        let mut v1 = Vec::new();
        v1.extend_from_slice(V1_MAGIC);
        v1.extend_from_slice(&encode_record(1, &entry(100, &[31])));
        v1.extend_from_slice(&encode_record(2, &entry(200, &[38, 30])));
        v1.extend_from_slice(&encode_record(1, &entry(90, &[31, 38]))); // supersedes
        std::fs::write(&path, &v1).unwrap();

        let mut s = BestStore::open(&path).unwrap();
        let st = s.stats();
        assert!(st.migrated_v1);
        assert_eq!(st.generation, 1);
        assert_eq!(st.tail_records, 0, "history folded into the snapshot");
        assert_eq!(s.len(), 2);
        assert_eq!(s.lookup(1).unwrap(), &entry(90, &[31, 38]));
        assert_eq!(s.lookup(2).unwrap(), &entry(200, &[38, 30]));
        assert_eq!(
            &std::fs::read(&path).unwrap(),
            TAIL_MAGIC,
            "log rewritten as an empty v2 tail"
        );
        // Still writable, and the second open is a plain v2 open.
        assert!(s.record(3, entry(300, &[23])).unwrap());
        drop(s);
        let s = BestStore::open(&path).unwrap();
        assert!(!s.stats().migrated_v1);
        assert_eq!(s.len(), 3);
        wipe(&path);
    }

    #[test]
    fn migration_crash_after_snapshot_rerolls_cleanly() {
        // Crash window: snapshot published, v1 log not yet replaced.
        // Reopen sees v1 magic and just migrates again.
        let path = tmp("migrate_crash");
        wipe(&path);
        let mut v1 = Vec::new();
        v1.extend_from_slice(V1_MAGIC);
        v1.extend_from_slice(&encode_record(5, &entry(550, &[31])));
        std::fs::write(&path, &v1).unwrap();
        let mut index = HashMap::new();
        index.insert(5, entry(550, &[31]));
        write_snapshot(&path, 1, &index).unwrap(); // the "crashed" migration got this far
        let s = BestStore::open(&path).unwrap();
        assert!(s.stats().migrated_v1);
        assert_eq!(s.lookup(5).unwrap(), &entry(550, &[31]));
        wipe(&path);
    }

    #[test]
    fn torn_header_resets_to_fresh_store() {
        let path = tmp("tornheader");
        wipe(&path);
        std::fs::write(&path, &TAIL_MAGIC[..5]).unwrap();
        let mut s = BestStore::open(&path).unwrap();
        assert!(s.is_empty());
        assert!(s.record(1, entry(100, &[31])).unwrap());
        wipe(&path);
    }

    #[test]
    fn compact_if_dirty_only_touches_dirty_tails() {
        let path = tmp("dirty");
        wipe(&path);
        let mut s = BestStore::open_with(&path, CompactionPolicy::never()).unwrap();
        s.compact_if_dirty().unwrap();
        assert_eq!(s.stats().compactions, 0, "clean tail: no-op");
        s.record(1, entry(100, &[31])).unwrap();
        s.compact_if_dirty().unwrap();
        assert_eq!(s.stats().compactions, 1);
        assert_eq!(s.stats().tail_records, 0);
        wipe(&path);
    }
}
