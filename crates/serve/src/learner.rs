//! The background learner: cold-path outcomes in, versioned policies out.
//!
//! Every cold compile already produced exactly one training episode —
//! the rollout's observations/actions and the profiled cycle counts.
//! The request path hands that [`Experience`] to [`Learner::offer`],
//! which pushes it onto a *bounded* queue: when the queue is full the
//! oldest experience is shed (`serve.learn{shed}`) so a slow learner
//! can never apply back-pressure to serving. The learner thread drains
//! the queue, feeds an [`OnlineTrainer`] (incremental PPO on the SoA
//! batched backward), and every `publish_every` successful updates
//! publishes a versioned checkpoint into the [`ModelRegistry`]. With
//! `auto_promote` it then validates the candidate (shape + finite
//! weights) and hot-swaps it into the engine — the same armor the
//! `PROMOTE` verb applies, so a poisoned update can never reach
//! serving even from inside the daemon.
//!
//! The thread runs under the same supervisor idiom as the inference
//! engine: a panic anywhere in the loop is caught and the loop
//! respawned with a fresh trainer re-seeded from the registry's active
//! version (`serve.learn{respawn}`), so one pathological batch cannot
//! end online learning for the daemon's lifetime.

use crate::engine::{serve_layout, InferenceEngine};
use autophase_rl::checkpoint::ArmoredLoad;
use autophase_rl::online::{Experience, OnlineConfig, OnlineTrainer};
use autophase_rl::ppo::PpoConfig;
use autophase_rl::registry::ModelRegistry;
use autophase_telemetry as telemetry;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Knobs for the in-daemon learner.
#[derive(Debug, Clone)]
pub struct LearnerConfig {
    /// Experience-queue capacity; beyond it the oldest episode is shed.
    pub channel_cap: usize,
    /// Transitions to accumulate before an incremental PPO update.
    pub min_batch: usize,
    /// Publish a registry version every this many successful updates.
    pub publish_every: u64,
    /// Hot-swap each published version into the engine (after the same
    /// validation `PROMOTE` applies).
    pub auto_promote: bool,
    /// Registry versions to keep (the active version always survives).
    pub keep_versions: usize,
    /// Seed for a freshly initialized agent (ignored when warm-starting
    /// from the registry's active version).
    pub seed: u64,
    /// PPO hyperparameters for the incremental updates.
    pub ppo: PpoConfig,
}

impl Default for LearnerConfig {
    fn default() -> LearnerConfig {
        LearnerConfig {
            channel_cap: 256,
            min_batch: 96,
            publish_every: 2,
            auto_promote: false,
            keep_versions: 8,
            seed: 0x0911_11E5,
            ppo: PpoConfig::small(),
        }
    }
}

struct Channel {
    queue: Mutex<VecDeque<Experience>>,
    cv: Condvar,
    cap: usize,
    stop: AtomicBool,
}

/// Handle to the learner thread (see module docs).
pub struct Learner {
    channel: Arc<Channel>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Learner {
    /// Spawn the learner thread. It warm-starts from the registry's
    /// active version when one loads and validates, otherwise from a
    /// fresh agent.
    pub fn start(
        cfg: LearnerConfig,
        engine: Arc<InferenceEngine>,
        registry: Arc<Mutex<ModelRegistry>>,
    ) -> Learner {
        let channel = Arc::new(Channel {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            cap: cfg.channel_cap.max(1),
            stop: AtomicBool::new(false),
        });
        let thread = {
            let channel = Arc::clone(&channel);
            std::thread::Builder::new()
                .name("serve-learn".into())
                .spawn(move || {
                    // Supervisor: a panicking learner loop is respawned
                    // with a fresh trainer, never fatal to the daemon.
                    loop {
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            learner_loop(&channel, &cfg, &engine, &registry)
                        }));
                        if run.is_ok() {
                            return;
                        }
                        telemetry::incr("serve.learn", "respawn", 1);
                    }
                })
                .expect("spawn learner thread")
        };
        Learner {
            channel,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// Queue one cold-path episode for training. Never blocks: a full
    /// queue sheds its *oldest* entry (fresh experience reflects the
    /// current policy better than stale experience does).
    pub fn offer(&self, exp: Experience) {
        {
            let mut q = lock_recover(&self.channel.queue);
            if q.len() >= self.channel.cap {
                q.pop_front();
                telemetry::incr("serve.learn", "shed", 1);
            }
            q.push_back(exp);
            telemetry::incr("serve.learn", "offered", 1);
        }
        self.channel.cv.notify_one();
    }

    /// Experiences waiting in the queue.
    pub fn queue_len(&self) -> usize {
        lock_recover(&self.channel.queue).len()
    }

    /// Stop the learner thread: it finishes draining what is already
    /// queued, then exits. Idempotent.
    pub fn stop(&self) {
        self.channel.stop.store(true, Ordering::SeqCst);
        self.channel.cv.notify_all();
        if let Some(t) = lock_recover(&self.thread).take() {
            let _ = t.join();
        }
    }
}

impl Drop for Learner {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Build the trainer this loop incarnation starts from: the registry's
/// active version when it loads and validates, else a fresh agent.
fn seed_trainer(cfg: &LearnerConfig, registry: &Mutex<ModelRegistry>) -> OnlineTrainer {
    let layout = serve_layout();
    let online = OnlineConfig {
        min_batch: cfg.min_batch,
        ppo: cfg.ppo.clone(),
        seed: cfg.seed,
    };
    let active = {
        let mut reg = lock_recover(registry);
        reg.active().map(|v| (v, reg.load_armored(v)))
    };
    if let Some((version, ArmoredLoad::Loaded(ckpt))) = active {
        match OnlineTrainer::from_checkpoint(layout, &online, &ckpt) {
            Ok(t) => {
                telemetry::incr("serve.learn", "warm_start", 1);
                return t;
            }
            Err(_) => {
                telemetry::incr("serve.learn", "warm_start_rejected", 1);
                let _ = version;
            }
        }
    }
    OnlineTrainer::new(layout, &online)
}

fn learner_loop(
    channel: &Channel,
    cfg: &LearnerConfig,
    engine: &InferenceEngine,
    registry: &Mutex<ModelRegistry>,
) {
    let layout = serve_layout();
    let mut trainer = seed_trainer(cfg, registry);
    let mut updates_since_publish = 0u64;
    loop {
        let drained: Vec<Experience> = {
            let mut q = lock_recover(&channel.queue);
            while q.is_empty() && !channel.stop.load(Ordering::SeqCst) {
                q = channel.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
            if q.is_empty() {
                return; // stop requested and nothing left to drain
            }
            q.drain(..).collect()
        };
        for exp in &drained {
            trainer.ingest(exp);
        }
        telemetry::incr("serve.learn", "ingested", drained.len() as u64);

        while let Some(report) = trainer.try_update() {
            if report.rejected {
                telemetry::incr("serve.learn", "update_rejected", 1);
                continue;
            }
            telemetry::incr("serve.learn", "update", 1);
            updates_since_publish += 1;
            if updates_since_publish < cfg.publish_every {
                continue;
            }
            updates_since_publish = 0;
            let ckpt = trainer.checkpoint();
            let published = {
                let mut reg = lock_recover(registry);
                let r = reg.publish(&ckpt, trainer.samples(), trainer.updates());
                if r.is_ok() {
                    let _ = reg.retain_last(cfg.keep_versions);
                }
                r
            };
            let version = match published {
                Ok(v) => {
                    telemetry::incr("serve.learn", "publish", 1);
                    v
                }
                Err(_) => {
                    telemetry::incr("serve.learn", "publish_error", 1);
                    continue;
                }
            };
            if !cfg.auto_promote {
                continue;
            }
            // Same promotion armor as the wire verb: never swap in a
            // candidate that fails shape/finiteness validation — the
            // old policy keeps serving.
            if layout.validate_checkpoint(&ckpt).is_err() {
                telemetry::incr("serve.swap", "rejected_invalid", 1);
                continue;
            }
            match engine.swap_policy(ckpt.policy.clone(), version) {
                Ok(()) => {
                    let _ = lock_recover(registry).set_active(version);
                    telemetry::incr("serve.swap", "promoted_auto", 1);
                }
                Err(_) => telemetry::incr("serve.swap", "swap_error", 1),
            }
        }
    }
}
