//! End-to-end smoke of the compile service: a real daemon on a real
//! socket, mixed warm/cold load from concurrent clients, an injected
//! policy fault mid-load, and a restart that proves the store persists.
//!
//! This is the test `make serve-smoke` runs.

use autophase_benchmarks::suite;
use autophase_nn::mlp::{Activation, Mlp};
use autophase_serve::client::Client;
use autophase_serve::engine::{serve_num_actions, serve_obs_dim};
use autophase_serve::protocol::{ErrKind, Source};
use autophase_serve::server::{Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmp_store(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "autophase_serve_smoke_{}_{name}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn test_policy() -> Mlp {
    Mlp::new(
        &[serve_obs_dim(), 32, serve_num_actions()],
        Activation::Tanh,
        7,
    )
}

fn start_server(store: &Path, chaos: bool) -> Server {
    let cfg = ServerConfig {
        store_path: store.to_path_buf(),
        chaos,
        ..ServerConfig::default()
    };
    Server::start(test_policy(), cfg).expect("server starts")
}

/// The full tour: cold compiles populate the store, warm repeats hit it,
/// chaos degrades to baseline without a single failed request, shutdown
/// is clean, and a restarted daemon still remembers every program.
#[test]
fn mixed_load_chaos_and_restart() {
    let store = tmp_store("tour");
    let server = start_server(&store, true);
    let addr = server.addr();

    let programs: Vec<String> = suite()
        .into_iter()
        .map(|b| autophase_ir::printer::print_module(&b.module))
        .collect();
    assert!(programs.len() >= 4, "suite unexpectedly small");

    // Cold phase: every program is new, so every answer comes off the
    // policy path and lands in the store.
    {
        let mut client = Client::connect(addr).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        for ir in &programs {
            // Generous explicit deadline: debug builds are slow and the
            // smoke test is about correctness, not latency.
            let reply = client
                .compile(ir, Some(60_000), false)
                .expect("cold compile");
            assert_eq!(reply.source, Source::Policy, "first sight must be cold");
            assert!(reply.baseline_cycles > 0);
        }
    }
    assert_eq!(server.store_len(), programs.len());

    // Warm phase: concurrent clients replaying the same programs must
    // all hit the store — zero failures, zero recomputation.
    let mut handles = Vec::new();
    for t in 0..4 {
        let programs = programs.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            for (i, ir) in programs.iter().enumerate() {
                let reply = client
                    .compile(ir, None, i % 2 == 0)
                    .unwrap_or_else(|e| panic!("warm compile t{t} p{i}: {e}"));
                assert_eq!(reply.source, Source::Store, "t{t} p{i} missed the store");
                if i % 2 == 0 {
                    let ir_back = reply.ir.expect("asked for IR");
                    autophase_ir::parser::parse_module(&ir_back).expect("served IR parses");
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("warm client panicked");
    }

    // Chaos phase: arm injected policy faults, then send programs the
    // store has never seen. Every request must still be answered OK —
    // degraded to the baseline ordering, never dropped.
    {
        let mut client = Client::connect(addr).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        client.chaos(1_000).expect("chaos accepted");
        let mut saw_baseline = false;
        for (i, ir) in programs.iter().enumerate() {
            // Rename the module so its fingerprint is new to the store.
            let mut m = autophase_ir::parser::parse_module(ir).unwrap();
            m.name = format!("{}__chaos{i}", m.name);
            let renamed = autophase_ir::printer::print_module(&m);
            let reply = client
                .compile(&renamed, Some(60_000), false)
                .unwrap_or_else(|e| panic!("chaos compile p{i}: {e}"));
            saw_baseline |= reply.source == Source::Baseline;
            assert!(reply.baseline_cycles > 0);
        }
        assert!(saw_baseline, "injected faults never reached a request");
    }

    let expected = server.store_len();
    assert!(expected > programs.len(), "chaos programs were not stored");
    server.shutdown();

    // Restart on the same log: every memoized ordering must survive.
    let server = start_server(&store, false);
    assert_eq!(
        server.store_len(),
        expected,
        "store lost entries on restart"
    );
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reply = client
        .compile(&programs[0], None, false)
        .expect("warm after restart");
    assert_eq!(reply.source, Source::Store, "restart forgot the store");
    server.shutdown();
    let _ = std::fs::remove_file(&store);
}

/// A 50-program progen mini-corpus through a live daemon: the cold pass
/// answers every request (zero drops — corpus programs are exactly what
/// the daemon will see at scale, not the 9 curated kernels), and the
/// warm replay is served entirely from store hits without a single
/// recompute.
#[test]
fn mini_corpus_replays_with_zero_drops_and_full_store_warmth() {
    use autophase_corpus::{build_corpus, CorpusConfig};

    let corpus = build_corpus(&CorpusConfig {
        target: 50,
        workers: 2,
        ..CorpusConfig::default()
    });
    assert_eq!(corpus.programs.len(), 50);
    let programs: Vec<String> = corpus
        .programs
        .iter()
        .map(|p| autophase_ir::printer::print_module(&p.module))
        .collect();

    let store = tmp_store("minicorpus");
    let server = start_server(&store, false);
    let addr = server.addr();

    // Cold: two concurrent clients split the corpus. Every request must
    // be answered (no drops, no refusals) and no fingerprint repeats, so
    // nothing can be a store hit.
    let mut handles = Vec::new();
    for (t, half) in programs.chunks(25).enumerate() {
        let half: Vec<String> = half.to_vec();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            for (i, ir) in half.iter().enumerate() {
                let reply = client
                    .compile(ir, Some(120_000), false)
                    .unwrap_or_else(|e| panic!("cold compile t{t} p{i} dropped: {e}"));
                assert_eq!(reply.source, Source::Policy, "t{t} p{i}: corpus is deduped");
                assert!(reply.baseline_cycles > 0);
                assert!(
                    reply.cycles <= reply.baseline_cycles * 2,
                    "t{t} p{i} absurd"
                );
            }
        }));
    }
    for h in handles {
        h.join().expect("cold client panicked");
    }
    assert_eq!(
        server.store_len(),
        programs.len(),
        "every corpus program must land in the store"
    );

    // Warm: the whole corpus again on one connection — all store hits.
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    for (i, ir) in programs.iter().enumerate() {
        let reply = client
            .compile(ir, Some(120_000), false)
            .unwrap_or_else(|e| panic!("warm compile p{i} dropped: {e}"));
        assert_eq!(
            reply.source,
            Source::Store,
            "p{i} recomputed on warm replay"
        );
    }
    assert_eq!(
        server.store_len(),
        programs.len(),
        "warm replay must not grow the store"
    );
    server.shutdown();
    let _ = std::fs::remove_file(&store);
}

/// Garbage on the wire gets a typed refusal, and the connection after it
/// still serves real requests on a fresh client.
#[test]
fn bad_ir_is_refused_not_fatal() {
    let store = tmp_store("badir");
    let server = start_server(&store, false);
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    match client.compile("this is not IR", None, false) {
        Err(autophase_serve::client::ClientError::Server { kind, .. }) => {
            assert_eq!(kind, ErrKind::Parse);
        }
        other => panic!("expected a parse refusal, got {other:?}"),
    }
    // Same connection keeps working after a refusal.
    client.ping().expect("ping after refusal");
    server.shutdown();
    let _ = std::fs::remove_file(&store);
}

/// Chaos is a test-only verb: a server without `chaos: true` refuses it.
#[test]
fn chaos_requires_opt_in() {
    let store = tmp_store("nochaos");
    let server = start_server(&store, false);
    let mut client = Client::connect(server.addr()).expect("connect");
    match client.chaos(1) {
        Err(autophase_serve::client::ClientError::Server { kind, .. }) => {
            assert_eq!(kind, ErrKind::BadRequest);
        }
        other => panic!("expected refusal, got {other:?}"),
    }
    server.shutdown();
    let _ = std::fs::remove_file(&store);
}

/// A stored ordering that no longer replays cleanly (here: the daemon's
/// fuel budget shrank below what its passes need) must not be served with
/// IR that contradicts the stored numbers — the entry is retired and the
/// request recomputed.
#[test]
fn stale_store_entry_is_retired_not_served_inconsistently() {
    use autophase_passes::checked::FuelBudget;
    use autophase_serve::store::{BestEntry, BestStore};

    let store = tmp_store("stale");
    let ir = autophase_ir::printer::print_module(&autophase_benchmarks::kernels::gsm());
    let module = autophase_ir::parser::parse_module(&ir).unwrap();
    let fp = autophase_core::eval_cache::fingerprint_module(&module);
    // Plant an entry whose single pass cannot apply under a one-inst
    // fuel ceiling (gsm is far bigger than one instruction).
    let pass = (0..autophase_passes::registry::pass_count())
        .find(|&p| p != autophase_passes::registry::TERMINATE)
        .expect("registry has a real pass");
    {
        let mut s = BestStore::open(&store).unwrap();
        s.record(
            fp,
            BestEntry {
                cycles: 1,
                baseline_cycles: 2,
                seq: vec![pass as u16],
            },
        )
        .unwrap();
    }
    let cfg = ServerConfig {
        store_path: store.clone(),
        fuel: FuelBudget {
            max_insts: 1,
            max_fixpoint_iters: 1,
        },
        ..ServerConfig::default()
    };
    let server = Server::start(test_policy(), cfg).expect("server starts");
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Numbers-only requests serve the hit as-is: no IR, nothing to
    // contradict.
    let reply = client
        .compile(&ir, Some(60_000), false)
        .expect("numbers-only hit");
    assert_eq!(reply.source, Source::Store);
    assert_eq!(reply.cycles, 1);

    // Asking for IR forces the replay, which faults on fuel: the reply
    // must come from a recompute, never pair fresh IR with cycles=1.
    let reply = client.compile(&ir, Some(60_000), true).expect("recompute");
    assert_ne!(reply.source, Source::Store, "stale entry was served");
    let ir_back = reply.ir.expect("asked for IR");
    autophase_ir::parser::parse_module(&ir_back).expect("served IR parses");
    assert!(reply.cycles > 1, "cycles must be recomputed, not inherited");

    // The recompute re-populated the store with a replayable entry.
    let reply = client.compile(&ir, Some(60_000), true).expect("warm again");
    assert_eq!(reply.source, Source::Store, "recomputed entry not stored");
    assert!(reply.ir.is_some());
    server.shutdown();
    let _ = std::fs::remove_file(&store);
}

/// Connections beyond `max_conns` get a typed `overloaded` refusal, and
/// closing a connection frees its slot.
#[test]
fn connection_cap_refuses_with_overloaded() {
    let store = tmp_store("conncap");
    let cfg = ServerConfig {
        store_path: store.clone(),
        max_conns: 1,
        ..ServerConfig::default()
    };
    let server = Server::start(test_policy(), cfg).expect("server starts");
    let mut c1 = Client::connect(server.addr()).expect("connect");
    c1.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    c1.ping().expect("first connection serves");

    let mut c2 = Client::connect(server.addr()).expect("tcp connect still works");
    c2.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    match c2.ping() {
        Err(autophase_serve::client::ClientError::Server { kind, .. }) => {
            assert_eq!(kind, ErrKind::Overloaded);
        }
        other => panic!("expected overloaded refusal, got {other:?}"),
    }

    // Closing the first connection frees the slot (the handler notices
    // the hangup asynchronously, so poll briefly).
    drop(c1);
    drop(c2);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mut c3 = Client::connect(server.addr()).expect("connect");
        c3.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        if c3.ping().is_ok() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "connection slot never freed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    let _ = std::fs::remove_file(&store);
}

/// A deadline that has effectively already passed is answered with the
/// typed `deadline` refusal, not silence.
#[test]
fn expired_deadline_is_typed() {
    let store = tmp_store("deadline");
    let server = start_server(&store, false);
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let ir = autophase_ir::printer::print_module(&autophase_benchmarks::kernels::gsm());
    match client.compile(&ir, Some(0), false) {
        Err(autophase_serve::client::ClientError::Server { kind, .. }) => {
            assert_eq!(kind, ErrKind::Deadline);
        }
        // A zero-millisecond deadline can still be met if the whole
        // pipeline fits inside the clock granularity; a success is not
        // a failure of the deadline machinery.
        Ok(_) => {}
        Err(e) => panic!("unexpected transport error: {e}"),
    }
    server.shutdown();
    let _ = std::fs::remove_file(&store);
}
