//! Live-introspection smoke: a real daemon under mixed warm/cold/chaos
//! traffic, then everything the observability layer promises, checked
//! over the wire — `STATS` parses and its per-stage percentiles are
//! nonzero, the stage breakdown sums to end-to-end latency, `TRACE`
//! returns well-formed trace JSONL, and the chaos-injected fault left a
//! dump artifact naming the faulting stage.
//!
//! This is the test `make trace-smoke` runs. It is a single test
//! function on purpose: it owns the process's global telemetry registry
//! for its whole run, so no other test in this binary can pollute the
//! snapshot it asserts on.

use autophase_benchmarks::suite;
use autophase_nn::mlp::{Activation, Mlp};
use autophase_serve::client::Client;
use autophase_serve::engine::{serve_num_actions, serve_obs_dim};
use autophase_serve::server::{Server, ServerConfig};
use autophase_serve::Source;
use autophase_telemetry as telemetry;
use std::time::Duration;

#[test]
fn stats_traces_and_chaos_dump_on_a_live_daemon() {
    telemetry::reset();
    let tmp = std::env::temp_dir().join(format!("autophase_trace_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let store = tmp.join("store.log");
    let dumps = tmp.join("flight");

    let mut cfg = ServerConfig {
        store_path: store.clone(),
        chaos: true,
        ..ServerConfig::default()
    };
    cfg.flight.dump_dir = Some(dumps.clone());
    let policy = Mlp::new(
        &[serve_obs_dim(), 32, serve_num_actions()],
        Activation::Tanh,
        7,
    );
    let server = Server::start(policy, cfg).expect("server starts");
    let addr = server.addr();

    let programs: Vec<String> = suite()
        .into_iter()
        .map(|b| autophase_ir::printer::print_module(&b.module))
        .collect();

    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();

    // Cold: every program rides the full pipeline (parse → store miss →
    // baseline profile → rollout → profile → record).
    for ir in &programs {
        let reply = client.compile(ir, Some(120_000), false).expect("cold");
        assert_eq!(reply.source, Source::Policy);
    }
    // Warm: the same programs again, all store hits.
    for ir in &programs {
        let reply = client.compile(ir, Some(120_000), false).expect("warm");
        assert_eq!(reply.source, Source::Store);
    }
    // Chaos: inject policy faults, then send unseen programs — they
    // degrade to baseline and their traces must blame inference.
    client.chaos(1_000).expect("chaos accepted");
    let mut degraded = 0;
    for (i, ir) in programs.iter().enumerate() {
        let mut m = autophase_ir::parser::parse_module(ir).unwrap();
        m.name = format!("{}__tracechaos{i}", m.name);
        let renamed = autophase_ir::printer::print_module(&m);
        let reply = client
            .compile(&renamed, Some(120_000), false)
            .expect("chaos");
        if reply.source == Source::Baseline {
            degraded += 1;
        }
    }
    assert!(degraded > 0, "injected faults never reached a request");

    // STATS: parses, and the stage breakdown is real.
    let stats = client.stats().expect("stats");
    let total_reqs = 3 * programs.len() as u64;
    assert_eq!(stats.counter("serve.req", "recv"), total_reqs);
    let stages = stats.hist_family("serve.stage_ns");
    let total = stats
        .hist("serve.stage_ns", "total")
        .expect("total histogram");
    assert_eq!(total.count, total_reqs, "every request must be traced");
    let mut stage_sum = 0u64;
    for (label, h) in &stages {
        if label == "total" {
            continue;
        }
        assert!(h.count > 0, "stage {label} never recorded");
        assert!(
            h.p50 > 0 && h.p50 <= h.p95 && h.p95 <= h.p99,
            "stage {label} percentiles broken: p50={} p95={} p99={}",
            h.p50,
            h.p95,
            h.p99
        );
        stage_sum += h.sum;
    }
    for must in [
        "queue_wait",
        "parse",
        "store",
        "rollout",
        "profile",
        "reply_write",
    ] {
        assert!(
            stages.iter().any(|(l, _)| l == must),
            "stage {must} missing from {:?}",
            stages.iter().map(|(l, _)| l.clone()).collect::<Vec<_>>()
        );
    }
    // The stages tile each request's timeline, so per-stage sums must
    // reconstruct end-to-end latency. The acceptance bar is ±10%; the
    // construction makes it exact.
    let drift = (stage_sum as f64 - total.sum as f64).abs() / total.sum as f64;
    assert!(
        drift < 0.10,
        "stage sums ({stage_sum}) inconsistent with total ({}): {:.1}% off",
        total.sum,
        drift * 100.0
    );

    // TRACE: recent traces come back as parseable JSONL, newest first,
    // with outcomes and tiling stage segments.
    let body = client.traces(16).expect("traces");
    let lines: Vec<&str> = body.lines().collect();
    assert!(lines.len() >= 16, "expected 16 traces, got {}", lines.len());
    for line in &lines {
        assert!(line.starts_with("{\"type\":\"trace\""), "bad line: {line}");
        assert!(line.ends_with('}'), "truncated line: {line}");
        assert!(line.contains("\"outcome\":\""), "no outcome: {line}");
    }
    // The most recent traffic was chaos: at least one trace blames the
    // inference stage and still shows the baseline answer.
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"fault_stage\":\"inference\"")
                && l.contains("\"outcome\":\"ok:baseline\"")),
        "no chaos trace in:\n{body}"
    );

    // The chaos faults also tripped the flight recorder's fault trigger:
    // a JSONL dump artifact exists, names the faulting stage in its
    // header, and every line parses as one JSON object.
    let dump_files: Vec<_> = std::fs::read_dir(&dumps)
        .expect("dump dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    assert!(!dump_files.is_empty(), "chaos run left no dump artifact");
    let dump = std::fs::read_to_string(&dump_files[0]).unwrap();
    let mut dump_lines = dump.lines();
    let header = dump_lines.next().expect("dump header");
    assert!(header.contains("\"type\":\"flight_dump\""), "{header}");
    assert!(header.contains("\"fault_stage\":\"inference\""), "{header}");
    let rest: Vec<&str> = dump_lines.collect();
    assert!(!rest.is_empty(), "dump has no traces");
    for line in rest {
        assert!(
            line.starts_with("{\"type\":\"trace\"") && line.ends_with('}'),
            "unparseable dump line: {line}"
        );
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&tmp);
}
