//! Differential suite: the batched SIMD serving rollout versus a scalar
//! reference.
//!
//! The engine's `choose_sequence` changed in two ways at once — forwards
//! go through the batching queue into one SoA GEMM per batch
//! (`SoaMlp::forward_batch`), and features resync incrementally from
//! each apply's `ChangeSet` instead of re-extracting the module. The
//! reference below is the original formulation: direct `Mlp::forward`
//! per observation (the deliberately-scalar AoS kernel) and a full
//! feature extraction after every changing pass.
//!
//! Both paths must pick the **same pass at every step** on every corpus
//! program — greedy argmax over bit-identical logits (tolerance is
//! zero; see `crates/nn/src/simd.rs`) over identical observations. The
//! assertion is on the applied sequence *and* the final module text, so
//! a divergence anywhere in the 12-step episode fails loudly.

use autophase_core::env::FILTERED_PASSES;
use autophase_core::eval_cache::fingerprint_module;
use autophase_core::Quarantine;
use autophase_features::{extract, inst_count_filtered};
use autophase_ir::printer::print_module;
use autophase_ir::Module;
use autophase_nn::mlp::{Activation, Mlp};
use autophase_passes::checked::{apply_checked, FuelBudget};
use autophase_serve::engine::{
    serve_num_actions, serve_obs_dim, EngineConfig, InferenceEngine, SERVE_EPISODE_LEN,
};
use proptest::prelude::*;

fn test_policy(seed: u64) -> Mlp {
    Mlp::new(
        &[serve_obs_dim(), 24, serve_num_actions()],
        Activation::Tanh,
        seed,
    )
}

/// The pre-SIMD serving rollout, reproduced verbatim: full extraction
/// per changed module, one scalar forward per step, same quarantine
/// masking and transactional applies.
fn reference_rollout(
    policy: &Mlp,
    m: &mut Module,
    fp: u64,
    quarantine: &Quarantine,
    fuel: &FuelBudget,
) -> Vec<usize> {
    let mut histogram = vec![0.0f64; serve_num_actions()];
    let mut feats = inst_count_filtered(&extract(m));
    let mut applied = Vec::new();
    for _ in 0..SERVE_EPISODE_LEN {
        let mut obs = feats.clone();
        obs.extend_from_slice(&histogram);
        let logits = policy.forward(&obs);
        let mut best: Option<(usize, f64)> = None;
        for (a, &score) in logits.iter().enumerate() {
            if quarantine.is_quarantined(fp, FILTERED_PASSES[a]) {
                continue;
            }
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((a, score));
            }
        }
        let Some((action, _)) = best else { break };
        let pass = FILTERED_PASSES[action];
        match apply_checked(m, pass, fuel) {
            Ok(true) => {
                applied.push(pass);
                feats = inst_count_filtered(&extract(m));
            }
            Ok(false) => {}
            Err(_) => {
                quarantine.record_fault(fp, pass);
            }
        }
        histogram[action] += 1.0;
    }
    applied
}

/// Run both rollouts on a fresh copy of `program` and assert they chose
/// the same ordering and produced the same module.
fn assert_rollouts_agree(engine: &InferenceEngine, policy: &Mlp, program: &Module, label: &str) {
    let fuel = FuelBudget::default();
    let fp = fingerprint_module(program);

    let mut simd_m = program.clone();
    let simd_seq = engine
        .choose_sequence(&mut simd_m, fp, &Quarantine::default(), &fuel)
        .expect("no faults injected");

    let mut ref_m = program.clone();
    let ref_seq = reference_rollout(policy, &mut ref_m, fp, &Quarantine::default(), &fuel);

    assert_eq!(
        simd_seq, ref_seq,
        "{label}: batched rollout chose a different ordering"
    );
    assert_eq!(
        print_module(&simd_m),
        print_module(&ref_m),
        "{label}: same ordering, different module"
    );
}

#[test]
fn batched_rollout_matches_scalar_reference_on_curated_suite() {
    let policy = test_policy(11);
    let engine = InferenceEngine::start(policy.clone(), EngineConfig::default()).unwrap();
    for b in autophase_benchmarks::suite() {
        assert_rollouts_agree(&engine, &policy, &b.module, b.name);
    }
}

#[test]
fn batched_rollout_matches_scalar_reference_on_seeded_corpus() {
    use autophase_corpus::{build_corpus, CorpusConfig};
    let corpus = build_corpus(&CorpusConfig {
        target: 16,
        workers: 2,
        ..CorpusConfig::default()
    });
    // Two distinct policies: decisions must agree under any weights, not
    // just one lucky initialization.
    for policy_seed in [7u64, 40] {
        let policy = test_policy(policy_seed);
        let engine = InferenceEngine::start(policy.clone(), EngineConfig::default()).unwrap();
        for (i, p) in corpus.programs.iter().enumerate() {
            assert_rollouts_agree(
                &engine,
                &policy,
                &p.module,
                &format!("seed{policy_seed}/p{i}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Random policy weights over a fixed mini-corpus: greedy decisions
    /// stay identical scalar vs SIMD for arbitrary networks.
    #[test]
    fn prop_decisions_identical_for_random_policies(seed in 0u64..1_000_000) {
        let policy = test_policy(seed);
        let engine = InferenceEngine::start(policy.clone(), EngineConfig::default()).unwrap();
        for b in autophase_benchmarks::suite().into_iter().take(3) {
            assert_rollouts_agree(&engine, &policy, &b.module, b.name);
        }
    }
}
