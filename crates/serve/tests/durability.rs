//! Durability drills: the store's recovery matrix as a property, the
//! engine supervisor surviving injected whole-thread crashes on a live
//! daemon, and checkpoint armor keeping a daemon serving through a
//! corrupt policy file.
//!
//! The property test is the heart: for arbitrary insert histories (with
//! and without compaction) and a crash at *any byte offset* of the tail
//! log, reopening must succeed, serve every acknowledged record that
//! survived intact, and invent nothing. `make durability-smoke` runs
//! this file (plus the fault-injection suite and the kill -9 drill in
//! `durability_bench`).

use autophase_benchmarks::suite;
use autophase_nn::mlp::{Activation, Mlp};
use autophase_rl::checkpoint::{Algo, ArmoredLoad, PolicyCheckpoint};
use autophase_serve::client::Client;
use autophase_serve::engine::{quiet_crash_hook, serve_num_actions, serve_obs_dim};
use autophase_serve::protocol::Source;
use autophase_serve::server::{Server, ServerConfig};
use autophase_serve::store::{BestEntry, BestStore, CompactionPolicy};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const MAGIC_LEN: u64 = 8;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "autophase_durability_{}_{name}.log",
        std::process::id()
    ))
}

/// Remove a store's tail log and every snapshot sibling.
fn wipe(path: &Path) {
    for suffix in ["", ".snap", ".snap.tmp", ".snap.corrupt", ".tmp"] {
        let _ = std::fs::remove_file(PathBuf::from(format!("{}{suffix}", path.display())));
    }
}

fn entry(cycles: u64, seq_len: usize) -> BestEntry {
    BestEntry {
        cycles,
        baseline_cycles: cycles + 100,
        seq: (0..seq_len as u16).collect(),
    }
}

/// Insert histories: fingerprints collide on purpose (0..12) so the
/// strictly-better rule and dead-record accounting both get exercised.
fn ops() -> impl Strategy<Value = Vec<(u64, u64, usize)>> {
    proptest::collection::vec((0u64..12, 1u64..1_000, 0usize..8), 1..40)
}

proptest! {
    /// The recovery matrix: build a store from an arbitrary history,
    /// then for crash points across the tail (every record boundary,
    /// every boundary's neighborhood, mid-record cuts, and inside the
    /// header) reopen and check the index equals exactly the state at
    /// the last acknowledged record whose bytes survived the cut —
    /// nothing acknowledged-and-intact missing, nothing phantom.
    #[test]
    fn any_tail_crash_point_reopens_to_an_acknowledged_state(
        history in ops(),
        eager in any::<bool>(),
    ) {
        static CASE: AtomicU64 = AtomicU64::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let path = tmp(&format!("matrix_{case}"));
        let crash = tmp(&format!("matrix_crash_{case}"));
        wipe(&path);

        let policy = if eager {
            // Small thresholds so real histories compact mid-run.
            CompactionPolicy { min_tail_bytes: 256, tail_factor: 1.0, dead_ratio: 0.4 }
        } else {
            CompactionPolicy::never()
        };

        // `checkpoints[i] = (tail_len, index)`: the store's exact state
        // when the tail file was `tail_len` bytes long. Compaction
        // truncates the tail, so it resets the list — the snapshot now
        // carries everything, and `checkpoints[0]` is the state a crash
        // losing the whole tail (or tearing the header) recovers to.
        let mut index: HashMap<u64, BestEntry> = HashMap::new();
        let mut checkpoints: Vec<(u64, HashMap<u64, BestEntry>)> =
            vec![(MAGIC_LEN, HashMap::new())];
        {
            let mut s = BestStore::open_with(&path, policy).unwrap();
            for &(fp, cycles, seq_len) in &history {
                let e = entry(cycles, seq_len);
                if s.record(fp, e.clone()).unwrap() {
                    index.insert(fp, e);
                }
                let len = std::fs::metadata(&path).unwrap().len();
                let last = checkpoints.last().unwrap().0;
                if len < last {
                    checkpoints = vec![(len, index.clone())];
                } else if len > last {
                    checkpoints.push((len, index.clone()));
                }
            }
        }
        let final_len = std::fs::metadata(&path).unwrap().len();
        let snap = PathBuf::from(format!("{}.snap", path.display()));
        let crash_snap = PathBuf::from(format!("{}.snap", crash.display()));

        // Crash points: exact boundaries, one byte either side,
        // mid-record, and inside the 8-byte header.
        let mut cuts: Vec<u64> = vec![0, 1, MAGIC_LEN - 1];
        for w in checkpoints.windows(2) {
            let (a, b) = (w[0].0, w[1].0);
            cuts.extend([a, a + 1, (a + b) / 2, b - 1]);
        }
        cuts.extend([final_len.saturating_sub(1), final_len]);
        cuts.retain(|&c| c <= final_len);
        cuts.sort_unstable();
        cuts.dedup();

        for cut in cuts {
            wipe(&crash);
            let tail = std::fs::read(&path).unwrap();
            std::fs::write(&crash, &tail[..cut as usize]).unwrap();
            if snap.exists() {
                std::fs::copy(&snap, &crash_snap).unwrap();
            }

            let reopened = BestStore::open_with(&crash, policy).unwrap();
            let expected = &checkpoints
                .iter()
                .rev()
                .find(|(len, _)| *len <= cut)
                .unwrap_or(&checkpoints[0])
                .1;
            prop_assert_eq!(
                reopened.len(),
                expected.len(),
                "cut at {} of {}: wrong entry count",
                cut,
                final_len
            );
            for (fp, want) in expected {
                prop_assert_eq!(
                    reopened.lookup(*fp),
                    Some(want),
                    "cut at {}: fp {} lost or wrong",
                    cut,
                    fp
                );
            }
        }
        wipe(&crash);
        wipe(&path);
    }
}

fn test_policy() -> Mlp {
    Mlp::new(
        &[serve_obs_dim(), 32, serve_num_actions()],
        Activation::Tanh,
        7,
    )
}

/// An injected engine crash on a live daemon: the in-flight request
/// degrades to baseline (never hangs, never errors), the supervisor
/// respawns the engine, and the next cold request is policy-served
/// again — all over one TCP connection.
#[test]
fn engine_crash_degrades_then_respawns_on_a_live_daemon() {
    quiet_crash_hook();
    let store = tmp("crash_daemon");
    wipe(&store);
    let server = Server::start(
        test_policy(),
        ServerConfig {
            store_path: store.clone(),
            chaos: true,
            telemetry: false,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    let programs: Vec<String> = suite()
        .into_iter()
        .take(2)
        .map(|b| autophase_ir::printer::print_module(&b.module))
        .collect();
    assert!(programs.len() == 2, "need two distinct programs");

    let mut client = Client::connect(server.addr()).expect("connect");
    client.chaos_crash(1).expect("arm crash");

    // The crashed batch answers via the baseline rung.
    let r1 = client
        .compile(&programs[0], Some(60_000), false)
        .expect("request must survive the engine crash");
    assert_eq!(r1.source, Source::Baseline, "crashed batch degrades");

    // A different program (no store hit): the respawned engine serves it.
    let r2 = client
        .compile(&programs[1], Some(60_000), false)
        .expect("post-respawn compile");
    assert_eq!(r2.source, Source::Policy, "engine must respawn");

    server.shutdown();
    wipe(&store);
}

/// Checkpoint armor: flip a bit in every region of a saved checkpoint
/// (header, dims, weights, trailing bytes). No corruption may panic the
/// loader; whatever it detects quarantines the file. And a daemon
/// brought up without a usable policy keeps answering — baseline-only.
#[test]
fn corrupt_checkpoint_never_kills_serving() {
    let dir = std::env::temp_dir().join(format!("autophase_ckpt_armor_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let ckpt = PolicyCheckpoint {
        algo: Algo::Ppo,
        policy: test_policy(),
        value: Mlp::new(&[serve_obs_dim(), 16, 1], Activation::Tanh, 11),
    };
    let clean = dir.join("clean.ckpt");
    ckpt.save(&clean).unwrap();
    let bytes = std::fs::read(&clean).unwrap();

    // One flipped bit at ~64 spots spread across the file, plus the
    // first and last byte.
    let stride = (bytes.len() / 64).max(1);
    let mut offsets: Vec<usize> = (0..bytes.len()).step_by(stride).collect();
    offsets.push(bytes.len() - 1);
    for (i, off) in offsets.into_iter().enumerate() {
        let mut corrupt = bytes.clone();
        corrupt[off] ^= 1 << (i % 8);
        if corrupt == bytes {
            continue;
        }
        let victim = dir.join(format!("flip_{i}.ckpt"));
        std::fs::write(&victim, &corrupt).unwrap();
        match PolicyCheckpoint::load_armored(&victim) {
            // A flip the decoder can't distinguish from valid data (it
            // changed a weight bit pattern into another valid f64) loads
            // — that is a checksum-strength question, not an armor one.
            ArmoredLoad::Loaded(_) => {}
            ArmoredLoad::Quarantined { moved_to, .. } => {
                assert!(!victim.exists(), "corrupt file must be moved aside");
                let q = moved_to.expect("quarantine rename succeeds in tmp");
                assert!(q.exists(), "quarantined copy must exist");
            }
            ArmoredLoad::Unreadable(e) => {
                panic!("flip {i} at {off}: file exists, must not be Unreadable: {e}")
            }
        }
    }

    // The armor's endgame: serving survives with no policy at all.
    let store = tmp("armor_daemon");
    wipe(&store);
    let server = Server::start_baseline_only(ServerConfig {
        store_path: store.clone(),
        telemetry: false,
        ..ServerConfig::default()
    })
    .expect("baseline-only daemon starts");
    assert!(server.is_baseline_only());

    let ir = autophase_ir::printer::print_module(&suite()[0].module);
    let mut client = Client::connect(server.addr()).expect("connect");
    let r = client
        .compile(&ir, Some(60_000), false)
        .expect("baseline-only daemon must answer");
    assert_eq!(r.source, Source::Baseline);
    // Second sight: the store rung still works without a policy.
    let r2 = client.compile(&ir, Some(60_000), false).expect("warm");
    assert_eq!(r2.source, Source::Store);

    server.shutdown();
    wipe(&store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The client retry loop against a real daemon: a request that first
/// lands `overloaded` (zero workers' worth of queue is impossible, so
/// emulate with deadline 0 → `deadline` refusal) carries a `retry_ms`
/// hint, and `RetryingClient` eventually reports the typed refusal
/// rather than hanging or panicking.
#[test]
fn retrying_client_honors_hints_against_a_live_daemon() {
    let store = tmp("retry_daemon");
    wipe(&store);
    let server = Server::start(
        test_policy(),
        ServerConfig {
            store_path: store.clone(),
            retry_hint_ms: 5,
            telemetry: false,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    let ir = autophase_ir::printer::print_module(&suite()[0].module);
    let mut rc = autophase_serve::client::RetryingClient::with(
        server.addr().to_string(),
        autophase_serve::client::ClientConfig::default(),
        autophase_serve::client::RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            ..autophase_serve::client::RetryPolicy::default()
        },
    );

    // Deadline 0 refuses every attempt: the retrier must exhaust its
    // attempts and surface the typed refusal with the server's hint.
    match rc.compile(&ir, Some(0), false) {
        Err(autophase_serve::client::ClientError::Server { kind, retry_ms, .. }) => {
            assert_eq!(kind, autophase_serve::protocol::ErrKind::Deadline);
            assert_eq!(retry_ms, Some(5), "refusal must carry the hint");
        }
        other => panic!("expected a deadline refusal, got {other:?}"),
    }

    // And a feasible request goes through the same retrying client.
    let ok = rc.compile(&ir, Some(60_000), false).expect("compile");
    assert!(ok.baseline_cycles > 0);

    server.shutdown();
    wipe(&store);
}
