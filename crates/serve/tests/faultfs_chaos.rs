//! Disk-fault chaos: drive the serve store (and a live daemon) through
//! the injectable fault layer in `autophase_telemetry::faultfs`.
//!
//! Only built with `--features fault-injection` (`make durability-smoke`
//! runs it). Every test arms a process-global fault plan, so they all
//! serialize on `inject::test_guard()` and disarm before exiting.
#![cfg(feature = "fault-injection")]

use autophase_benchmarks::suite;
use autophase_nn::mlp::{Activation, Mlp};
use autophase_serve::client::Client;
use autophase_serve::engine::{serve_num_actions, serve_obs_dim};
use autophase_serve::protocol::Source;
use autophase_serve::server::{Server, ServerConfig};
use autophase_serve::store::{BestEntry, BestStore, CompactionPolicy};
use autophase_telemetry::faultfs::inject::{
    clear_plan, install_plan, test_guard, DiskFaultPlan, DiskFaultSpec,
};
use autophase_telemetry::faultfs::{DiskFaultKind, DiskOp};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "autophase_faultchaos_{}_{name}.log",
        std::process::id()
    ))
}

fn wipe(path: &Path) {
    for suffix in ["", ".snap", ".snap.tmp", ".snap.corrupt", ".tmp"] {
        let _ = std::fs::remove_file(PathBuf::from(format!("{}{suffix}", path.display())));
    }
}

fn entry(cycles: u64, seq_len: usize) -> BestEntry {
    BestEntry {
        cycles,
        baseline_cycles: cycles + 500,
        seq: (0..seq_len as u16).collect(),
    }
}

/// Every append fails with `ENOSPC`: the daemon must keep compiling
/// (serving without recording), skip the store while the disk is full,
/// and pick recording back up once space returns and the retry window
/// elapses — the full degrade/recover loop from the durability model.
#[test]
fn enospc_degrades_to_serving_without_recording_then_recovers() {
    let _guard = test_guard();
    clear_plan();
    let store = tmp("enospc_daemon");
    wipe(&store);
    let server = Server::start(
        Mlp::new(
            &[serve_obs_dim(), 32, serve_num_actions()],
            Activation::Tanh,
            7,
        ),
        ServerConfig {
            store_path: store.clone(),
            store_retry: Duration::from_millis(400),
            telemetry: false,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let ir = autophase_ir::printer::print_module(&suite()[0].module);
    let mut client = Client::connect(server.addr()).expect("connect");

    // Disk full: every tail append reports ENOSPC.
    let plan = install_plan(DiskFaultPlan::new(vec![DiskFaultSpec {
        op: DiskOp::Write,
        tag: Some("store.append".to_string()),
        nth: 0,
        kind: DiskFaultKind::Enospc,
        salt: 0,
    }]));

    // Cold compile still succeeds — the answer is served, the record
    // silently fails and opens the degrade window.
    let r1 = client.compile(&ir, Some(60_000), false).expect("cold");
    assert_eq!(
        r1.source,
        Source::Policy,
        "full disk must not break serving"
    );
    assert!(plan.fired() >= 1, "the append fault must actually fire");

    // Inside the window the store is skipped outright: same program,
    // still no store hit, and no further append attempts burn on ENOSPC.
    let fired_before = plan.fired();
    let r2 = client.compile(&ir, Some(60_000), false).expect("degraded");
    assert_eq!(r2.source, Source::Policy, "nothing was recorded");
    assert_eq!(
        plan.fired(),
        fired_before,
        "degraded mode must not retry before the window elapses"
    );

    // Space comes back; after the retry window recording resumes.
    clear_plan();
    std::thread::sleep(Duration::from_millis(500));
    let r3 = client.compile(&ir, Some(60_000), false).expect("recovered");
    assert_eq!(r3.source, Source::Policy, "store is still empty on arrival");
    let r4 = client.compile(&ir, Some(60_000), false).expect("warm");
    assert_eq!(r4.source, Source::Store, "recording must have recovered");

    server.shutdown();
    wipe(&store);
}

/// A torn append (crash mid-write) errors the offending `record()` call
/// only: previously acknowledged records survive reopen, later appends
/// overwrite the torn bytes, and the torn record never becomes visible.
#[test]
fn torn_append_loses_only_the_unacknowledged_record() {
    let _guard = test_guard();
    clear_plan();
    let path = tmp("torn");
    wipe(&path);

    let mut s = BestStore::open_with(&path, CompactionPolicy::never()).unwrap();
    for fp in 0..3u64 {
        assert!(s.record(fp, entry(1_000 + fp, 4)).unwrap());
    }

    install_plan(DiskFaultPlan::new(vec![DiskFaultSpec {
        op: DiskOp::Write,
        tag: Some("store.append".to_string()),
        nth: 1,
        kind: DiskFaultKind::TornWrite,
        salt: 0xDEAD,
    }]));
    s.record(99, entry(50, 6))
        .expect_err("torn write must surface as an error");
    clear_plan();

    // The next append goes to the same offset, burying the torn bytes.
    assert!(s.record(4, entry(2_000, 2)).unwrap());
    drop(s);

    let s = BestStore::open_with(&path, CompactionPolicy::never()).unwrap();
    assert_eq!(s.len(), 4, "three seeds + the post-tear append");
    for fp in 0..3u64 {
        assert_eq!(s.lookup(fp), Some(&entry(1_000 + fp, 4)));
    }
    assert_eq!(s.lookup(4), Some(&entry(2_000, 2)));
    assert_eq!(s.lookup(99), None, "the torn record must not be a phantom");
    wipe(&path);
}

/// Snapshot writes failing their sync never fail the triggering append:
/// compaction errors are deferred, the tail keeps everything, and once
/// the fault clears the next compaction folds the history as usual.
#[test]
fn snapshot_sync_failure_never_fails_an_acknowledged_append() {
    let _guard = test_guard();
    clear_plan();
    let path = tmp("snapfail");
    wipe(&path);
    let eager = CompactionPolicy {
        min_tail_bytes: 128,
        tail_factor: 1.0,
        dead_ratio: 0.3,
    };

    install_plan(DiskFaultPlan::new(vec![DiskFaultSpec {
        op: DiskOp::Sync,
        tag: Some("store.snapshot".to_string()),
        nth: 0,
        kind: DiskFaultKind::SyncFail,
        salt: 0,
    }]));
    let mut s = BestStore::open_with(&path, eager).unwrap();
    // Churn far past the thresholds: every record() that trips a
    // compaction must still acknowledge its append.
    for round in 0..6u64 {
        for fp in 0..8u64 {
            assert!(
                s.record(fp, entry(1_000 - round, 4)).unwrap(),
                "append must succeed even when its compaction cannot"
            );
        }
    }
    assert_eq!(s.stats().compactions, 0, "no compaction can finish");
    clear_plan();

    // Fault gone: the next winning append retries compaction inline.
    assert!(s.record(0, entry(1, 4)).unwrap());
    assert!(
        s.stats().compactions > 0,
        "deferred compaction must catch up"
    );
    drop(s);

    let s = BestStore::open_with(&path, eager).unwrap();
    assert_eq!(s.len(), 8);
    assert_eq!(s.lookup(0), Some(&entry(1, 4)));
    for fp in 1..8u64 {
        assert_eq!(s.lookup(fp), Some(&entry(995, 4)), "churn winner survives");
    }
    wipe(&path);
}

/// Seeded fault storms across every store call site: whatever mix of
/// torn writes, ENOSPC, sync failures, and short reads a seed deals,
/// the store never panics and a post-storm reopen serves exactly the
/// acknowledged set — nothing lost, nothing phantom.
#[test]
fn seeded_fault_storms_never_corrupt_acknowledged_state() {
    let _guard = test_guard();
    clear_plan();
    let targets: &[(DiskOp, &str)] = &[
        (DiskOp::Write, "store.append"),
        (DiskOp::Write, "store.snapshot"),
        (DiskOp::Sync, "store.append"),
        (DiskOp::Sync, "store.snapshot"),
        (DiskOp::Sync, "store.log"),
        (DiskOp::Rename, "store.snapshot"),
    ];
    let eager = CompactionPolicy {
        min_tail_bytes: 96,
        tail_factor: 1.0,
        dead_ratio: 0.3,
    };

    for seed in 0..24u64 {
        let path = tmp(&format!("storm_{seed}"));
        wipe(&path);

        let mut acked: HashMap<u64, BestEntry> = HashMap::new();
        {
            // Open clean, then let the storm hit a running store — the
            // bootstrap write of a brand-new log is not the scenario.
            let mut s = BestStore::open_with(&path, eager).unwrap();
            install_plan(DiskFaultPlan::seeded(seed, targets));
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for _ in 0..40 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let fp = x % 6;
                let e = entry(1 + x % 1_500, (x % 8) as usize);
                // Errors are the point; only an Ok(true) is an ack.
                if let Ok(true) = s.record(fp, e.clone()) {
                    acked.insert(fp, e);
                }
            }
        }
        clear_plan();

        let s = BestStore::open_with(&path, eager)
            .unwrap_or_else(|e| panic!("seed {seed}: post-storm reopen failed: {e}"));
        assert_eq!(s.len(), acked.len(), "seed {seed}: wrong entry count");
        for (fp, want) in &acked {
            assert_eq!(
                s.lookup(*fp),
                Some(want),
                "seed {seed}: fp {fp} lost or rewritten"
            );
        }
        wipe(&path);
    }
}
