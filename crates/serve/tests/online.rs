//! End-to-end drills of the online-learning subsystem on a live daemon:
//! the background learner publishing and auto-promoting versions, the
//! admin-gated `PROMOTE`/`MODEL` verbs with A/B serving, and — the
//! chaos leg — corrupt and NaN candidates being quarantined while the
//! old policy keeps answering every request.
//!
//! This is the test `make online-smoke` runs.

use autophase_benchmarks::suite;
use autophase_nn::mlp::{Activation, Mlp};
use autophase_rl::checkpoint::{Algo, PolicyCheckpoint};
use autophase_rl::registry::ModelRegistry;
use autophase_serve::client::{Client, ClientError};
use autophase_serve::engine::{serve_num_actions, serve_obs_dim};
use autophase_serve::learner::LearnerConfig;
use autophase_serve::protocol::{ErrKind, Source};
use autophase_serve::server::{Server, ServerConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("autophase_online_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    let _ = std::fs::remove_file(&path);
    path
}

fn test_policy(seed: u64) -> Mlp {
    Mlp::new(
        &[serve_obs_dim(), 32, serve_num_actions()],
        Activation::Tanh,
        seed,
    )
}

fn test_ckpt(seed: u64) -> PolicyCheckpoint {
    PolicyCheckpoint {
        algo: Algo::Ppo,
        policy: test_policy(seed),
        value: Mlp::new(&[serve_obs_dim(), 8, 1], Activation::Tanh, seed ^ 0xF00),
    }
}

fn programs() -> Vec<String> {
    suite()
        .into_iter()
        .map(|b| autophase_ir::printer::print_module(&b.module))
        .collect()
}

/// Reprint `ir` under a new module name, so its fingerprint is fresh to
/// the store and the compile goes down the cold (policy) path.
fn renamed(ir: &str, tag: &str) -> String {
    let mut m = autophase_ir::parser::parse_module(ir).unwrap();
    m.name = format!("{}__{tag}", m.name);
    autophase_ir::printer::print_module(&m)
}

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client
}

/// The tentpole loop closed end-to-end: cold compiles stream experience
/// to the in-daemon learner, which trains, publishes versions into the
/// registry, and auto-promotes them into the live engine — all while
/// the request path keeps answering.
#[test]
fn learner_trains_publishes_and_auto_promotes() {
    let store = tmp("learn.log");
    let registry_dir = tmp("learn_registry");
    let cfg = ServerConfig {
        store_path: store.clone(),
        registry_dir: Some(registry_dir.clone()),
        learner: Some(LearnerConfig {
            // One episode (SERVE_EPISODE_LEN transitions) per update,
            // publish every update: versions appear immediately.
            min_batch: autophase_serve::SERVE_EPISODE_LEN,
            publish_every: 1,
            auto_promote: true,
            ..LearnerConfig::default()
        }),
        ..ServerConfig::default()
    };
    let server = Server::start(test_policy(7), cfg).expect("server starts");
    let addr = server.addr();
    let mut client = connect(addr);

    let progs = programs();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut round = 0u32;
    let promoted = loop {
        assert!(
            Instant::now() < deadline,
            "no auto-promotion after {round} rounds"
        );
        for (i, ir) in progs.iter().enumerate() {
            let fresh = renamed(ir, &format!("r{round}p{i}"));
            let reply = client
                .compile(&fresh, Some(60_000), false)
                .expect("cold compile during online learning");
            assert_eq!(reply.source, Source::Policy);
        }
        round += 1;
        let snap = client.models().expect("MODEL answers");
        assert!(snap.registry, "registry must be on");
        if let Some(v) = snap.serving.filter(|&v| v > 0) {
            break snap.version(v).copied().expect("serving version listed");
        }
    };
    assert!(promoted.serving, "serving flag set on the promoted line");
    assert!(
        promoted.samples >= autophase_serve::SERVE_EPISODE_LEN as u64,
        "published version carries its sample count"
    );

    // The promoted version now answers requests and its per-version
    // counters move.
    for (i, ir) in progs.iter().enumerate() {
        let fresh = renamed(ir, &format!("post{i}"));
        client
            .compile(&fresh, Some(60_000), false)
            .expect("post-promotion compile");
    }
    let snap = client.models().expect("MODEL answers");
    let serving = snap.serving.expect("still serving a policy");
    assert!(serving > 0);
    let line = snap.version(serving).expect("serving line present");
    assert!(
        line.requests > 0,
        "promoted version must be attributed requests"
    );
    assert!(snap.swaps >= 1, "engine counted the hot-swap");

    // The registry survives the daemon: reopen it directly.
    server.shutdown();
    let reg = ModelRegistry::open(&registry_dir).expect("registry reopens");
    assert!(!reg.versions().is_empty(), "published versions persisted");
    assert!(reg.active().is_some(), "active pointer persisted");
    let _ = std::fs::remove_dir_all(&registry_dir);
    let _ = std::fs::remove_file(&store);
}

/// `PROMOTE` + A/B: an admin daemon serves version 1, installs version
/// 2 as the B-side challenger, and `MODEL` reports both roles while
/// compiles keep answering.
#[test]
fn promote_and_ab_split_report_roles() {
    let registry_dir = tmp("ab_registry");
    {
        let mut reg = ModelRegistry::open(&registry_dir).unwrap();
        reg.publish(&test_ckpt(11), 100, 1).unwrap();
        reg.publish(&test_ckpt(22), 200, 2).unwrap();
    }
    let store = tmp("ab.log");
    let cfg = ServerConfig {
        store_path: store.clone(),
        registry_dir: Some(registry_dir.clone()),
        admin: true,
        ..ServerConfig::default()
    };
    let server = Server::start(test_policy(7), cfg).expect("server starts");
    let mut client = connect(server.addr());

    client.promote(1).expect("PROMOTE v=1");
    client.promote_ab(2).expect("PROMOTE v=2 ab=1");
    let snap = client.models().expect("MODEL answers");
    assert_eq!(snap.serving, Some(1));
    assert_eq!(snap.challenger, Some(2));
    assert!(snap.version(1).unwrap().serving);
    assert!(snap.version(2).unwrap().challenger);
    assert_eq!(snap.swaps, 2);

    // Compiles under the A/B split: every request answers, and the
    // attributed versions are exactly the two live ones.
    for (i, ir) in programs().iter().enumerate() {
        let fresh = renamed(ir, &format!("ab{i}"));
        let reply = client
            .compile(&fresh, Some(60_000), false)
            .expect("A/B compile");
        assert_eq!(reply.source, Source::Policy);
    }
    let snap = client.models().expect("MODEL answers");
    let attributed: u64 = snap.versions.iter().map(|v| v.requests).sum();
    assert!(attributed > 0, "requests attributed under A/B");
    for v in &snap.versions {
        assert!(
            v.requests == 0 || v.version == 1 || v.version == 2,
            "v{} got requests while not serving",
            v.version
        );
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&registry_dir);
    let _ = std::fs::remove_file(&store);
}

/// Admin gating: a daemon without `admin` refuses `PROMOTE` with a
/// typed `bad_request`, and `MODEL` still answers (introspection is
/// never admin-gated).
#[test]
fn promote_is_admin_gated() {
    let registry_dir = tmp("gated_registry");
    {
        let mut reg = ModelRegistry::open(&registry_dir).unwrap();
        reg.publish(&test_ckpt(5), 10, 1).unwrap();
    }
    let store = tmp("gated.log");
    let cfg = ServerConfig {
        store_path: store.clone(),
        registry_dir: Some(registry_dir.clone()),
        admin: false,
        ..ServerConfig::default()
    };
    let server = Server::start(test_policy(7), cfg).expect("server starts");
    let mut client = connect(server.addr());

    match client.promote(1) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrKind::BadRequest),
        other => panic!("expected bad_request, got {other:?}"),
    }
    let snap = client.models().expect("MODEL answers without admin");
    assert_eq!(snap.serving, Some(0), "boot policy untouched");
    assert_eq!(snap.swaps, 0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&registry_dir);
    let _ = std::fs::remove_file(&store);
}

/// The chaos leg of the acceptance criteria: a candidate corrupted on
/// disk mid-promotion (real bytes destroyed via `CHAOS swap=1`) is
/// quarantined and refused; a NaN-poisoned candidate is caught by
/// validation and quarantined too. Through both, the old policy keeps
/// serving every request — corruption never reaches the engine.
#[test]
fn corrupt_and_nan_candidates_never_degrade_serving() {
    let registry_dir = tmp("chaos_registry");
    {
        let mut reg = ModelRegistry::open(&registry_dir).unwrap();
        // v1: chaos victim.
        reg.publish(&test_ckpt(31), 10, 1).unwrap();
        // v2: decodes fine but is NaN-poisoned — must fail validation.
        let mut poisoned = test_ckpt(32);
        let mut params = poisoned.policy.parameters();
        params[0] = f64::NAN;
        poisoned.policy.set_parameters(&params);
        reg.publish(&poisoned, 20, 2).unwrap();
        reg.publish(&test_ckpt(33), 30, 3).unwrap(); // v3: healthy
    }
    let store = tmp("chaos.log");
    let cfg = ServerConfig {
        store_path: store.clone(),
        registry_dir: Some(registry_dir.clone()),
        admin: true,
        chaos: true,
        ..ServerConfig::default()
    };
    let server = Server::start(test_policy(7), cfg).expect("server starts");
    let mut client = connect(server.addr());
    let progs = programs();

    let assert_serving = |client: &mut Client, tag: &str| {
        for (i, ir) in progs.iter().enumerate() {
            let fresh = renamed(ir, &format!("{tag}{i}"));
            let reply = client
                .compile(&fresh, Some(60_000), false)
                .unwrap_or_else(|e| panic!("{tag} p{i}: serving degraded: {e}"));
            assert_eq!(reply.source, Source::Policy, "{tag} p{i} fell off policy");
        }
    };

    // Leg 1: real on-disk corruption injected mid-promotion.
    client.chaos_swap(1).expect("arm swap corruption");
    match client.promote(1) {
        Err(ClientError::Server { kind, msg, .. }) => {
            assert_eq!(kind, ErrKind::Internal, "corrupt candidate: {msg}");
        }
        other => panic!("corrupt candidate must refuse, got {other:?}"),
    }
    assert!(
        registry_dir.join("v1.ckpt.quarantined").exists(),
        "corrupt candidate quarantined for forensics"
    );
    assert_serving(&mut client, "after_corrupt");

    // The quarantined version is gone from the history: promoting it
    // again is a bad request, not another quarantine.
    match client.promote(1) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrKind::BadRequest),
        other => panic!("dropped version must refuse, got {other:?}"),
    }

    // Leg 2: the NaN candidate decodes but fails validation.
    match client.promote(2) {
        Err(ClientError::Server { kind, msg, .. }) => {
            assert_eq!(kind, ErrKind::Internal, "NaN candidate: {msg}");
        }
        other => panic!("NaN candidate must refuse, got {other:?}"),
    }
    assert_serving(&mut client, "after_nan");

    // The engine never swapped: still the boot policy.
    let snap = client.models().expect("MODEL answers");
    assert_eq!(snap.serving, Some(0), "bad candidates must not swap");
    assert_eq!(snap.swaps, 0);

    // Leg 3: the healthy candidate promotes cleanly after both failures.
    client.promote(3).expect("healthy candidate promotes");
    let snap = client.models().expect("MODEL answers");
    assert_eq!(snap.serving, Some(3));
    assert_eq!(snap.swaps, 1);
    assert_serving(&mut client, "after_promote");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&registry_dir);
    let _ = std::fs::remove_file(&store);
}
