//! APSTORE2 at corpus scale: 10k distinct fingerprints.
//!
//! The serve store was built against a 9-program benchmark suite; the
//! corpus harness points ~10k distinct programs at it. These tests pin
//! the properties that matter at that size:
//!
//! * a 10k-entry store reopens complete and intact (nothing dropped, no
//!   torn-tail false positives, every entry retrievable);
//! * with compaction disabled, the tail log is exactly as large as its
//!   appended records — the byte count is pinned by formula, so any
//!   change to the record framing must update this test consciously;
//! * insert-if-strictly-better churn appends **only** winning records:
//!   rejected (equal-or-worse) inserts leave the file byte-identical;
//! * with the default compaction policy, the same 10k-insert run folds
//!   into a snapshot + short tail whose *live* size is pinned by
//!   formula — dead history does not accumulate on disk.

use autophase_serve::store::{BestEntry, BestStore, CompactionPolicy};
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "autophase_store_scale_{}_{name}.log",
        std::process::id()
    ))
}

/// Remove the tail log and every snapshot-generation sibling.
fn wipe(path: &Path) {
    for suffix in ["", ".snap", ".snap.tmp", ".snap.corrupt", ".tmp"] {
        let _ = std::fs::remove_file(PathBuf::from(format!("{}{suffix}", path.display())));
    }
}

/// On-disk size of one framed record (identical in the tail log and in
/// snapshots): len u32 + payload (26 + 2n) + checksum u64.
fn record_size(seq_len: usize) -> u64 {
    (4 + 26 + 2 * seq_len + 8) as u64
}

/// Tail log header: the 8-byte `APSTORE2` magic.
const MAGIC_LEN: u64 = 8;

/// Snapshot framing around the records: `APSNAPS2` magic (8) +
/// generation (8) + end sentinel (4) + record count (8) + whole-file
/// checksum (8).
const SNAP_OVERHEAD: u64 = 8 + 8 + 4 + 8 + 8;

fn entry_for(fp: u64) -> BestEntry {
    BestEntry {
        cycles: 1_000 + (fp % 977),
        baseline_cycles: 5_000 + (fp % 977),
        // Sequence length varies 0..=11 so the size formula is exercised
        // across lengths, not just one record shape.
        seq: (0..(fp % 12) as u16).map(|i| i * 3 % 46).collect(),
    }
}

#[test]
fn ten_thousand_fingerprints_reopen_complete() {
    const N: u64 = 10_000;
    let path = tmp("10k");
    wipe(&path);

    let mut expected_bytes = MAGIC_LEN;
    {
        let mut s = BestStore::open_with(&path, CompactionPolicy::never()).unwrap();
        for fp in 0..N {
            let e = entry_for(fp);
            expected_bytes += record_size(e.seq.len());
            assert!(s.record(fp, e).unwrap(), "fp {fp} is fresh, must store");
        }
        assert_eq!(s.len(), N as usize);
    }
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        expected_bytes,
        "tail log holds exactly the appended records — nothing more"
    );

    let reopened = BestStore::open_with(&path, CompactionPolicy::never()).unwrap();
    assert!(!reopened.dropped_on_open(), "clean log, nothing dropped");
    assert_eq!(reopened.len(), N as usize, "every fingerprint survives");
    for fp in [0, 1, N / 2, N - 2, N - 1] {
        assert_eq!(
            reopened.lookup(fp),
            Some(&entry_for(fp)),
            "entry {fp} intact after reopen"
        );
    }
    // Reopen must not grow, shrink, or rewrite the file.
    assert_eq!(std::fs::metadata(&path).unwrap().len(), expected_bytes);
    wipe(&path);
}

#[test]
fn churn_appends_only_strictly_better_records() {
    let path = tmp("churn");
    wipe(&path);
    const FPS: u64 = 200;

    let mut s = BestStore::open_with(&path, CompactionPolicy::never()).unwrap();
    let mut expected_bytes = MAGIC_LEN;
    // Seed every fingerprint at 1000 cycles with a 4-pass sequence.
    for fp in 0..FPS {
        let e = BestEntry {
            cycles: 1_000,
            baseline_cycles: 4_000,
            seq: vec![1, 2, 3, 4],
        };
        expected_bytes += record_size(4);
        assert!(s.record(fp, e).unwrap());
    }

    // Churn: per fingerprint, one worse, one equal, one better insert.
    // Exactly the better one may append.
    for fp in 0..FPS {
        let worse = BestEntry {
            cycles: 2_000,
            baseline_cycles: 4_000,
            seq: vec![9; 8],
        };
        let equal = BestEntry {
            cycles: 1_000,
            baseline_cycles: 4_000,
            seq: vec![8; 2],
        };
        let better = BestEntry {
            cycles: 900,
            baseline_cycles: 4_000,
            seq: vec![5, 6],
        };
        assert!(!s.record(fp, worse).unwrap(), "worse must be rejected");
        assert!(!s.record(fp, equal).unwrap(), "equal must be rejected");
        assert!(s.record(fp, better).unwrap(), "better must land");
        expected_bytes += record_size(2);
    }

    // The size regression pin: rejected inserts contributed zero bytes.
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        expected_bytes,
        "log grew beyond its strictly-better appends"
    );

    // Replay rebuilds the post-churn index: the 900-cycle records win.
    drop(s);
    let s = BestStore::open_with(&path, CompactionPolicy::never()).unwrap();
    assert_eq!(s.len(), FPS as usize);
    for fp in 0..FPS {
        let e = s.lookup(fp).unwrap();
        assert_eq!(e.cycles, 900, "fp {fp} must serve the churn winner");
        assert_eq!(e.seq, vec![5, 6]);
    }
    wipe(&path);
}

#[test]
fn compaction_bounds_disk_to_live_entries_at_scale() {
    const N: u64 = 10_000;
    let path = tmp("compact10k");
    wipe(&path);

    {
        let mut s = BestStore::open(&path).unwrap(); // default policy
        for fp in 0..N {
            assert!(s.record(fp, entry_for(fp)).unwrap());
        }
        // Overwrite every entry with a strictly better ordering — the
        // history is now ≥50% dead, which the default dead-ratio
        // trigger folds away.
        for fp in 0..N {
            let mut e = entry_for(fp);
            e.cycles -= 1;
            assert!(s.record(fp, e).unwrap());
        }
        assert!(s.stats().compactions > 0, "10k churn must compact");
        s.compact_if_dirty().unwrap();
    }

    // After a final compaction the on-disk live bytes are exactly one
    // snapshot of the N winners plus an empty tail.
    let live_records: u64 = (0..N).map(|fp| record_size(entry_for(fp).seq.len())).sum();
    let snap = PathBuf::from(format!("{}.snap", path.display()));
    assert_eq!(
        std::fs::metadata(&snap).unwrap().len(),
        SNAP_OVERHEAD + live_records,
        "snapshot holds exactly the live winners"
    );
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        MAGIC_LEN,
        "tail is empty after compaction"
    );

    let reopened = BestStore::open(&path).unwrap();
    assert_eq!(reopened.len(), N as usize);
    for fp in [0, 1, N / 2, N - 1] {
        let mut want = entry_for(fp);
        want.cycles -= 1;
        assert_eq!(reopened.lookup(fp), Some(&want), "winner {fp} survives");
    }
    wipe(&path);
}

#[test]
fn reopen_scales_with_log_bytes_not_rescans() {
    // A coarse wall-clock sanity check that reopen is a single linear
    // replay: opening a 10k-record store must land well under a second
    // even in debug builds (a quadratic scan would blow past this by
    // orders of magnitude). Generous bound to stay robust on slow CI.
    let path = tmp("linear");
    wipe(&path);
    {
        let mut s = BestStore::open(&path).unwrap();
        for fp in 0..10_000u64 {
            s.record(fp, entry_for(fp)).unwrap();
        }
    }
    let t = std::time::Instant::now();
    let s = BestStore::open(&path).unwrap();
    let elapsed = t.elapsed();
    assert_eq!(s.len(), 10_000);
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "reopen of 10k records took {elapsed:?} — replay is no longer linear"
    );
    wipe(&path);
}
