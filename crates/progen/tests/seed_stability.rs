//! Seed stability: the corpus manifest's load-bearing property.
//!
//! A `CORPUS1` manifest stores only `(generator params, seed)` per
//! program — regeneration is sound iff `generate` is a pure function of
//! those inputs. These tests pin that: same seed + params ⇒ bit-identical
//! program (printed text), fingerprint, and validity-filter outcome,
//! across repeated calls, across threads, and regardless of how many
//! workers generate concurrently. The generator holds no hash-ordered
//! state (all draws come from one seeded `StdRng`), so any future change
//! that introduces HashMap-iteration nondeterminism fails here first.

use autophase_ir::fingerprint::fingerprint_module;
use autophase_ir::printer::print_module;
use autophase_progen::{generate, generate_valid, program_batch, GenConfig};

#[test]
fn same_seed_same_program_across_repeated_calls() {
    for cfg in [GenConfig::default(), GenConfig::large()] {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let a = generate(&cfg, seed);
            let b = generate(&cfg, seed);
            assert_eq!(
                print_module(&a),
                print_module(&b),
                "seed {seed}: bit-identical text"
            );
            assert_eq!(
                fingerprint_module(&a),
                fingerprint_module(&b),
                "seed {seed}: identical fingerprint"
            );
        }
    }
}

#[test]
fn generate_valid_is_deterministic_including_retry_path() {
    // generate_valid may walk several candidate seeds before one passes
    // the filters; the walk itself must be deterministic.
    let cfg = GenConfig::default();
    for seed in [7u64, 1234, 0xC0_2B05] {
        let a = generate_valid(&cfg, seed);
        let b = generate_valid(&cfg, seed);
        assert_eq!(print_module(&a), print_module(&b));
    }
}

#[test]
fn concurrent_generation_matches_serial() {
    // Eight threads generating the same seeds as a serial batch: thread
    // scheduling must not leak into the output (no global or
    // thread-local state in the generator).
    let cfg = GenConfig::default();
    let base = 99u64;
    let n = 8usize;
    let serial: Vec<String> = program_batch(&cfg, base, n)
        .iter()
        .map(print_module)
        .collect();
    let parallel: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let cfg = cfg.clone();
                scope.spawn(move || {
                    let m = generate_valid(&cfg, base.wrapping_add(i as u64 * 7919));
                    print_module(&m)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(serial, parallel, "worker scheduling changed the programs");
}

#[test]
fn distinct_seeds_are_distinct_programs() {
    // Not a hard requirement of the generator, but the dedup pipeline
    // depends on seeds spreading: adjacent batch seeds must not collapse
    // to one program.
    let cfg = GenConfig::default();
    let batch = program_batch(&cfg, 5000, 6);
    let mut fps: Vec<u64> = batch.iter().map(fingerprint_module).collect();
    fps.sort_unstable();
    fps.dedup();
    assert!(fps.len() >= 5, "expected ≥5 distinct programs out of 6");
}
