//! Corpus-wide validity properties.
//!
//! Every program the corpus pipeline can emit must (a) pass the IR
//! verifier, (b) terminate inside the filter's fuel budget, and (c)
//! survive a lossless round trip through the wire printer/parser — the
//! serve daemon receives corpus programs as text, so printer/parser
//! fidelity is part of the corpus contract, not a nicety. Properties
//! range over generator parameters, not just the stock configs.

use autophase_ir::fingerprint::fingerprint_module;
use autophase_ir::parser::parse_module;
use autophase_ir::printer::print_module;
use autophase_ir::verify::verify_module;
use autophase_progen::{generate_valid, GenConfig};
use proptest::prelude::*;

#[allow(clippy::too_many_arguments)]
fn config_from(
    max_helpers: usize,
    max_stmts: usize,
    max_loop_depth: usize,
    max_trip: i64,
    max_expr_depth: usize,
    num_locals: usize,
    max_array: u32,
) -> GenConfig {
    GenConfig {
        max_helpers,
        max_stmts,
        max_loop_depth,
        max_trip,
        max_expr_depth,
        num_locals,
        max_array,
        filter_fuel: 2_000_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Corpus programs verify and round-trip losslessly through the wire
    /// format: parse(print(m)) prints identically and fingerprints
    /// identically, and the reparsed module verifies too.
    #[test]
    fn generated_programs_verify_and_round_trip(
        knobs in (0usize..=3, 1usize..=10, 1usize..=3, 4i64..=32),
        shape in (1usize..=4, 1usize..=6, 4u32..=32),
        seed in 0u64..1_000_000,
    ) {
        let (max_helpers, max_stmts, max_loop_depth, max_trip) = knobs;
        let (max_expr_depth, num_locals, max_array) = shape;
        let cfg = config_from(
            max_helpers, max_stmts, max_loop_depth, max_trip,
            max_expr_depth, num_locals, max_array,
        );
        let m = generate_valid(&cfg, seed);
        prop_assert!(verify_module(&m).is_ok(), "generated module must verify");

        let text = print_module(&m);
        let reparsed = parse_module(&text).expect("wire text must parse back");
        prop_assert!(verify_module(&reparsed).is_ok(), "reparsed module must verify");
        prop_assert_eq!(
            print_module(&reparsed),
            text,
            "printer/parser round trip must be lossless"
        );
        prop_assert_eq!(
            fingerprint_module(&reparsed),
            fingerprint_module(&m),
            "round trip must preserve the structural fingerprint"
        );
    }

    /// The validity filter's own promise: the program runs to completion
    /// within the configured fuel and does nontrivial work.
    #[test]
    fn generated_programs_terminate_with_work(
        knobs in (0usize..=3, 1usize..=10, 1usize..=3, 4i64..=32),
        shape in (1usize..=4, 1usize..=6, 4u32..=32),
        seed in 0u64..1_000_000,
    ) {
        let (max_helpers, max_stmts, max_loop_depth, max_trip) = knobs;
        let (max_expr_depth, num_locals, max_array) = shape;
        let cfg = config_from(
            max_helpers, max_stmts, max_loop_depth, max_trip,
            max_expr_depth, num_locals, max_array,
        );
        let m = generate_valid(&cfg, seed);
        let trace = autophase_ir::interp::run_main(&m, cfg.filter_fuel)
            .expect("filtered program must terminate in fuel");
        prop_assert!(trace.insts_executed > 10, "filter demands nontrivial work");
    }
}
