//! Seeded random HLS program generation (the paper's CSmith substitute).
//!
//! The paper expands its training set with CSmith-generated C programs,
//! filtered to those that terminate quickly and survive HLS compilation
//! (§3.4). This crate generates random programs directly in
//! `autophase-ir` with the same intent: well-defined integer kernels full
//! of loops, arrays, branches, helper calls, and constant tables — the
//! raw material whose cycle count the optimization passes can actually
//! move. Every program folds its outputs into `main`'s return value so
//! the semantics-preservation oracle observes all computed state.
//!
//! Generation is deterministic in the seed; [`generate_valid`] applies the
//! paper's filters (verifies, terminates within a fuel budget, profiles
//! under HLS).
//!
//! # Example
//!
//! ```
//! use autophase_progen::{GenConfig, generate_valid};
//!
//! let program = generate_valid(&GenConfig::default(), 42);
//! let trace = autophase_ir::interp::run_main(&program, 10_000_000)?;
//! assert!(trace.insts_executed > 0);
//! # Ok::<(), autophase_ir::interp::ExecError>(())
//! ```
#![warn(missing_docs)]

pub mod config;
pub mod generate;

pub use config::GenConfig;
pub use generate::{generate, generate_valid, program_batch};
