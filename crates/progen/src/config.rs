//! Generator configuration.

/// Knobs for random program generation.
///
/// Defaults produce programs in the complexity range the paper's filtered
/// CSmith corpus occupies: a handful of loops with double-digit trip
/// counts, a few arrays, one or two helper functions, total dynamic work
/// well under the runtime filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenConfig {
    /// Maximum number of helper functions besides `main`.
    pub max_helpers: usize,
    /// Maximum statements per block scope.
    pub max_stmts: usize,
    /// Maximum loop nesting depth.
    pub max_loop_depth: usize,
    /// Loop trip counts are drawn from `4..=max_trip`.
    pub max_trip: i64,
    /// Maximum expression tree depth.
    pub max_expr_depth: usize,
    /// Number of scalar locals per function.
    pub num_locals: usize,
    /// Array lengths are drawn from `4..=max_array`.
    pub max_array: u32,
    /// Interpreter fuel used by the validity filter (the "runs in under
    /// five minutes on CPU" filter of §3.4, scaled to the simulator).
    pub filter_fuel: u64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_helpers: 2,
            max_stmts: 6,
            max_loop_depth: 2,
            max_trip: 24,
            max_expr_depth: 3,
            num_locals: 4,
            max_array: 16,
            filter_fuel: 2_000_000,
        }
    }
}

impl GenConfig {
    /// Larger programs (used for the 12,874-program generalization sweep's
    /// "harder" tail).
    pub fn large() -> GenConfig {
        GenConfig {
            max_helpers: 3,
            max_stmts: 10,
            max_loop_depth: 3,
            max_trip: 32,
            max_expr_depth: 4,
            num_locals: 6,
            max_array: 32,
            filter_fuel: 8_000_000,
        }
    }

    /// Serialize as space-separated `key=value` pairs (the corpus
    /// manifest's generator-parameters line). Every field participates:
    /// a manifest pins the full generator configuration, so regeneration
    /// cannot silently drift when a knob changes.
    pub fn to_kv(&self) -> String {
        format!(
            "max_helpers={} max_stmts={} max_loop_depth={} max_trip={} \
             max_expr_depth={} num_locals={} max_array={} filter_fuel={}",
            self.max_helpers,
            self.max_stmts,
            self.max_loop_depth,
            self.max_trip,
            self.max_expr_depth,
            self.num_locals,
            self.max_array,
            self.filter_fuel,
        )
    }

    /// Parse the [`to_kv`](GenConfig::to_kv) form. Unknown keys are
    /// rejected (a newer manifest must not be silently reinterpreted by
    /// an older generator) and every field must be present.
    ///
    /// # Errors
    ///
    /// A message naming the malformed pair, unknown key, or missing field.
    pub fn from_kv(s: &str) -> Result<GenConfig, String> {
        let mut cfg = GenConfig::default();
        let mut seen = [false; 8];
        for pair in s.split_whitespace() {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("malformed pair {pair:?}"))?;
            let idx = match key {
                "max_helpers" => {
                    cfg.max_helpers = value.parse().map_err(|e| format!("{key}: {e}"))?;
                    0
                }
                "max_stmts" => {
                    cfg.max_stmts = value.parse().map_err(|e| format!("{key}: {e}"))?;
                    1
                }
                "max_loop_depth" => {
                    cfg.max_loop_depth = value.parse().map_err(|e| format!("{key}: {e}"))?;
                    2
                }
                "max_trip" => {
                    cfg.max_trip = value.parse().map_err(|e| format!("{key}: {e}"))?;
                    3
                }
                "max_expr_depth" => {
                    cfg.max_expr_depth = value.parse().map_err(|e| format!("{key}: {e}"))?;
                    4
                }
                "num_locals" => {
                    cfg.num_locals = value.parse().map_err(|e| format!("{key}: {e}"))?;
                    5
                }
                "max_array" => {
                    cfg.max_array = value.parse().map_err(|e| format!("{key}: {e}"))?;
                    6
                }
                "filter_fuel" => {
                    cfg.filter_fuel = value.parse().map_err(|e| format!("{key}: {e}"))?;
                    7
                }
                _ => return Err(format!("unknown generator parameter {key:?}")),
            };
            seen[idx] = true;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            const NAMES: [&str; 8] = [
                "max_helpers",
                "max_stmts",
                "max_loop_depth",
                "max_trip",
                "max_expr_depth",
                "num_locals",
                "max_array",
                "filter_fuel",
            ];
            return Err(format!("missing generator parameter {}", NAMES[missing]));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = GenConfig::default();
        assert!(c.max_trip >= 4);
        assert!(c.max_loop_depth >= 1);
        assert!(GenConfig::large().max_stmts > c.max_stmts);
    }

    #[test]
    fn kv_round_trips() {
        for cfg in [GenConfig::default(), GenConfig::large()] {
            let kv = cfg.to_kv();
            assert_eq!(GenConfig::from_kv(&kv).unwrap(), cfg);
        }
    }

    #[test]
    fn kv_rejects_unknown_missing_and_malformed() {
        let ok = GenConfig::default().to_kv();
        assert!(GenConfig::from_kv(&format!("{ok} bogus=1"))
            .unwrap_err()
            .contains("unknown"));
        assert!(GenConfig::from_kv("max_helpers=2")
            .unwrap_err()
            .contains("missing"));
        assert!(GenConfig::from_kv("max_helpers")
            .unwrap_err()
            .contains("malformed"));
        assert!(GenConfig::from_kv(&ok.replace("max_trip=24", "max_trip=x")).is_err());
    }
}
