//! Generator configuration.

/// Knobs for random program generation.
///
/// Defaults produce programs in the complexity range the paper's filtered
/// CSmith corpus occupies: a handful of loops with double-digit trip
/// counts, a few arrays, one or two helper functions, total dynamic work
/// well under the runtime filter.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of helper functions besides `main`.
    pub max_helpers: usize,
    /// Maximum statements per block scope.
    pub max_stmts: usize,
    /// Maximum loop nesting depth.
    pub max_loop_depth: usize,
    /// Loop trip counts are drawn from `4..=max_trip`.
    pub max_trip: i64,
    /// Maximum expression tree depth.
    pub max_expr_depth: usize,
    /// Number of scalar locals per function.
    pub num_locals: usize,
    /// Array lengths are drawn from `4..=max_array`.
    pub max_array: u32,
    /// Interpreter fuel used by the validity filter (the "runs in under
    /// five minutes on CPU" filter of §3.4, scaled to the simulator).
    pub filter_fuel: u64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_helpers: 2,
            max_stmts: 6,
            max_loop_depth: 2,
            max_trip: 24,
            max_expr_depth: 3,
            num_locals: 4,
            max_array: 16,
            filter_fuel: 2_000_000,
        }
    }
}

impl GenConfig {
    /// Larger programs (used for the 12,874-program generalization sweep's
    /// "harder" tail).
    pub fn large() -> GenConfig {
        GenConfig {
            max_helpers: 3,
            max_stmts: 10,
            max_loop_depth: 3,
            max_trip: 32,
            max_expr_depth: 4,
            num_locals: 6,
            max_array: 32,
            filter_fuel: 8_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = GenConfig::default();
        assert!(c.max_trip >= 4);
        assert!(c.max_loop_depth >= 1);
        assert!(GenConfig::large().max_stmts > c.max_stmts);
    }
}
