//! The program generator itself.

use crate::config::GenConfig;
use autophase_ir::builder::FunctionBuilder;
use autophase_ir::{BinOp, CastOp, CmpPred, FuncId, Global, Module, Type, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate one random module from a seed (no validity filtering).
pub fn generate(cfg: &GenConfig, seed: u64) -> Module {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00D1_5EA5_E5A1_F00D);
    let mut module = Module::new(format!("random_{seed}"));

    // Constant lookup table shared by expressions.
    let table: Vec<i64> = (0..16).map(|_| rng.gen_range(-64..64)).collect();
    let table_g = module.add_global(Global::constant("lut", Type::I32, table));
    // A mutable output buffer; its contents are checksummed into the
    // return value so stores stay observable.
    let out_len = rng.gen_range(4..=cfg.max_array);
    let out_g = module.add_global(Global::zeroed("out", Type::I32, out_len));

    // Helper functions first so main can call them.
    let n_helpers = rng.gen_range(0..=cfg.max_helpers);
    let mut helpers: Vec<FuncId> = Vec::new();
    for h in 0..n_helpers {
        let fid = gen_helper(&mut module, cfg, &mut rng, h, table_g);
        helpers.push(fid);
    }

    gen_main(
        &mut module,
        cfg,
        &mut rng,
        &helpers,
        table_g,
        out_g,
        out_len,
    );
    module
}

/// Generate a module that passes the paper's filters: it verifies, its
/// `main` terminates within the fuel budget, and the HLS scheduler accepts
/// it. Seeds are bumped deterministically until a valid program appears.
pub fn generate_valid(cfg: &GenConfig, seed: u64) -> Module {
    for attempt in 0..1000 {
        let m = generate(cfg, seed.wrapping_add(attempt * 0x9E37_79B9));
        if autophase_ir::verify::verify_module(&m).is_err() {
            continue;
        }
        match autophase_ir::interp::run_main(&m, cfg.filter_fuel) {
            Ok(trace) if trace.insts_executed > 10 => return m,
            _ => continue,
        }
    }
    unreachable!("generator failed to produce a valid program in 1000 attempts");
}

/// A deterministic batch of valid programs (the paper's 100-program
/// training set and 12,874-program test set are instances of this).
pub fn program_batch(cfg: &GenConfig, base_seed: u64, n: usize) -> Vec<Module> {
    (0..n)
        .map(|i| generate_valid(cfg, base_seed.wrapping_add(i as u64 * 7919)))
        .collect()
}

struct Scope {
    /// Pointers to scalar locals (allocas).
    locals: Vec<Value>,
    /// Readable values currently in scope (loop IVs, helper args...).
    readables: Vec<Value>,
    /// Pointer to the local array, with its length.
    array: Option<(Value, u32)>,
}

fn gen_helper(
    module: &mut Module,
    cfg: &GenConfig,
    rng: &mut StdRng,
    idx: usize,
    table_g: autophase_ir::GlobalId,
) -> FuncId {
    // All helpers take exactly three i32 parameters so call sites never
    // need to look up arity.
    let n_params = 3usize;
    let mut b = FunctionBuilder::new(format!("helper{idx}"), vec![Type::I32; n_params], Type::I32);
    let params: Vec<Value> = (0..n_params as u32).map(Value::Arg).collect();

    // Sometimes a guard (early return) so the partial inliner has targets.
    if rng.gen_bool(0.4) {
        let early = b.new_block();
        let rest = b.new_block();
        let c = b.icmp(CmpPred::Sle, params[0], Value::i32(0));
        b.cond_br(c, early, rest);
        b.switch_to(early);
        b.ret(Some(Value::i32(rng.gen_range(0..8))));
        b.switch_to(rest);
    }

    let mut scope = Scope {
        locals: Vec::new(),
        readables: params.clone(),
        array: None,
    };
    // One accumulator local.
    let acc = b.alloca(Type::I32, 1);
    b.store(acc, Value::i32(rng.gen_range(0..4)));
    scope.locals.push(acc);

    let n_stmts = rng.gen_range(1..=cfg.max_stmts.min(4));
    for _ in 0..n_stmts {
        gen_stmt(&mut b, cfg, rng, &mut scope, &[], table_g, 1);
    }

    let r = b.load(Type::I32, acc);
    let mixed = gen_expr(&mut b, cfg, rng, &scope, table_g, 1);
    let out = b.binary(BinOp::Add, r, mixed);
    b.ret(Some(out));
    module.add_function(b.finish())
}

#[allow(clippy::too_many_arguments)]
fn gen_main(
    module: &mut Module,
    cfg: &GenConfig,
    rng: &mut StdRng,
    helpers: &[FuncId],
    table_g: autophase_ir::GlobalId,
    out_g: autophase_ir::GlobalId,
    out_len: u32,
) {
    let mut b = FunctionBuilder::new("main", vec![], Type::I32);

    let mut scope = Scope {
        locals: Vec::new(),
        readables: Vec::new(),
        array: None,
    };
    for i in 0..cfg.num_locals {
        let p = b.alloca(Type::I32, 1);
        b.store(p, Value::i32(rng.gen_range(-8..8) + i as i32));
        scope.locals.push(p);
    }
    let arr_len = rng.gen_range(4..=cfg.max_array);
    let arr = b.alloca(Type::I32, arr_len);
    // Init loop over the array (loop-idiom / unroll material).
    b.counted_loop(Value::i32(arr_len as i32), |b, i| {
        let p = b.gep(arr, i);
        b.store(p, i);
    });
    scope.array = Some((arr, arr_len));

    // Clamp so degenerate configs (max_stmts == 1) stay in the sampler's
    // domain instead of panicking; the drawn range is unchanged for every
    // config the clamp doesn't bite.
    let n_stmts = rng.gen_range(2..=cfg.max_stmts.max(2));
    for _ in 0..n_stmts {
        gen_stmt(&mut b, cfg, rng, &mut scope, helpers, table_g, 0);
    }

    // Checksum: locals, the local array, and the global out buffer fold
    // into the returned value.
    let acc = b.alloca(Type::I32, 1);
    b.store(acc, Value::i32(0));
    for &l in &scope.locals {
        let v = b.load(Type::I32, l);
        let c = b.load(Type::I32, acc);
        let x = b.binary(BinOp::Xor, c, v);
        let r = b.binary(BinOp::Mul, x, Value::i32(31));
        b.store(acc, r);
    }
    b.counted_loop(Value::i32(arr_len as i32), |b, i| {
        let p = b.gep(arr, i);
        let v = b.load(Type::I32, p);
        let c = b.load(Type::I32, acc);
        let s = b.binary(BinOp::Add, c, v);
        b.store(acc, s);
    });
    b.counted_loop(Value::i32(out_len as i32), |b, i| {
        let p = b.gep(Value::Global(out_g), i);
        let v = b.load(Type::I32, p);
        let c = b.load(Type::I32, acc);
        let s = b.binary(BinOp::Xor, c, v);
        b.store(acc, s);
    });
    let result = b.load(Type::I32, acc);
    b.ret(Some(result));
    module.add_function(b.finish());
    let _ = table_g;
}

/// Emit one statement at the current insertion point.
#[allow(clippy::too_many_arguments)]
fn gen_stmt(
    b: &mut FunctionBuilder,
    cfg: &GenConfig,
    rng: &mut StdRng,
    scope: &mut Scope,
    helpers: &[FuncId],
    table_g: autophase_ir::GlobalId,
    depth: usize,
) {
    let choices = if depth < cfg.max_loop_depth { 6 } else { 4 };
    match rng.gen_range(0..choices) {
        // Assign an expression to a local.
        0 | 1 => {
            let target = scope.locals[rng.gen_range(0..scope.locals.len())];
            let e = gen_expr(b, cfg, rng, scope, table_g, depth);
            b.store(target, e);
        }
        // If/else updating a local.
        2 => {
            let t = b.new_block();
            let e = b.new_block();
            let j = b.new_block();
            let lhs = gen_expr(b, cfg, rng, scope, table_g, depth);
            let rhs = gen_expr(b, cfg, rng, scope, table_g, depth);
            let pred =
                [CmpPred::Slt, CmpPred::Eq, CmpPred::Sgt, CmpPred::Ne][rng.gen_range(0..4usize)];
            let c = b.icmp(pred, lhs, rhs);
            b.cond_br(c, t, e);
            let target = scope.locals[rng.gen_range(0..scope.locals.len())];
            b.switch_to(t);
            let v1 = gen_expr(b, cfg, rng, scope, table_g, depth);
            b.store(target, v1);
            b.br(j);
            b.switch_to(e);
            if rng.gen_bool(0.5) {
                let v2 = gen_expr(b, cfg, rng, scope, table_g, depth);
                b.store(target, v2);
            }
            b.br(j);
            b.switch_to(j);
        }
        // Call a helper (if any) into a local.
        3 => {
            if helpers.is_empty() {
                let target = scope.locals[rng.gen_range(0..scope.locals.len())];
                let e = gen_expr(b, cfg, rng, scope, table_g, depth);
                b.store(target, e);
            } else {
                let callee = helpers[rng.gen_range(0..helpers.len())];
                let n_args = b_num_params(b, callee);
                let args: Vec<Value> = (0..n_args)
                    .map(|_| gen_expr(b, cfg, rng, scope, table_g, depth))
                    .collect();
                let r = b.call(callee, Type::I32, args);
                let target = scope.locals[rng.gen_range(0..scope.locals.len())];
                b.store(target, r);
            }
        }
        // Counted loop with a body of statements.
        4 | 5 => {
            let trip = rng.gen_range(4..=cfg.max_trip);
            // Pre-draw body statement plan to keep rng sequencing simple.
            let n_body = rng.gen_range(1..=3usize);
            let mut sub_rng = StdRng::seed_from_u64(rng.gen());
            b.counted_loop(Value::i32(trip as i32), |b, i| {
                scope.readables.push(i);
                for _ in 0..n_body {
                    // Array traffic inside loops: read/modify/write one slot.
                    if let (Some((arr, len)), true) = (scope.array, sub_rng.gen_bool(0.5)) {
                        let idx = b.binary(BinOp::URem, i, Value::i32(len as i32));
                        let p = b.gep(arr, idx);
                        let old = b.load(Type::I32, p);
                        let e = gen_expr(b, cfg, &mut sub_rng, scope, table_g, depth + 1);
                        let nv = b.binary(
                            [BinOp::Add, BinOp::Xor, BinOp::Sub][sub_rng.gen_range(0..3usize)],
                            old,
                            e,
                        );
                        b.store(p, nv);
                    } else {
                        gen_stmt(b, cfg, &mut sub_rng, scope, helpers, table_g, depth + 1);
                    }
                }
                scope.readables.pop();
            });
        }
        _ => unreachable!(),
    }
}

fn b_num_params(_b: &FunctionBuilder, _callee: FuncId) -> usize {
    // Every generated helper takes exactly three i32 parameters.
    3
}

/// Emit an expression tree, returns its value.
fn gen_expr(
    b: &mut FunctionBuilder,
    cfg: &GenConfig,
    rng: &mut StdRng,
    scope: &Scope,
    table_g: autophase_ir::GlobalId,
    depth: usize,
) -> Value {
    gen_expr_depth(b, cfg, rng, scope, table_g, depth, cfg.max_expr_depth)
}

#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn gen_expr_depth(
    b: &mut FunctionBuilder,
    cfg: &GenConfig,
    rng: &mut StdRng,
    scope: &Scope,
    table_g: autophase_ir::GlobalId,
    stmt_depth: usize,
    budget: usize,
) -> Value {
    if budget == 0 || rng.gen_bool(0.3) {
        // Leaf.
        return match rng.gen_range(0..4) {
            0 => Value::i32(rng.gen_range(-16..17)),
            1 => {
                let p = scope.locals[rng.gen_range(0..scope.locals.len())];
                b.load(Type::I32, p)
            }
            2 if !scope.readables.is_empty() => {
                scope.readables[rng.gen_range(0..scope.readables.len())]
            }
            _ => {
                // Constant-table lookup.
                let idx = rng.gen_range(0..16);
                let p = b.gep(Value::Global(table_g), Value::i32(idx));
                b.load(Type::I32, p)
            }
        };
    }
    let lhs = gen_expr_depth(b, cfg, rng, scope, table_g, stmt_depth, budget - 1);
    let rhs = gen_expr_depth(b, cfg, rng, scope, table_g, stmt_depth, budget - 1);
    let ops = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::AShr,
        BinOp::SDiv,
        BinOp::URem,
    ];
    let op = ops[rng.gen_range(0..ops.len())];
    let rhs = match op {
        // Bound shift amounts (semantics mask anyway; small shifts keep
        // values in interesting ranges).
        BinOp::Shl | BinOp::AShr => b.binary(BinOp::And, rhs, Value::i32(7)),
        _ => rhs,
    };
    let v = b.binary(op, lhs, rhs);
    if rng.gen_bool(0.1) {
        // Occasional narrowing round trip (cast material).
        let n = b.cast(CastOp::Trunc, Type::I16, v);
        b.cast(CastOp::SExt, Type::I32, n)
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::interp::run_main;
    use autophase_ir::verify::verify_module;

    #[test]
    fn deterministic_in_seed() {
        let cfg = GenConfig::default();
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        assert_eq!(
            autophase_ir::printer::print_module(&a),
            autophase_ir::printer::print_module(&b)
        );
        let c = generate(&cfg, 8);
        assert_ne!(
            autophase_ir::printer::print_module(&a),
            autophase_ir::printer::print_module(&c)
        );
    }

    #[test]
    fn valid_programs_verify_and_terminate() {
        let cfg = GenConfig::default();
        for seed in 0..30 {
            let m = generate_valid(&cfg, seed);
            verify_module(&m).unwrap();
            let t = run_main(&m, cfg.filter_fuel).unwrap();
            assert!(t.insts_executed > 10);
        }
    }

    #[test]
    fn programs_have_optimization_material() {
        let cfg = GenConfig::default();
        let mut any_loop = 0;
        let mut any_mem = 0;
        let mut any_branch = 0;
        for seed in 0..20 {
            let m = generate_valid(&cfg, seed);
            let f = autophase_features::extract(&m);
            if f[50] > 3 {
                any_loop += 1;
            }
            if f[52] > 0 {
                any_mem += 1;
            }
            if f[15] > 0 {
                any_branch += 1;
            }
        }
        assert_eq!(any_mem, 20);
        assert_eq!(any_branch, 20);
        assert!(any_loop >= 18);
    }

    #[test]
    fn passes_preserve_random_program_semantics() {
        // The cornerstone integration property, sampled cheaply here (the
        // proptest suite drives it harder).
        let cfg = GenConfig::default();
        for seed in 0..10 {
            let m0 = generate_valid(&cfg, seed);
            let expect = run_main(&m0, cfg.filter_fuel).unwrap().observable();
            let mut m = m0.clone();
            autophase_passes::o3::o3(&mut m);
            verify_module(&m).unwrap_or_else(|e| {
                panic!("seed {seed}: O3 broke verify: {e}");
            });
            let got = run_main(&m, cfg.filter_fuel).unwrap().observable();
            assert_eq!(got, expect, "seed {seed}: O3 changed behaviour");
        }
    }

    #[test]
    fn optimization_improves_random_programs_on_average() {
        use autophase_hls::{profile::cycle_count, HlsConfig};
        let cfg = GenConfig::default();
        let hls = HlsConfig::default();
        let mut better = 0;
        let n = 15;
        for seed in 100..100 + n {
            let m0 = generate_valid(&cfg, seed);
            let c0 = cycle_count(&m0, &hls).unwrap();
            let mut m = m0.clone();
            autophase_passes::o3::o3(&mut m);
            let c1 = cycle_count(&m, &hls).unwrap();
            if c1 < c0 {
                better += 1;
            }
        }
        assert!(better * 10 >= n * 8, "O3 helped only {better}/{n} programs");
    }

    #[test]
    fn batch_is_deterministic() {
        let cfg = GenConfig::default();
        let a = program_batch(&cfg, 1, 3);
        let b = program_batch(&cfg, 1, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                autophase_ir::printer::print_module(x),
                autophase_ir::printer::print_module(y)
            );
        }
    }
}
