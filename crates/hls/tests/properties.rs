//! Property tests of the scheduler and profiler.

use autophase_hls::{profile::profile_module, schedule::schedule_block, HlsConfig};
use autophase_ir::builder::FunctionBuilder;
use autophase_ir::{BinOp, Module, Type, Value};
use autophase_progen::{generate_valid, GenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Slower clocks never increase any block's state count (chaining is
    /// monotone in the period budget).
    #[test]
    fn chaining_monotone_in_clock_period(seed in 0u64..2000) {
        let m = generate_valid(&GenConfig::default(), seed);
        let fast = HlsConfig::at_frequency_mhz(250.0);
        let slow = HlsConfig::at_frequency_mhz(100.0);
        for fid in m.func_ids() {
            let f = m.func(fid);
            for bb in f.block_ids() {
                let sf = schedule_block(f, bb, &fast).states;
                let ss = schedule_block(f, bb, &slow).states;
                prop_assert!(ss <= sf, "block b{} got slower at 100MHz: {ss} vs {sf}", bb.index());
            }
        }
    }

    /// Profiling is deterministic.
    #[test]
    fn profiling_deterministic(seed in 0u64..2000) {
        let m = generate_valid(&GenConfig::default(), seed);
        let cfg = HlsConfig::default();
        let a = profile_module(&m, &cfg).unwrap();
        let b = profile_module(&m, &cfg).unwrap();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.total_states, b.total_states);
        prop_assert_eq!(a.area.total(), b.area.total());
    }

    /// Every block occupies at least one state and at most one state per
    /// instruction plus multi-cycle latencies.
    #[test]
    fn state_counts_bounded(seed in 0u64..2000) {
        let m = generate_valid(&GenConfig::default(), seed);
        let cfg = HlsConfig::default();
        for fid in m.func_ids() {
            let f = m.func(fid);
            for bb in f.block_ids() {
                let s = schedule_block(f, bb, &cfg);
                let n = f.block(bb).insts.len() as u32;
                prop_assert!(s.states >= 1);
                let worst = n * cfg.div_latency.max(cfg.load_latency + 1) + 1;
                prop_assert!(s.states <= worst, "b{}: {} states for {} insts", bb.index(), s.states, n);
            }
        }
    }

    /// More memory ports never hurt.
    #[test]
    fn memory_ports_monotone(seed in 0u64..1000) {
        let m = generate_valid(&GenConfig::default(), seed);
        let one = HlsConfig { memory_ports: 1, ..HlsConfig::default() };
        let four = HlsConfig { memory_ports: 4, ..HlsConfig::default() };
        let c1 = profile_module(&m, &one).unwrap().cycles;
        let c4 = profile_module(&m, &four).unwrap().cycles;
        prop_assert!(c4 <= c1, "4 ports slower than 1: {c4} vs {c1}");
    }
}

#[test]
fn dependent_chain_state_count_exact() {
    // 2ns adds into a 5ns period: 2 chain per state; 6 dependent adds → 3
    // states (ret chains into the last).
    let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
    let mut v = b.arg(0);
    for i in 0..6 {
        v = b.binary(BinOp::Add, v, Value::i32(i));
    }
    b.ret(Some(v));
    let f = b.finish();
    let s = schedule_block(&f, f.entry, &HlsConfig::default());
    assert_eq!(s.states, 3);
}

#[test]
fn profile_report_exec_time_scales_with_period() {
    let mut b = FunctionBuilder::new("main", vec![], Type::I32);
    let acc = b.alloca(Type::I32, 1);
    b.store(acc, Value::i32(0));
    b.counted_loop(Value::i32(20), |b, i| {
        let c = b.load(Type::I32, acc);
        let n = b.binary(BinOp::Add, c, i);
        b.store(acc, n);
    });
    let r = b.load(Type::I32, acc);
    b.ret(Some(r));
    let mut m = Module::new("t");
    m.add_function(b.finish());
    let c200 = HlsConfig::at_frequency_mhz(200.0);
    let c100 = HlsConfig::at_frequency_mhz(100.0);
    let r200 = profile_module(&m, &c200).unwrap();
    let r100 = profile_module(&m, &c100).unwrap();
    // Wall-clock = cycles × period: the 100 MHz design has fewer cycles but
    // each costs twice as long; the products stay within 2.5× of each other.
    let t200 = r200.exec_time_us(&c200);
    let t100 = r100.exec_time_us(&c100);
    assert!(t100 / t200 < 2.5 && t200 / t100 < 2.5, "{t100} vs {t200}");
}
