//! Resource (area) estimation.
//!
//! The paper notes the reward can target area instead of cycles; this
//! module provides that objective. Functional units are shared per
//! function per state in real LegUp binding; we approximate binding by
//! charging, for each operation class, the *maximum number of instances
//! needed in any one FSM state* (concurrent ops can't share a unit).

use crate::delay::area_units;
use crate::schedule::{schedule_function, FunctionSchedule};
use crate::HlsConfig;
use autophase_ir::{Function, Module, Opcode};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Estimated FPGA resources.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AreaReport {
    /// LUT-ish logic units for functional units.
    pub logic_units: u64,
    /// Registers: one per instruction result crossing a state boundary
    /// (approximated as one per non-void instruction).
    pub registers: u64,
    /// Memory bits for allocas and globals.
    pub memory_bits: u64,
    /// FSM states (one-hot state register width).
    pub fsm_states: u64,
}

impl AreaReport {
    /// A single scalar "total area" used as an optimization objective.
    pub fn total(&self) -> u64 {
        self.logic_units + self.registers / 2 + self.memory_bits / 64 + self.fsm_states
    }

    /// Accumulate another report into this one. Area composes additively
    /// per function (binding never shares units across functions), which
    /// is what makes per-function area caching exact.
    pub fn merge(&mut self, other: &AreaReport) {
        self.logic_units += other.logic_units;
        self.registers += other.registers;
        self.memory_bits += other.memory_bits;
        self.fsm_states += other.fsm_states;
    }
}

/// Estimate module area under `cfg`: the sum of every function's
/// [`estimate_function_area`] plus the module globals' memory bits.
pub fn estimate_area(m: &Module, cfg: &HlsConfig) -> AreaReport {
    let mut report = AreaReport::default();
    for fid in m.func_ids() {
        let f = m.func(fid);
        let sched = schedule_function(f, cfg);
        report.merge(&estimate_function_area(f, &sched));
    }
    report.memory_bits += globals_memory_bits(m);
    report
}

/// Memory bits contributed by module globals (the only non-per-function
/// area term).
pub fn globals_memory_bits(m: &Module) -> u64 {
    m.global_ids()
        .map(|gid| {
            let g = m.global(gid);
            g.elem_ty.bits() as u64 * g.count as u64
        })
        .sum()
}

/// One function's area contribution, given its schedule. Depends only on
/// the function body and the schedule (itself a pure function of body +
/// config), so the result can be cached per function content fingerprint.
pub fn estimate_function_area(f: &Function, sched: &FunctionSchedule) -> AreaReport {
    let mut report = AreaReport::default();
    report.fsm_states += sched.total_states as u64;
    for bb in f.block_ids() {
        // Group instructions per state and op class; the max concurrent
        // count per class across states is the number of units bound.
        let block_sched = &sched.blocks[&bb];
        let mut per_state: HashMap<(u32, &'static str), (u32, u32)> = HashMap::new();
        for (iid, inst) in f.insts_in(bb) {
            if !inst.ty.is_void() {
                report.registers += if inst.ty.is_int() { inst.ty.bits() } else { 32 } as u64;
            }
            if let Opcode::Alloca { elem_ty, count } = inst.op {
                report.memory_bits += elem_ty.bits() as u64 * count as u64;
            }
            let units = area_units(inst);
            if units == 0 {
                continue;
            }
            let state = block_sched.start_state.get(&iid).copied().unwrap_or(0);
            let entry = per_state
                .entry((state, inst.mnemonic()))
                .or_insert((0, units));
            entry.0 += 1;
        }
        let mut class_max: HashMap<&'static str, (u32, u32)> = HashMap::new();
        for ((_, class), (n, units)) in per_state {
            let e = class_max.entry(class).or_insert((0, units));
            e.0 = e.0.max(n);
        }
        for (_, (n, units)) in class_max {
            report.logic_units += n as u64 * units as u64;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::{BinOp, Type};

    #[test]
    fn more_multipliers_more_area() {
        let mk = |n: usize| {
            let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
            let mut v = b.arg(0);
            for _ in 0..n {
                // Independent muls to force concurrency.
                let w = b.binary(BinOp::Mul, b.arg(0), b.arg(0));
                v = b.binary(BinOp::Add, v, w);
            }
            b.ret(Some(v));
            let mut m = Module::new("t");
            m.add_function(b.finish());
            m
        };
        let cfg = HlsConfig::default();
        let a1 = estimate_area(&mk(1), &cfg).total();
        let a4 = estimate_area(&mk(4), &cfg).total();
        assert!(a4 > a1);
    }

    #[test]
    fn memories_counted() {
        let mut m = Module::new("t");
        m.add_global(autophase_ir::Global::zeroed("buf", Type::I32, 128));
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        let area = estimate_area(&m, &HlsConfig::default());
        assert_eq!(area.memory_bits, 32 * 128);
    }

    #[test]
    fn sequential_muls_share_a_unit() {
        // Two dependent muls end up in different states → 1 unit; two
        // independent muls in the same state → 2 units.
        let dep = {
            let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
            let m1 = b.binary(BinOp::Mul, b.arg(0), b.arg(0));
            let m2 = b.binary(BinOp::Mul, m1, b.arg(0));
            b.ret(Some(m2));
            let mut m = Module::new("t");
            m.add_function(b.finish());
            m
        };
        let indep = {
            let mut b = FunctionBuilder::new("main", vec![Type::I32, Type::I32], Type::I32);
            let m1 = b.binary(BinOp::Mul, b.arg(0), b.arg(0));
            let m2 = b.binary(BinOp::Mul, b.arg(1), b.arg(1));
            let s = b.binary(BinOp::Add, m1, m2);
            b.ret(Some(s));
            let mut m = Module::new("t");
            m.add_function(b.finish());
            m
        };
        let cfg = HlsConfig::default();
        let dep_area = estimate_area(&dep, &cfg);
        let indep_area = estimate_area(&indep, &cfg);
        assert!(indep_area.logic_units > dep_area.logic_units);
    }
}
