//! Content-addressed per-function schedule/area cache.
//!
//! Scheduling and binding are pure functions of a function's body and the
//! HLS config, so their results can be keyed by the function's content
//! fingerprint and reused across modules, episodes, and programs: a
//! function untouched by the current pass sequence — or restored by a
//! transaction rollback — hits the cache no matter how the module around
//! it changed. Content addressing is also what makes the cache immune to
//! faults: a rolled-back pass leaves the module at a fingerprint that was
//! already cached, and entries for the discarded state are simply never
//! looked up again (and eventually age out of the LRU).
//!
//! One cache instance is valid for exactly one [`HlsConfig`]; callers
//! that profile under several configs must keep one cache per config
//! (the phase-ordering environment owns one, matching its single config).

use crate::area::{estimate_function_area, AreaReport};
use crate::schedule::{schedule_function, FunctionSchedule};
use crate::HlsConfig;
use autophase_ir::Function;
use autophase_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::Arc;

/// Cached result of scheduling + binding one function.
#[derive(Debug)]
pub struct FuncEval {
    /// The FSM schedule (per-block state counts and start states).
    pub schedule: FunctionSchedule,
    /// The function's area contribution (excludes module globals).
    pub area: AreaReport,
}

/// LRU cache of [`FuncEval`]s keyed by function content fingerprint.
#[derive(Debug)]
pub struct ScheduleCache {
    map: HashMap<u64, (u64, Arc<FuncEval>)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// Default capacity: comfortably above the distinct function bodies a
/// long training run visits per program corpus, small enough that the
/// worst case (~a few KB per schedule) stays in the tens of MB.
pub const DEFAULT_SCHEDULE_CACHE_CAPACITY: usize = 4096;

impl ScheduleCache {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> ScheduleCache {
        ScheduleCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up the evaluation for fingerprint `fp`, scheduling `f` under
    /// `cfg` on a miss. A miss increments `functions_rescheduled_total`;
    /// hit/miss counts also feed `hls.sched_cache{hit|miss}`.
    pub fn get_or_eval(&mut self, fp: u64, f: &Function, cfg: &HlsConfig) -> Arc<FuncEval> {
        self.tick += 1;
        if let Some((stamp, ev)) = self.map.get_mut(&fp) {
            *stamp = self.tick;
            self.hits += 1;
            if telemetry::enabled() {
                telemetry::incr("hls.sched_cache", "hit", 1);
            }
            return Arc::clone(ev);
        }
        self.misses += 1;
        if telemetry::enabled() {
            telemetry::incr("hls.sched_cache", "miss", 1);
            telemetry::incr("functions_rescheduled_total", "", 1);
        }
        let schedule = schedule_function(f, cfg);
        let area = estimate_function_area(f, &schedule);
        let ev = Arc::new(FuncEval { schedule, area });
        if self.map.len() >= self.capacity {
            // Evict the least-recently-used entry. O(n) scan, but only on
            // a miss into a full cache — rare at steady state.
            if let Some((&old, _)) = self.map.iter().min_by_key(|(_, (stamp, _))| *stamp) {
                self.map.remove(&old);
                if telemetry::enabled() {
                    telemetry::incr("hls.sched_cache", "eviction", 1);
                }
            }
        }
        self.map.insert(fp, (self.tick, Arc::clone(&ev)));
        ev
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached functions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop all entries (stats are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

impl Default for ScheduleCache {
    fn default() -> ScheduleCache {
        ScheduleCache::new(DEFAULT_SCHEDULE_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::fingerprint::fingerprint_function;
    use autophase_ir::{BinOp, Type, Value};

    fn func(n: i32) -> Function {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let v = b.binary(BinOp::Add, Value::i32(n), Value::i32(1));
        b.ret(Some(v));
        b.finish()
    }

    #[test]
    fn hit_returns_same_eval() {
        let cfg = HlsConfig::default();
        let mut c = ScheduleCache::default();
        let f = func(1);
        let fp = fingerprint_function(&f);
        let a = c.get_or_eval(fp, &f, &cfg);
        let b = c.get_or_eval(fp, &f, &cfg);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn cached_eval_matches_fresh() {
        let cfg = HlsConfig::default();
        let mut c = ScheduleCache::default();
        let f = func(2);
        let ev = c.get_or_eval(fingerprint_function(&f), &f, &cfg);
        let fresh_sched = schedule_function(&f, &cfg);
        assert_eq!(ev.schedule.total_states, fresh_sched.total_states);
        assert_eq!(ev.area, estimate_function_area(&f, &fresh_sched));
    }

    #[test]
    fn lru_evicts_oldest() {
        let cfg = HlsConfig::default();
        let mut c = ScheduleCache::new(2);
        let fs: Vec<Function> = (0..3).map(func).collect();
        let fps: Vec<u64> = fs.iter().map(fingerprint_function).collect();
        c.get_or_eval(fps[0], &fs[0], &cfg);
        c.get_or_eval(fps[1], &fs[1], &cfg);
        c.get_or_eval(fps[0], &fs[0], &cfg); // refresh 0
        c.get_or_eval(fps[2], &fs[2], &cfg); // evicts 1
        assert_eq!(c.len(), 2);
        c.get_or_eval(fps[1], &fs[1], &cfg);
        assert_eq!(c.stats().1, 4, "entry 1 was evicted and re-evaluated");
    }
}
