//! The trace-driven clock-cycle profiler (LegUp's fast estimator).
//!
//! Runs the module once on the interpreter to obtain per-block execution
//! counts, schedules every block, and accumulates
//! `cycles = Σ_blocks count × states + Σ_calls call_overhead`.
//! This is ~20× faster than RTL simulation in LegUp's setting and is what
//! the RL reward is computed from at every step.

use crate::area::{estimate_area, globals_memory_bits, AreaReport};
use crate::func_cache::ScheduleCache;
use crate::schedule::schedule_function;
use crate::{HlsConfig, HlsError};
use autophase_ir::interp::{run_main, ExecTrace};
use autophase_ir::{FuncId, Module};
use autophase_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// The result of HLS compilation + profiling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HlsReport {
    /// Estimated clock cycles for one execution of `main`.
    pub cycles: u64,
    /// Total FSM states across all functions (static circuit size).
    pub total_states: u64,
    /// Resource estimate.
    pub area: AreaReport,
    /// Dynamic instructions executed while profiling.
    pub insts_executed: u64,
    /// The observable result of the profiled run (for validation).
    pub return_value: Option<i64>,
}

impl HlsReport {
    /// Wall-clock execution time at the configured frequency, in
    /// microseconds.
    pub fn exec_time_us(&self, cfg: &HlsConfig) -> f64 {
        self.cycles as f64 * cfg.clock_period_ns / 1000.0
    }
}

/// Profile a module's `main`.
///
/// # Errors
///
/// Returns [`HlsError::Exec`] when the program cannot be executed within
/// the configured fuel (non-terminating or malformed designs).
pub fn profile_module(m: &Module, cfg: &HlsConfig) -> Result<HlsReport, HlsError> {
    let start = telemetry::maybe_now();
    let trace = run_main(m, cfg.profile_fuel)?;
    telemetry::observe_since("hls.trace_ns", "", start);
    Ok(profile_with_trace(m, cfg, &trace))
}

/// Profile with an existing trace (lets callers share one interpreter run).
///
/// Telemetry: records schedule+accumulate wall time (`hls.schedule_ns`),
/// a profile count (`hls.profiles`), and the resulting cycle count and
/// FSM-state distributions (`hls.cycles`, `hls.fsm_states`).
pub fn profile_with_trace(m: &Module, cfg: &HlsConfig, trace: &ExecTrace) -> HlsReport {
    let start = telemetry::maybe_now();
    let mut cycles: u64 = 0;
    let mut total_states: u64 = 0;
    for fid in m.func_ids() {
        let f = m.func(fid);
        let sched = schedule_function(f, cfg);
        total_states += sched.total_states as u64;
        for bb in f.block_ids() {
            let count = trace.count(fid, bb);
            if count > 0 {
                cycles += count * sched.states(bb) as u64;
            }
        }
        // Per-call FSM handshake.
        cycles += trace.calls(fid) * cfg.call_overhead as u64;
    }
    // `main` itself is "called" once by the harness; do not charge it.
    if let Some(main) = m.main() {
        cycles = cycles.saturating_sub(trace.calls(main).min(1) * cfg.call_overhead as u64);
    }
    telemetry::observe_since("hls.schedule_ns", "", start);
    if start.is_some() {
        telemetry::incr("hls.profiles", "", 1);
        telemetry::observe("hls.cycles", "", cycles);
        telemetry::observe("hls.fsm_states", "", total_states);
    }
    HlsReport {
        cycles,
        total_states,
        area: estimate_area(m, cfg),
        insts_executed: trace.insts_executed,
        return_value: trace.return_value,
    }
}

/// Convenience: just the cycle count.
///
/// # Errors
///
/// Same as [`profile_module`].
pub fn cycle_count(m: &Module, cfg: &HlsConfig) -> Result<u64, HlsError> {
    Ok(profile_module(m, cfg)?.cycles)
}

/// [`profile_module`] with a per-function schedule cache: clean functions
/// (same content fingerprint) reuse their cached FSM schedule and area,
/// so only dirty functions pay the list scheduler and binder. `fp_of`
/// supplies the content fingerprint per function — callers that maintain
/// incremental fingerprints (the phase-ordering environment) pass a memo
/// lookup; others can pass
/// `|fid| fingerprint_function(m.func(fid))`.
///
/// Bit-identical to [`profile_module`] by construction: the cached values
/// are exactly what `schedule_function` / `estimate_function_area`
/// produce, and both cycle and area accumulation are per-function sums.
///
/// # Errors
///
/// Returns [`HlsError::Exec`] when the program cannot be executed within
/// the configured fuel.
pub fn profile_module_cached(
    m: &Module,
    cfg: &HlsConfig,
    cache: &mut ScheduleCache,
    fp_of: impl FnMut(FuncId) -> u64,
) -> Result<HlsReport, HlsError> {
    let start = telemetry::maybe_now();
    let trace = run_main(m, cfg.profile_fuel)?;
    telemetry::observe_since("hls.trace_ns", "", start);
    Ok(profile_with_trace_cached(m, cfg, &trace, cache, fp_of))
}

/// [`profile_with_trace`] through the per-function schedule cache (see
/// [`profile_module_cached`]).
pub fn profile_with_trace_cached(
    m: &Module,
    cfg: &HlsConfig,
    trace: &ExecTrace,
    cache: &mut ScheduleCache,
    mut fp_of: impl FnMut(FuncId) -> u64,
) -> HlsReport {
    let start = telemetry::maybe_now();
    let mut cycles: u64 = 0;
    let mut total_states: u64 = 0;
    let mut area = AreaReport::default();
    for fid in m.func_ids() {
        let f = m.func(fid);
        let ev = cache.get_or_eval(fp_of(fid), f, cfg);
        total_states += ev.schedule.total_states as u64;
        for bb in f.block_ids() {
            let count = trace.count(fid, bb);
            if count > 0 {
                cycles += count * ev.schedule.states(bb) as u64;
            }
        }
        // Per-call FSM handshake.
        cycles += trace.calls(fid) * cfg.call_overhead as u64;
        area.merge(&ev.area);
    }
    // `main` itself is "called" once by the harness; do not charge it.
    if let Some(main) = m.main() {
        cycles = cycles.saturating_sub(trace.calls(main).min(1) * cfg.call_overhead as u64);
    }
    area.memory_bits += globals_memory_bits(m);
    telemetry::observe_since("hls.schedule_ns", "", start);
    if start.is_some() {
        telemetry::incr("hls.profiles", "", 1);
        telemetry::observe("hls.cycles", "", cycles);
        telemetry::observe("hls.fsm_states", "", total_states);
    }
    HlsReport {
        cycles,
        total_states,
        area,
        insts_executed: trace.insts_executed,
        return_value: trace.return_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::{BinOp, Type, Value};

    fn sum_loop_module(n: i32) -> Module {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(Value::i32(n), |b, i| {
            let c = b.load(Type::I32, acc);
            let s = b.binary(BinOp::Add, c, i);
            b.store(acc, s);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        m
    }

    #[test]
    fn cycles_scale_with_trip_count() {
        let cfg = HlsConfig::default();
        let c10 = cycle_count(&sum_loop_module(10), &cfg).unwrap();
        let c100 = cycle_count(&sum_loop_module(100), &cfg).unwrap();
        assert!(c100 > c10 * 5, "c10={c10} c100={c100}");
        assert!(c100 < c10 * 20);
    }

    #[test]
    fn optimization_reduces_cycles() {
        // mem2reg + rotate should cut the loop's per-iteration cost a lot.
        let cfg = HlsConfig::default();
        let m0 = sum_loop_module(50);
        let before = cycle_count(&m0, &cfg).unwrap();
        let mut m = m0.clone();
        autophase_passes::mem2reg::run(&mut m);
        autophase_passes::loop_rotate::run(&mut m);
        let after = cycle_count(&m, &cfg).unwrap();
        assert!(
            after * 2 <= before,
            "expected ≥2x fewer cycles: before={before} after={after}"
        );
        // Behaviour unchanged.
        assert_eq!(
            profile_module(&m, &cfg).unwrap().return_value,
            profile_module(&m0, &cfg).unwrap().return_value,
        );
    }

    #[test]
    fn call_overhead_counted() {
        let mut m = Module::new("t");
        let callee = {
            let mut b = FunctionBuilder::new("noop_fn", vec![], Type::Void);
            b.ret(None);
            m.add_function(b.finish())
        };
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        b.counted_loop(Value::i32(10), |b, _| {
            b.call(callee, Type::Void, vec![]);
        });
        b.ret(Some(Value::i32(0)));
        m.add_function(b.finish());
        let cfg = HlsConfig::default();
        let with_calls = cycle_count(&m, &cfg).unwrap();

        // Same program after inlining is cheaper.
        let mut inlined = m.clone();
        autophase_passes::inline::run(&mut inlined);
        autophase_passes::simplifycfg::run(&mut inlined);
        let without = cycle_count(&inlined, &cfg).unwrap();
        assert!(without < with_calls, "{without} vs {with_calls}");
    }

    #[test]
    fn lower_frequency_fewer_cycles() {
        // The paper notes lower target frequencies give better cycle counts
        // (more logic fits one state). Build a body with a long chain so
        // chaining depth actually matters.
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(1));
        b.counted_loop(Value::i32(30), |b, i| {
            let c = b.load(Type::I32, acc);
            let a1 = b.binary(BinOp::Add, c, i);
            let a2 = b.binary(BinOp::Add, a1, Value::i32(3));
            let a3 = b.binary(BinOp::Add, a2, i);
            let a4 = b.binary(BinOp::Add, a3, Value::i32(5));
            b.store(acc, a4);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let at200 = cycle_count(&m, &HlsConfig::default()).unwrap();
        let at100 = cycle_count(&m, &HlsConfig::at_frequency_mhz(100.0)).unwrap();
        assert!(at100 < at200, "at100={at100} at200={at200}");
    }

    #[test]
    fn adversarial_ir_traps_with_fuel_exhausted() {
        // An RL agent can drive a design into non-termination; the profiler
        // must come back in bounded time with a typed trap, not hang.
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let spin = b.new_block();
        b.br(spin);
        b.switch_to(spin);
        let _ = b.binary(BinOp::Add, Value::i32(1), Value::i32(1));
        b.br(spin);
        let mut m = Module::new("spin");
        m.add_function(b.finish());
        let cfg = HlsConfig {
            profile_fuel: 10_000,
            ..HlsConfig::default()
        };
        match profile_module(&m, &cfg) {
            Err(crate::HlsError::Exec(autophase_ir::interp::Trap::FuelExhausted)) => {}
            other => panic!("expected FuelExhausted trap, got {other:?}"),
        }
    }

    #[test]
    fn cached_profile_bit_identical_to_full() {
        use autophase_ir::fingerprint::fingerprint_function;
        let cfg = HlsConfig::default();
        let mut cache = ScheduleCache::default();
        for n in [5, 10, 50] {
            let mut m = sum_loop_module(n);
            for pass in [38usize, 23, 30] {
                autophase_passes::registry::apply(&mut m, pass);
                let full = profile_module(&m, &cfg).unwrap();
                let cached = profile_module_cached(&m, &cfg, &mut cache, |fid| {
                    fingerprint_function(m.func(fid))
                })
                .unwrap();
                // Same state again: must come entirely from the cache.
                let again = profile_module_cached(&m, &cfg, &mut cache, |fid| {
                    fingerprint_function(m.func(fid))
                })
                .unwrap();
                assert_eq!(full.cycles, again.cycles);
                assert_eq!(full.cycles, cached.cycles);
                assert_eq!(full.total_states, cached.total_states);
                assert_eq!(full.area, cached.area);
                assert_eq!(full.insts_executed, cached.insts_executed);
                assert_eq!(full.return_value, cached.return_value);
            }
        }
        let (hits, misses) = cache.stats();
        assert!(hits > 0, "repeat states must hit ({hits}/{misses})");
    }

    #[test]
    fn report_fields_consistent() {
        let cfg = HlsConfig::default();
        let r = profile_module(&sum_loop_module(10), &cfg).unwrap();
        assert_eq!(r.return_value, Some(45));
        assert!(r.total_states >= 4);
        assert!(r.insts_executed > 0);
        assert!(r.exec_time_us(&cfg) > 0.0);
    }
}
