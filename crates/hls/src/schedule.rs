//! Clock-period-constrained scheduling with operator chaining.
//!
//! Each basic block is compiled to a linear sequence of FSM states. Within
//! a state, combinational operations chain as long as the accumulated
//! delay fits the clock period and their operands are ready; multi-cycle
//! operations (loads, divides, calls) advance the state counter; memory
//! port pressure limits how many loads/stores may start per state.
//!
//! This is the cost model that makes the paper's pass-ordering effects
//! visible: `-loop-rotate` removes one block (≥1 state) per iteration,
//! `-instcombine`/`-reassociate` shorten chains, `-loop-reduce` swaps
//! multipliers for adders, and `-mem2reg` removes 2-state load round trips.

use crate::delay::{timing, uses_memory_port, Timing};
use crate::HlsConfig;
use autophase_ir::{BlockId, Function, InstId, Value};
use std::collections::HashMap;

/// The schedule of one basic block.
#[derive(Debug, Clone)]
pub struct BlockSchedule {
    /// Number of FSM states the block occupies (≥ 1).
    pub states: u32,
    /// Start state of each scheduled instruction.
    pub start_state: HashMap<InstId, u32>,
    /// Critical-path slack: combinational nanoseconds used in the final
    /// state (diagnostic; used by the area/fmax reports).
    pub last_state_ns: f64,
}

/// The schedule of a whole function.
#[derive(Debug, Clone)]
pub struct FunctionSchedule {
    /// Per-block schedules.
    pub blocks: HashMap<BlockId, BlockSchedule>,
    /// Total states across the function's FSM.
    pub total_states: u32,
}

impl FunctionSchedule {
    /// States of one block (1 for removed/unknown blocks, the minimum).
    pub fn states(&self, bb: BlockId) -> u32 {
        self.blocks.get(&bb).map(|b| b.states).unwrap_or(1)
    }
}

/// Schedule every block of a function.
pub fn schedule_function(f: &Function, cfg: &HlsConfig) -> FunctionSchedule {
    let mut blocks = HashMap::new();
    let mut total = 0;
    for bb in f.block_ids() {
        let s = schedule_block(f, bb, cfg);
        total += s.states;
        blocks.insert(bb, s);
    }
    FunctionSchedule {
        blocks,
        total_states: total,
    }
}

/// Schedule one block.
pub fn schedule_block(f: &Function, bb: BlockId, cfg: &HlsConfig) -> BlockSchedule {
    let period = cfg.clock_period_ns;
    // Ready time of a value: (state, ns within that state).
    let mut ready: HashMap<InstId, (u32, f64)> = HashMap::new();
    let mut start_state: HashMap<InstId, u32> = HashMap::new();
    let mut cur_state: u32 = 0;
    let mut mem_ops_in_state: usize = 0;

    for &iid in &f.block(bb).insts {
        let inst = f.inst(iid);
        // Earliest start: all operands ready.
        let mut earliest: (u32, f64) = (0, 0.0);
        inst.for_each_operand(|v| {
            if let Value::Inst(dep) = v {
                if let Some(&r) = ready.get(&dep) {
                    if r.0 > earliest.0 || (r.0 == earliest.0 && r.1 > earliest.1) {
                        earliest = r;
                    }
                }
            }
        });
        let (mut s, mut t) = if earliest.0 > cur_state {
            (earliest.0, earliest.1)
        } else if earliest.0 == cur_state {
            (cur_state, earliest.1)
        } else {
            (cur_state, 0.0)
        };

        match timing(inst, cfg) {
            Timing::Free => {
                start_state.insert(iid, s);
                ready.insert(iid, (s, t));
            }
            Timing::Chain { ns } => {
                // Memory port check for stores (chained memory writes).
                if uses_memory_port(inst) && s == cur_state && mem_ops_in_state >= cfg.memory_ports
                {
                    s += 1;
                    t = 0.0;
                }
                if t + ns > period {
                    s += 1;
                    t = 0.0;
                }
                if s > cur_state {
                    cur_state = s;
                    mem_ops_in_state = 0;
                }
                if uses_memory_port(inst) {
                    mem_ops_in_state += 1;
                }
                start_state.insert(iid, s);
                ready.insert(iid, (s, t + ns));
            }
            Timing::Multi { states } => {
                // Multi-cycle ops start at a state boundary conceptually;
                // they issue in state `s` and the result is ready at the
                // start of state `s + states`.
                if uses_memory_port(inst) && s == cur_state && mem_ops_in_state >= cfg.memory_ports
                {
                    s += 1;
                }
                if s > cur_state {
                    cur_state = s;
                    mem_ops_in_state = 0;
                }
                if uses_memory_port(inst) {
                    mem_ops_in_state += 1;
                }
                start_state.insert(iid, s);
                ready.insert(iid, (s + states, 0.0));
                // The block must stay in control until the op finishes
                // (no overlap across the terminator).
                cur_state = cur_state.max(s + states - 1).max(s);
                if states > 0 {
                    // Result consumers land in s + states; the state counter
                    // advances lazily when they are scheduled.
                }
            }
        }
    }

    // The block occupies states 0..=max over everything scheduled,
    // including completion of multi-cycle results consumed here.
    let mut max_state = cur_state;
    for &(s, _) in ready.values() {
        // A value ready at (s, 0) required state s-1 to complete; only
        // count it if something consumed it (cur_state already tracks
        // issue states). Keep the simple bound:
        let _ = s;
    }
    for (&iid, &s) in &start_state {
        let inst = f.inst(iid);
        if let Timing::Multi { states } = timing(inst, cfg) {
            // Ops whose results are *used* in this block force the block to
            // wait; ops at the end (e.g. a trailing store) still occupy
            // their issue state only.
            let used_here = f.block(bb).insts.iter().any(|&u| {
                let mut uses = false;
                f.inst(u)
                    .for_each_operand(|v| uses |= v == Value::Inst(iid));
                uses
            });
            if used_here {
                max_state = max_state.max(s + states);
            }
        }
    }

    let last_state_ns = ready
        .values()
        .filter(|(s, _)| *s == max_state)
        .map(|(_, t)| *t)
        .fold(0.0, f64::max);

    BlockSchedule {
        states: max_state + 1,
        start_state,
        last_state_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::{BinOp, Type};

    fn cfg() -> HlsConfig {
        HlsConfig::default()
    }

    #[test]
    fn empty_ret_block_is_one_state() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        b.ret(None);
        let f = b.finish();
        let s = schedule_block(&f, f.entry, &cfg());
        assert_eq!(s.states, 1);
    }

    #[test]
    fn independent_adds_chain_into_one_state() {
        // Two independent adds (2ns each) + ret chain into a single 5ns state.
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let x = b.binary(BinOp::Add, b.arg(0), Value::i32(1));
        let y = b.binary(BinOp::Add, b.arg(1), Value::i32(2));
        let _ = y;
        b.ret(Some(x));
        let f = b.finish();
        let s = schedule_block(&f, f.entry, &cfg());
        assert_eq!(s.states, 1);
    }

    #[test]
    fn long_dependent_chain_splits_states() {
        // Five dependent adds = 10ns > 5ns: needs 2+ states.
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let mut v = b.arg(0);
        for i in 0..5 {
            v = b.binary(BinOp::Add, v, Value::i32(i));
        }
        b.ret(Some(v));
        let f = b.finish();
        let s = schedule_block(&f, f.entry, &cfg());
        assert!(s.states >= 2, "states: {}", s.states);
        assert!(s.states <= 3);
    }

    #[test]
    fn dependent_muls_one_state_each() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let m1 = b.binary(BinOp::Mul, b.arg(0), b.arg(0));
        let m2 = b.binary(BinOp::Mul, m1, b.arg(0));
        b.ret(Some(m2));
        let f = b.finish();
        let s = schedule_block(&f, f.entry, &cfg());
        assert_eq!(s.states, 2);
    }

    #[test]
    fn load_use_crosses_state() {
        let mut b = FunctionBuilder::new("f", vec![Type::Ptr], Type::I32);
        let v = b.load(Type::I32, b.arg(0));
        let w = b.binary(BinOp::Add, v, Value::i32(1));
        b.ret(Some(w));
        let f = b.finish();
        let s = schedule_block(&f, f.entry, &cfg());
        // load issues in state 0, data in state 1, add+ret chain there.
        assert_eq!(s.states, 2);
    }

    #[test]
    fn memory_port_limit_serializes_loads() {
        // Three loads with 2 ports: the third starts in the next state.
        let mut b = FunctionBuilder::new("f", vec![Type::Ptr], Type::I32);
        let p = b.arg(0);
        let v1 = b.load(Type::I32, p);
        let g1 = b.gep(p, Value::i32(1));
        let v2 = b.load(Type::I32, g1);
        let g2 = b.gep(p, Value::i32(2));
        let v3 = b.load(Type::I32, g2);
        let s1 = b.binary(BinOp::Add, v1, v2);
        let s2 = b.binary(BinOp::Add, s1, v3);
        b.ret(Some(s2));
        let f = b.finish();
        let sched = schedule_block(&f, f.entry, &cfg());
        let load_states: Vec<u32> = f
            .block(f.entry)
            .insts
            .iter()
            .filter(|&&i| matches!(f.inst(i).op, autophase_ir::Opcode::Load { .. }))
            .map(|&i| sched.start_state[&i])
            .collect();
        assert_eq!(load_states.len(), 3);
        assert!(
            load_states[2] > load_states[0],
            "third load must wait for a port: {load_states:?}"
        );
    }

    #[test]
    fn division_dominates_block_latency() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let d = b.binary(BinOp::SDiv, b.arg(0), b.arg(1));
        let w = b.binary(BinOp::Add, d, Value::i32(1));
        b.ret(Some(w));
        let f = b.finish();
        let s = schedule_block(&f, f.entry, &cfg());
        assert!(s.states >= cfg().div_latency, "states: {}", s.states);
    }

    #[test]
    fn phi_and_casts_are_free() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I64);
        let w = b.cast(autophase_ir::CastOp::SExt, Type::I64, b.arg(0));
        let x = b.cast(autophase_ir::CastOp::Trunc, Type::I32, w);
        let y = b.cast(autophase_ir::CastOp::ZExt, Type::I64, x);
        b.ret(Some(y));
        let f = b.finish();
        let s = schedule_block(&f, f.entry, &cfg());
        assert_eq!(s.states, 1);
    }

    #[test]
    fn slower_clock_allows_deeper_chaining() {
        // At 100 MHz (10ns) the 5-add chain fits one state.
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let mut v = b.arg(0);
        for i in 0..4 {
            v = b.binary(BinOp::Add, v, Value::i32(i));
        }
        b.ret(Some(v));
        let f = b.finish();
        let fast = schedule_block(&f, f.entry, &HlsConfig::default());
        let slow = schedule_block(&f, f.entry, &HlsConfig::at_frequency_mhz(100.0));
        assert!(slow.states <= fast.states);
        assert_eq!(slow.states, 1);
    }

    #[test]
    fn function_schedule_sums_blocks() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        b.counted_loop(b.arg(0), |_, _| {});
        b.ret(Some(Value::i32(0)));
        let f = b.finish();
        let fs = schedule_function(&f, &cfg());
        assert_eq!(
            fs.total_states,
            f.block_ids().map(|bb| fs.states(bb)).sum::<u32>()
        );
        assert!(fs.total_states >= f.num_blocks() as u32);
    }
}
