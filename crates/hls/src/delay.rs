//! The operation delay and latency model.
//!
//! Combinational delays are nanoseconds through the operator at a typical
//! FPGA speed grade; multi-cycle operations (loads from synchronous RAM,
//! iterative dividers, calls) are expressed in FSM states instead. The
//! numbers are calibrated so that 2–3 simple ALU ops chain into one 5 ns
//! state — the behaviour that makes operator chaining (and passes that
//! shorten dependence chains) matter.

use crate::HlsConfig;
use autophase_ir::{BinOp, Inst, Opcode, Value};

/// How an instruction occupies the schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Timing {
    /// Purely combinational: consumes `ns` of the state's period and can
    /// chain with neighbours.
    Chain {
        /// Propagation delay through the operator, in nanoseconds.
        ns: f64,
    },
    /// Occupies whole states; the result is available `states` states
    /// after the one it starts in.
    Multi {
        /// Number of FSM states the operation occupies.
        states: u32,
    },
    /// Free (wiring / register renaming): φ, casts, constants.
    Free,
}

/// Timing of one instruction under `cfg`.
pub fn timing(inst: &Inst, cfg: &HlsConfig) -> Timing {
    match &inst.op {
        Opcode::Binary(op, _, b) => match op {
            BinOp::Add | BinOp::Sub => Timing::Chain { ns: 2.0 },
            BinOp::Mul => Timing::Chain { ns: 3.4 },
            BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem => Timing::Multi {
                states: cfg.div_latency,
            },
            BinOp::And | BinOp::Or | BinOp::Xor => Timing::Chain { ns: 0.9 },
            BinOp::Shl | BinOp::LShr | BinOp::AShr => {
                if matches!(b, Value::ConstInt(..)) {
                    // Constant shifts are wiring.
                    Timing::Free
                } else {
                    Timing::Chain { ns: 1.8 }
                }
            }
        },
        Opcode::ICmp(..) => Timing::Chain { ns: 1.7 },
        Opcode::Select { .. } => Timing::Chain { ns: 1.2 },
        Opcode::Phi { .. } => Timing::Free,
        Opcode::Alloca { .. } => Timing::Free,
        Opcode::Load { .. } => Timing::Multi {
            states: cfg.load_latency,
        },
        Opcode::Store { .. } => Timing::Chain { ns: 1.0 },
        Opcode::Gep { .. } => Timing::Chain { ns: 1.6 },
        Opcode::Cast(..) => Timing::Free,
        // Calls transfer control to the callee FSM; the cycle cost of the
        // callee itself is added by the profiler from its own trace.
        Opcode::Call { .. } => Timing::Multi { states: 1 },
        // Terminators feed next-state logic.
        Opcode::Br { .. }
        | Opcode::CondBr { .. }
        | Opcode::Switch { .. }
        | Opcode::Ret { .. }
        | Opcode::Unreachable => Timing::Chain { ns: 0.5 },
    }
}

/// True if the instruction uses a memory port when it starts.
pub fn uses_memory_port(inst: &Inst) -> bool {
    matches!(inst.op, Opcode::Load { .. } | Opcode::Store { .. })
}

/// Relative area cost of one instruction's functional unit, in LUT-ish
/// units (used by the area model; shared here so the numbers stay next to
/// the delays they correspond to).
pub fn area_units(inst: &Inst) -> u32 {
    match &inst.op {
        Opcode::Binary(op, _, b) => match op {
            BinOp::Add | BinOp::Sub => 32,
            BinOp::Mul => 160,
            BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem => 400,
            BinOp::And | BinOp::Or | BinOp::Xor => 16,
            BinOp::Shl | BinOp::LShr | BinOp::AShr => {
                if matches!(b, Value::ConstInt(..)) {
                    0
                } else {
                    96
                }
            }
        },
        Opcode::ICmp(..) => 24,
        Opcode::Select { .. } => 16,
        Opcode::Gep { .. } => 32,
        Opcode::Load { .. } | Opcode::Store { .. } => 8,
        Opcode::Call { .. } => 8,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::{Inst, Type};

    fn cfg() -> HlsConfig {
        HlsConfig::default()
    }

    #[test]
    fn adds_chain_twice_per_state() {
        let add = Inst::new(
            Type::I32,
            Opcode::Binary(BinOp::Add, Value::Arg(0), Value::Arg(1)),
        );
        match timing(&add, &cfg()) {
            Timing::Chain { ns } => assert!(2.0 * ns <= cfg().clock_period_ns),
            _ => panic!("add should chain"),
        }
    }

    #[test]
    fn mul_fits_one_state_but_does_not_chain_with_itself() {
        let mul = Inst::new(
            Type::I32,
            Opcode::Binary(BinOp::Mul, Value::Arg(0), Value::Arg(1)),
        );
        match timing(&mul, &cfg()) {
            Timing::Chain { ns } => {
                assert!(ns <= cfg().clock_period_ns);
                assert!(2.0 * ns > cfg().clock_period_ns);
            }
            _ => panic!("mul should be single-cycle combinational"),
        }
    }

    #[test]
    fn div_is_multicycle() {
        let div = Inst::new(
            Type::I32,
            Opcode::Binary(BinOp::SDiv, Value::Arg(0), Value::Arg(1)),
        );
        assert_eq!(timing(&div, &cfg()), Timing::Multi { states: 12 });
    }

    #[test]
    fn constant_shift_free_variable_shift_not() {
        let cshift = Inst::new(
            Type::I32,
            Opcode::Binary(BinOp::Shl, Value::Arg(0), Value::i32(3)),
        );
        assert_eq!(timing(&cshift, &cfg()), Timing::Free);
        let vshift = Inst::new(
            Type::I32,
            Opcode::Binary(BinOp::Shl, Value::Arg(0), Value::Arg(1)),
        );
        assert!(matches!(timing(&vshift, &cfg()), Timing::Chain { .. }));
    }

    #[test]
    fn loads_take_states_and_a_port() {
        let load = Inst::new(Type::I32, Opcode::Load { ptr: Value::Arg(0) });
        assert_eq!(timing(&load, &cfg()), Timing::Multi { states: 1 });
        assert!(uses_memory_port(&load));
        let add = Inst::new(
            Type::I32,
            Opcode::Binary(BinOp::Add, Value::Arg(0), Value::Arg(1)),
        );
        assert!(!uses_memory_port(&add));
    }

    #[test]
    fn divider_dominates_area() {
        let div = Inst::new(
            Type::I32,
            Opcode::Binary(BinOp::SDiv, Value::Arg(0), Value::Arg(1)),
        );
        let add = Inst::new(
            Type::I32,
            Opcode::Binary(BinOp::Add, Value::Arg(0), Value::Arg(1)),
        );
        assert!(area_units(&div) > 10 * area_units(&add));
    }
}
