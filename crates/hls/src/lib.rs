//! A LegUp-style HLS backend for `autophase-ir`.
//!
//! This crate plays the role LegUp plays in the AutoPhase paper: it turns
//! the optimized IR into a hardware design and — crucially for the RL
//! loop — estimates the design's **clock cycle count** quickly, without
//! logic simulation, from a software trace (Huang et al., FCCM'13):
//!
//! 1. [`schedule`] maps every basic block to a sequence of FSM states
//!    under a clock-period constraint, chaining combinational operations
//!    until the period budget is exhausted (default 5 ns = 200 MHz, the
//!    paper's setting);
//! 2. [`autophase_ir::interp`] provides per-block execution counts;
//! 3. [`profile`] combines them: `cycles = Σ count(block) × states(block)
//!    + call overhead`.
//!
//! [`rtl`] emits a Verilog FSM+datapath sketch of the scheduled design and
//! [`area`] estimates resource usage (the paper's alternative optimization
//! objective).
//!
//! # Example
//!
//! ```
//! use autophase_ir::{builder::FunctionBuilder, Module, Type, BinOp, Value};
//! use autophase_hls::{HlsConfig, profile::profile_module};
//!
//! let mut m = Module::new("demo");
//! let mut b = FunctionBuilder::new("main", vec![], Type::I32);
//! let acc = b.alloca(Type::I32, 1);
//! b.store(acc, Value::i32(0));
//! b.counted_loop(Value::i32(10), |b, i| {
//!     let c = b.load(Type::I32, acc);
//!     let n = b.binary(BinOp::Add, c, i);
//!     b.store(acc, n);
//! });
//! let r = b.load(Type::I32, acc);
//! b.ret(Some(r));
//! m.add_function(b.finish());
//!
//! let report = profile_module(&m, &HlsConfig::default())?;
//! assert!(report.cycles > 0);
//! # Ok::<(), autophase_hls::HlsError>(())
//! ```
#![warn(missing_docs)]

pub mod area;
pub mod delay;
pub mod func_cache;
pub mod profile;
pub mod rtl;
pub mod schedule;

use serde::{Deserialize, Serialize};
use std::fmt;

/// HLS tool configuration (the paper fixes the frequency constraint to
/// 200 MHz, i.e. a 5 ns clock period).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HlsConfig {
    /// Target clock period in nanoseconds.
    pub clock_period_ns: f64,
    /// Memory operations that may start in the same FSM state (dual-port
    /// block RAM ⇒ 2).
    pub memory_ports: usize,
    /// Extra states a load occupies (synchronous RAM read latency).
    pub load_latency: u32,
    /// States an integer divide/remainder occupies (iterative divider).
    pub div_latency: u32,
    /// FSM states charged per function call for the start/finish
    /// handshake with the callee's FSM.
    pub call_overhead: u32,
    /// Interpreter instruction budget when profiling.
    pub profile_fuel: u64,
}

impl Default for HlsConfig {
    fn default() -> HlsConfig {
        HlsConfig {
            clock_period_ns: 5.0,
            memory_ports: 2,
            load_latency: 1,
            div_latency: 12,
            call_overhead: 1,
            profile_fuel: 40_000_000,
        }
    }
}

impl HlsConfig {
    /// Config for a target frequency in MHz.
    pub fn at_frequency_mhz(mhz: f64) -> HlsConfig {
        HlsConfig {
            clock_period_ns: 1000.0 / mhz,
            ..HlsConfig::default()
        }
    }

    /// The same config with a different profiling budget. Services that
    /// profile untrusted designs on a request deadline cap the interpreter
    /// fuel well below the experiment default, bounding the worst-case
    /// cost of one profile.
    pub fn with_profile_fuel(self, profile_fuel: u64) -> HlsConfig {
        HlsConfig {
            profile_fuel,
            ..self
        }
    }
}

/// Errors from HLS compilation or profiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HlsError {
    /// The design could not be profiled because execution failed.
    Exec(autophase_ir::interp::ExecError),
    /// The module has no `main` function to profile.
    NoMain,
}

impl fmt::Display for HlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlsError::Exec(e) => write!(f, "profiling execution failed: {e}"),
            HlsError::NoMain => write!(f, "module has no main function"),
        }
    }
}

impl std::error::Error for HlsError {}

impl From<autophase_ir::interp::ExecError> for HlsError {
    fn from(e: autophase_ir::interp::ExecError) -> HlsError {
        HlsError::Exec(e)
    }
}

pub use func_cache::{FuncEval, ScheduleCache};
pub use profile::{profile_module, profile_module_cached, HlsReport};
pub use schedule::{schedule_block, schedule_function, BlockSchedule, FunctionSchedule};

// The parallel rollout engine shares `HlsConfig` across worker threads and
// sends `HlsReport`s between them, so these types must stay `Send + Sync`
// (`profile_module` itself is a pure function of its arguments — it holds
// no global state). Compile-time assertions keep that contract from
// regressing silently.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<HlsConfig>();
    assert_send_sync::<HlsReport>();
    assert_send_sync::<HlsError>();
    assert_send_sync::<area::AreaReport>();
};
