//! Modules and global variables.

use crate::function::Function;
use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifies a function within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FuncId(u32);

impl FuncId {
    /// Construct from a raw index.
    pub fn from_index(i: usize) -> FuncId {
        FuncId(i as u32)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a global variable within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalId(u32);

impl GlobalId {
    /// Construct from a raw index.
    pub fn from_index(i: usize) -> GlobalId {
        GlobalId(i as u32)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A module-level array variable in the flat address space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Global {
    /// Name (unique within the module).
    pub name: String,
    /// Element type (integer).
    pub elem_ty: Type,
    /// Number of elements.
    pub count: u32,
    /// Initial element values (padded with zeros to `count`).
    pub init: Vec<i64>,
    /// Constant globals may be folded by `-globalopt`.
    pub is_const: bool,
}

impl Global {
    /// Create a zero-initialized mutable global array.
    pub fn zeroed(name: impl Into<String>, elem_ty: Type, count: u32) -> Global {
        Global {
            name: name.into(),
            elem_ty,
            count,
            init: Vec::new(),
            is_const: false,
        }
    }

    /// Create an initialized constant global array.
    pub fn constant(name: impl Into<String>, elem_ty: Type, init: Vec<i64>) -> Global {
        Global {
            name: name.into(),
            elem_ty,
            count: init.len() as u32,
            init,
            is_const: true,
        }
    }

    /// Initial value of element `i` (zero if not explicitly initialized).
    pub fn init_at(&self, i: usize) -> i64 {
        self.init.get(i).copied().unwrap_or(0)
    }
}

/// A translation unit: functions plus globals.
///
/// Functions live in a slot arena so `FuncId`s stay stable across removal
/// (e.g. by `-globaldce`).
///
/// Functions and globals are stored behind [`Arc`] with copy-on-write
/// mutation: `Module::clone` is O(#slots) pointer bumps, and
/// [`Module::func_mut`] only deep-copies a function when its `Arc` is
/// shared with another module (e.g. a transaction snapshot). Holding a
/// clone of the module while mutating the original therefore guarantees
/// every mutated slot gets a fresh allocation, which is what pointer-diff
/// change tracking (`functions_snapshot` + `Arc::ptr_eq`) relies on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name (for diagnostics).
    pub name: String,
    functions: Vec<Option<Arc<Function>>>,
    /// Global variables; ids are indices and are never reused.
    globals: Vec<Option<Arc<Global>>>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Add a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        self.functions.push(Some(Arc::new(f)));
        FuncId::from_index(self.functions.len() - 1)
    }

    /// Add a global, returning its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        self.globals.push(Some(Arc::new(g)));
        GlobalId::from_index(self.globals.len() - 1)
    }

    /// Access a function.
    ///
    /// # Panics
    ///
    /// Panics if the function was removed.
    pub fn func(&self, id: FuncId) -> &Function {
        self.functions[id.index()]
            .as_ref()
            .expect("removed function")
    }

    /// Mutable access to a function (clones-on-write if the slot is shared).
    ///
    /// # Panics
    ///
    /// Panics if the function was removed.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        Arc::make_mut(
            self.functions[id.index()]
                .as_mut()
                .expect("removed function"),
        )
    }

    /// True if the id refers to a live function.
    pub fn func_exists(&self, id: FuncId) -> bool {
        self.functions
            .get(id.index())
            .map(|f| f.is_some())
            .unwrap_or(false)
    }

    /// Remove a function (callers must already be gone or rewritten).
    pub fn remove_function(&mut self, id: FuncId) {
        self.functions[id.index()] = None;
    }

    /// Access a global.
    ///
    /// # Panics
    ///
    /// Panics if the global was removed.
    pub fn global(&self, id: GlobalId) -> &Global {
        self.globals[id.index()].as_ref().expect("removed global")
    }

    /// Mutable access to a global (clones-on-write if the slot is shared).
    ///
    /// # Panics
    ///
    /// Panics if the global was removed.
    pub fn global_mut(&mut self, id: GlobalId) -> &mut Global {
        Arc::make_mut(self.globals[id.index()].as_mut().expect("removed global"))
    }

    /// True if the id refers to a live global.
    pub fn global_exists(&self, id: GlobalId) -> bool {
        self.globals
            .get(id.index())
            .map(|g| g.is_some())
            .unwrap_or(false)
    }

    /// Remove a global (uses must already be gone).
    pub fn remove_global(&mut self, id: GlobalId) {
        self.globals[id.index()] = None;
    }

    /// Iterate over live function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        self.functions
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|_| FuncId::from_index(i)))
    }

    /// Iterate over live global ids.
    pub fn global_ids(&self) -> impl Iterator<Item = GlobalId> + '_ {
        self.globals
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|_| GlobalId::from_index(i)))
    }

    /// Find a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.func_ids().find(|&id| self.func(id).name == name)
    }

    /// The `main` function, where execution starts.
    pub fn main(&self) -> Option<FuncId> {
        self.func_by_name("main")
    }

    /// Number of live functions.
    pub fn num_functions(&self) -> usize {
        self.functions.iter().filter(|f| f.is_some()).count()
    }

    /// Total live instructions across all functions.
    pub fn num_insts(&self) -> usize {
        self.func_ids().map(|id| self.func(id).num_insts()).sum()
    }

    /// Total live basic blocks across all functions.
    pub fn num_blocks(&self) -> usize {
        self.func_ids().map(|id| self.func(id).num_blocks()).sum()
    }

    /// Upper bound (exclusive) of function arena indices, for dense maps.
    pub fn func_capacity(&self) -> usize {
        self.functions.len()
    }

    /// Upper bound (exclusive) of global arena indices, for dense maps.
    pub fn global_capacity(&self) -> usize {
        self.globals.len()
    }

    /// The shared handle backing a live function slot, or `None` if the slot
    /// is empty. Used with [`Module::functions_snapshot`] and `Arc::ptr_eq`
    /// for pointer-diff change tracking.
    pub fn func_arc(&self, id: FuncId) -> Option<&Arc<Function>> {
        self.functions.get(id.index()).and_then(|f| f.as_ref())
    }

    /// The shared handle backing a live global slot, or `None`.
    pub fn global_arc(&self, id: GlobalId) -> Option<&Arc<Global>> {
        self.globals.get(id.index()).and_then(|g| g.as_ref())
    }

    /// Snapshot the function arena as shared handles (O(#slots) refcount
    /// bumps). While the snapshot is alive, every `func_mut` on `self`
    /// re-allocates the touched slot, so `Arc::ptr_eq` against the snapshot
    /// detects exactly the slots a pass wrote to.
    pub fn functions_snapshot(&self) -> Vec<Option<Arc<Function>>> {
        self.functions.clone()
    }

    /// Snapshot the global arena as shared handles (O(#slots)).
    pub fn globals_snapshot(&self) -> Vec<Option<Arc<Global>>> {
        self.globals.clone()
    }

    /// A clone with every function and global deep-copied into unique
    /// allocations — the pre-COW clone semantics. Only useful for tests that
    /// need to rule out accidental sharing; production code should use
    /// `clone()`.
    pub fn deep_clone(&self) -> Module {
        Module {
            name: self.name.clone(),
            functions: self
                .functions
                .iter()
                .map(|f| f.as_ref().map(|f| Arc::new(Function::clone(f))))
                .collect(),
            globals: self
                .globals
                .iter()
                .map(|g| g.as_ref().map(|g| Arc::new(Global::clone(g))))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn add_and_find_functions() {
        let mut m = Module::new("m");
        let f = m.add_function(Function::new("main", vec![], Type::I32));
        let g = m.add_function(Function::new("helper", vec![Type::I32], Type::I32));
        assert_eq!(m.main(), Some(f));
        assert_eq!(m.func_by_name("helper"), Some(g));
        assert_eq!(m.num_functions(), 2);
    }

    #[test]
    fn remove_function_keeps_ids_stable() {
        let mut m = Module::new("m");
        let f = m.add_function(Function::new("a", vec![], Type::Void));
        let g = m.add_function(Function::new("b", vec![], Type::Void));
        m.remove_function(f);
        assert!(!m.func_exists(f));
        assert!(m.func_exists(g));
        assert_eq!(m.func(g).name, "b");
    }

    #[test]
    fn clone_shares_function_storage() {
        let mut m = Module::new("m");
        let a = m.add_function(Function::new("a", vec![], Type::Void));
        let b = m.add_function(Function::new("b", vec![], Type::Void));
        let snap = m.functions_snapshot();
        let clone = m.clone();
        assert!(Arc::ptr_eq(
            m.func_arc(a).unwrap(),
            clone.func_arc(a).unwrap()
        ));
        // Mutating one slot re-allocates only that slot.
        m.func_mut(a).name = "a2".to_string();
        assert!(!Arc::ptr_eq(
            m.func_arc(a).unwrap(),
            snap[a.index()].as_ref().unwrap()
        ));
        assert!(Arc::ptr_eq(
            m.func_arc(b).unwrap(),
            snap[b.index()].as_ref().unwrap()
        ));
        // The clone kept the original contents.
        assert_eq!(clone.func(a).name, "a");
        assert_eq!(m.func(a).name, "a2");
    }

    #[test]
    fn func_mut_without_sharing_keeps_pointer() {
        let mut m = Module::new("m");
        let a = m.add_function(Function::new("a", vec![], Type::Void));
        let before = Arc::as_ptr(m.func_arc(a).unwrap());
        m.func_mut(a).name = "a2".to_string();
        // Uniquely owned: make_mut mutates in place, no allocation.
        assert_eq!(before, Arc::as_ptr(m.func_arc(a).unwrap()));
    }

    #[test]
    fn deep_clone_shares_nothing() {
        let mut m = Module::new("m");
        let a = m.add_function(Function::new("a", vec![], Type::Void));
        let g = m.add_global(Global::zeroed("buf", Type::I8, 4));
        let deep = m.deep_clone();
        assert!(!Arc::ptr_eq(
            m.func_arc(a).unwrap(),
            deep.func_arc(a).unwrap()
        ));
        assert!(!Arc::ptr_eq(
            m.global_arc(g).unwrap(),
            deep.global_arc(g).unwrap()
        ));
        assert_eq!(m, deep);
    }

    #[test]
    fn global_mut_clones_on_write() {
        let mut m = Module::new("m");
        let g = m.add_global(Global::zeroed("buf", Type::I8, 4));
        let clone = m.clone();
        m.global_mut(g).count = 8;
        assert_eq!(clone.global(g).count, 4);
        assert_eq!(m.global(g).count, 8);
    }

    #[test]
    fn globals() {
        let mut m = Module::new("m");
        let g = m.add_global(Global::constant("tbl", Type::I32, vec![1, 2, 3]));
        assert_eq!(m.global(g).count, 3);
        assert_eq!(m.global(g).init_at(1), 2);
        assert_eq!(m.global(g).init_at(10), 0);
        let z = m.add_global(Global::zeroed("buf", Type::I8, 16));
        assert!(!m.global(z).is_const);
        assert_eq!(m.global_ids().count(), 2);
    }
}
