//! SSA values: instruction results, arguments, constants, and globals.

use crate::function::InstId;
use crate::module::GlobalId;
use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An operand of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// Result of an instruction in the same function.
    Inst(InstId),
    /// Function argument by index.
    Arg(u32),
    /// Integer constant of the given type (stored sign-extended).
    ConstInt(Type, i64),
    /// Address of a global variable.
    Global(GlobalId),
    /// An unspecified value of the given type (reads as zero).
    Undef(Type),
}

impl Value {
    /// Integer constant `true` (`i1 1`).
    pub const TRUE: Value = Value::ConstInt(Type::I1, -1);
    /// Integer constant `false` (`i1 0`).
    pub const FALSE: Value = Value::ConstInt(Type::I1, 0);

    /// Build an `i32` constant.
    pub fn i32(v: i32) -> Value {
        Value::ConstInt(Type::I32, v as i64)
    }

    /// Build an `i64` constant.
    pub fn i64(v: i64) -> Value {
        Value::ConstInt(Type::I64, v)
    }

    /// Build an `i1` constant from a bool.
    pub fn bool(v: bool) -> Value {
        if v {
            Value::TRUE
        } else {
            Value::FALSE
        }
    }

    /// Build an integer constant of `ty`, wrapped to the type's range.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not an integer type.
    pub fn const_int(ty: Type, v: i64) -> Value {
        Value::ConstInt(ty, ty.wrap(v))
    }

    /// The constant integer payload, if this is a `ConstInt`.
    pub fn as_const_int(self) -> Option<i64> {
        match self {
            Value::ConstInt(_, v) => Some(v),
            _ => None,
        }
    }

    /// True if this is any constant (including `Undef` and globals' addresses).
    pub fn is_const(self) -> bool {
        matches!(
            self,
            Value::ConstInt(..) | Value::Global(_) | Value::Undef(_)
        )
    }

    /// True if this value is the integer constant zero.
    pub fn is_zero(self) -> bool {
        matches!(self, Value::ConstInt(_, 0))
    }

    /// True if this value is an all-ones / `true` / `1`-like constant for
    /// its type (sign-extended representation `-1`, or `1` for wider ints).
    pub fn is_one(self) -> bool {
        match self {
            Value::ConstInt(Type::I1, v) => v != 0,
            Value::ConstInt(_, 1) => true,
            _ => false,
        }
    }

    /// The instruction id, if this is an instruction result.
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            Value::Inst(id) => Some(id),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Inst(id) => write!(f, "%{}", id.index()),
            Value::Arg(i) => write!(f, "%arg{i}"),
            Value::ConstInt(ty, v) => write!(f, "{ty} {v}"),
            Value::Global(g) => write!(f, "@g{}", g.index()),
            Value::Undef(ty) => write!(f, "{ty} undef"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_int_wraps() {
        assert_eq!(
            Value::const_int(Type::I8, 300),
            Value::ConstInt(Type::I8, 44)
        );
        assert_eq!(
            Value::const_int(Type::I8, 255),
            Value::ConstInt(Type::I8, -1)
        );
    }

    #[test]
    fn bool_consts() {
        assert!(Value::bool(true).is_one());
        assert!(Value::bool(false).is_zero());
        assert_eq!(Value::TRUE.as_const_int(), Some(-1));
    }

    #[test]
    fn predicates() {
        assert!(Value::i32(0).is_zero());
        assert!(Value::i32(1).is_one());
        assert!(!Value::i32(2).is_one());
        assert!(Value::i64(7).is_const());
        assert!(!Value::Arg(0).is_const());
        assert!(Value::Undef(Type::I32).is_const());
    }

    #[test]
    fn display() {
        assert_eq!(Value::i32(42).to_string(), "i32 42");
        assert_eq!(Value::Arg(1).to_string(), "%arg1");
    }
}
