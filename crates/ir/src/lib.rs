//! A compact, typed, SSA-style compiler intermediate representation.
//!
//! This crate is the substrate for the AutoPhase reproduction: it plays the
//! role LLVM IR plays in the paper. It provides:
//!
//! * a module / function / basic-block / instruction hierarchy with integer
//!   scalar types ([`Type`]), arena-allocated instructions and explicit
//!   control flow ([`Inst`], [`Block`], [`Function`], [`Module`]);
//! * a convenient [`builder::FunctionBuilder`] for constructing programs;
//! * CFG analyses: predecessors/successors and reverse post-order
//!   ([`cfg`](mod@cfg)), dominator trees ([`dom`]), and natural-loop detection
//!   ([`loops`]);
//! * a structural [`verify`]-er used as the big invariant in property tests;
//! * a deterministic, total-semantics tracing interpreter ([`interp`]) that
//!   records basic-block execution counts — the "software trace" the HLS
//!   cycle profiler consumes;
//! * constant folding helpers ([`fold`]) shared by the optimization passes.
//!
//! # Semantics
//!
//! All integer arithmetic wraps. Division or remainder by zero yields zero.
//! Shift amounts are masked to the bit width. Loads from out-of-bounds
//! addresses yield zero; out-of-bounds stores are ignored. These choices make
//! every program total and deterministic, so "optimization preserves the
//! interpreter's observable result" is a testable invariant rather than a
//! statement about undefined behaviour.
//!
//! # Example
//!
//! ```
//! use autophase_ir::{builder::FunctionBuilder, Module, Type, BinOp};
//!
//! let mut module = Module::new("demo");
//! let mut b = FunctionBuilder::new("main", vec![], Type::I32);
//! let entry = b.entry_block();
//! b.switch_to(entry);
//! let two = b.const_i32(2);
//! let three = b.const_i32(3);
//! let sum = b.binary(BinOp::Add, two, three);
//! b.ret(Some(sum));
//! module.add_function(b.finish());
//!
//! let trace = autophase_ir::interp::run_main(&module, 1_000_000)?;
//! assert_eq!(trace.return_value, Some(5));
//! # Ok::<(), autophase_ir::interp::ExecError>(())
//! ```
#![warn(missing_docs)]

pub mod builder;
pub mod cfg;
pub mod dom;
pub mod fingerprint;
pub mod fold;
pub mod function;
pub mod inst;
pub mod interp;
pub mod loops;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod value;
pub mod verify;

pub use function::{Block, BlockId, Function, InstId};
pub use inst::{BinOp, CastOp, CmpPred, Inst, Opcode};
pub use module::{FuncId, Global, GlobalId, Module};
pub use types::Type;
pub use value::Value;
