//! Constant evaluation shared by the interpreter and the optimizer.
//!
//! Both must agree on semantics exactly, or "passes preserve behaviour"
//! would fail. All operations are total: wrap-around arithmetic, `x/0 == 0`,
//! `x%0 == 0`, shift amounts masked to the bit width.

use crate::inst::{BinOp, CastOp, CmpPred};
use crate::types::Type;
use crate::value::Value;

/// Evaluate `a op b` at type `ty`. Total (never panics on any input).
pub fn eval_binop(op: BinOp, ty: Type, a: i64, b: i64) -> i64 {
    let bits = ty.bits();
    let mask = (bits - 1) as i64;
    let r = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::SDiv => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::UDiv => {
            let (ua, ub) = (ty.zext(a) as u64, ty.zext(b) as u64);
            ua.checked_div(ub).unwrap_or(0) as i64
        }
        BinOp::SRem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::URem => {
            let (ua, ub) = (ty.zext(a) as u64, ty.zext(b) as u64);
            ua.checked_rem(ub).unwrap_or(0) as i64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & mask) as u32),
        BinOp::LShr => ((ty.zext(a) as u64) >> ((b & mask) as u32)) as i64,
        BinOp::AShr => a.wrapping_shr((b & mask) as u32),
    };
    ty.wrap(r)
}

/// Evaluate `a pred b` at type `ty`; returns the `i1` result as 0 / -1.
pub fn eval_icmp(pred: CmpPred, ty: Type, a: i64, b: i64) -> i64 {
    let (ua, ub) = (ty.zext(a) as u64, ty.zext(b) as u64);
    let r = match pred {
        CmpPred::Eq => a == b,
        CmpPred::Ne => a != b,
        CmpPred::Slt => a < b,
        CmpPred::Sle => a <= b,
        CmpPred::Sgt => a > b,
        CmpPred::Sge => a >= b,
        CmpPred::Ult => ua < ub,
        CmpPred::Ule => ua <= ub,
        CmpPred::Ugt => ua > ub,
        CmpPred::Uge => ua >= ub,
    };
    if r {
        Type::I1.wrap(1)
    } else {
        0
    }
}

/// Evaluate a cast of `v` from `from` to `to`.
pub fn eval_cast(op: CastOp, from: Type, to: Type, v: i64) -> i64 {
    match op {
        CastOp::Trunc => to.wrap(v),
        CastOp::ZExt => {
            // zext reads the source bits unsigned, then stores sign-extended
            // at the destination width (a no-op unless dest is narrower,
            // which the verifier forbids).
            to.wrap(from.zext(v))
        }
        CastOp::SExt => to.wrap(v),
        CastOp::BitCast => v,
    }
}

/// Try to fold a binary op over constant operands.
pub fn fold_binop(op: BinOp, ty: Type, a: Value, b: Value) -> Option<Value> {
    match (a, b) {
        (Value::ConstInt(_, x), Value::ConstInt(_, y)) => {
            Some(Value::ConstInt(ty, eval_binop(op, ty, x, y)))
        }
        _ => None,
    }
}

/// Try to fold a comparison over constant operands.
pub fn fold_icmp(pred: CmpPred, a: Value, b: Value) -> Option<Value> {
    match (a, b) {
        (Value::ConstInt(ty, x), Value::ConstInt(_, y)) => {
            Some(Value::ConstInt(Type::I1, eval_icmp(pred, ty, x, y)))
        }
        _ => None,
    }
}

/// Try to fold a cast of a constant.
pub fn fold_cast(op: CastOp, to: Type, v: Value) -> Option<Value> {
    match v {
        Value::ConstInt(from, x) => Some(Value::ConstInt(to, eval_cast(op, from, to, x))),
        Value::Undef(_) => Some(Value::Undef(to)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_add() {
        assert_eq!(eval_binop(BinOp::Add, Type::I8, 127, 1), -128);
        assert_eq!(
            eval_binop(BinOp::Add, Type::I32, i32::MAX as i64, 1),
            i32::MIN as i64
        );
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(eval_binop(BinOp::SDiv, Type::I32, 5, 0), 0);
        assert_eq!(eval_binop(BinOp::UDiv, Type::I32, 5, 0), 0);
        assert_eq!(eval_binop(BinOp::SRem, Type::I32, 5, 0), 0);
        assert_eq!(eval_binop(BinOp::URem, Type::I32, 5, 0), 0);
    }

    #[test]
    fn sdiv_min_by_minus_one_wraps() {
        // i32::MIN / -1 overflows; wrapping semantics give i32::MIN back.
        assert_eq!(
            eval_binop(BinOp::SDiv, Type::I32, i32::MIN as i64, -1),
            i32::MIN as i64
        );
    }

    #[test]
    fn unsigned_ops_use_zext() {
        // -1 as u8 is 255; 255 / 2 = 127
        assert_eq!(eval_binop(BinOp::UDiv, Type::I8, -1, 2), 127);
        assert_eq!(eval_binop(BinOp::LShr, Type::I8, -1, 1), 127);
        assert_eq!(eval_binop(BinOp::AShr, Type::I8, -1, 1), -1);
    }

    #[test]
    fn shift_masking() {
        // shift by 33 at i32 is shift by 1
        assert_eq!(eval_binop(BinOp::Shl, Type::I32, 1, 33), 2);
        assert_eq!(eval_binop(BinOp::Shl, Type::I64, 1, 64), 1);
    }

    #[test]
    fn icmp_signed_vs_unsigned() {
        assert_ne!(eval_icmp(CmpPred::Slt, Type::I32, -1, 0), 0);
        assert_eq!(eval_icmp(CmpPred::Ult, Type::I32, -1, 0), 0);
        assert_ne!(eval_icmp(CmpPred::Ugt, Type::I32, -1, 0), 0);
    }

    #[test]
    fn casts() {
        assert_eq!(eval_cast(CastOp::Trunc, Type::I32, Type::I8, 257), 1);
        assert_eq!(eval_cast(CastOp::ZExt, Type::I8, Type::I32, -1), 255);
        assert_eq!(eval_cast(CastOp::SExt, Type::I8, Type::I32, -1), -1);
        assert_eq!(eval_cast(CastOp::BitCast, Type::I64, Type::I64, -7), -7);
    }

    #[test]
    fn fold_helpers() {
        assert_eq!(
            fold_binop(BinOp::Mul, Type::I32, Value::i32(6), Value::i32(7)),
            Some(Value::i32(42))
        );
        assert_eq!(
            fold_binop(BinOp::Mul, Type::I32, Value::Arg(0), Value::i32(7)),
            None
        );
        assert_eq!(
            fold_icmp(CmpPred::Eq, Value::i32(1), Value::i32(1)),
            Some(Value::TRUE)
        );
        assert_eq!(
            fold_cast(CastOp::Trunc, Type::I8, Value::i32(300)),
            Some(Value::ConstInt(Type::I8, 44))
        );
    }

    #[test]
    fn i1_arithmetic() {
        // true + true at i1 wraps to 0
        assert_eq!(eval_binop(BinOp::Add, Type::I1, -1, -1), 0);
        assert_eq!(eval_binop(BinOp::And, Type::I1, -1, 0), 0);
    }
}
