//! Functions, basic blocks, and the instruction arena.

use crate::inst::{Inst, Opcode};
use crate::types::Type;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Identifies an instruction within its function's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstId(u32);

impl InstId {
    /// Construct from a raw arena index.
    pub fn from_index(i: usize) -> InstId {
        InstId(i as u32)
    }

    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a basic block within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(u32);

impl BlockId {
    /// Construct from a raw index.
    pub fn from_index(i: usize) -> BlockId {
        BlockId(i as u32)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A basic block: a straight-line instruction list ending in a terminator.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Instructions in execution order; the last one is the terminator once
    /// the block is complete.
    pub insts: Vec<InstId>,
}

/// Function-level attributes inferred by interprocedural passes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuncAttrs {
    /// The function never writes memory visible to callers.
    pub readonly: bool,
    /// The function neither reads nor writes caller-visible memory.
    pub readnone: bool,
    /// The function is only referenced within this module and may be
    /// removed if unused (set for everything except `main` by default).
    pub internal: bool,
    /// Inlining hint set by `-inline` cost analysis.
    pub always_inline: bool,
    /// Marks functions the partial inliner has outlined from.
    pub outlined: bool,
}

/// A function: parameter types, return type, blocks, and an instruction arena.
///
/// Instructions live in a slot arena (`Vec<Option<Inst>>`); removing an
/// instruction leaves a tombstone so `InstId`s stay stable. Blocks likewise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name (unique within a module).
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type (`Void` for none).
    pub ret_ty: Type,
    /// Block arena; `None` entries are removed blocks.
    blocks: Vec<Option<Block>>,
    /// Instruction arena; `None` entries are removed instructions.
    insts: Vec<Option<Inst>>,
    /// The entry block.
    pub entry: BlockId,
    /// Inferred attributes.
    pub attrs: FuncAttrs,
}

impl Function {
    /// Create a function with a single empty entry block.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret_ty: Type) -> Function {
        Function {
            name: name.into(),
            params,
            ret_ty,
            blocks: vec![Some(Block::default())],
            insts: Vec::new(),
            entry: BlockId::from_index(0),
            attrs: FuncAttrs::default(),
        }
    }

    // ---- blocks ----

    /// Append a new empty block, returning its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Some(Block::default()));
        BlockId::from_index(self.blocks.len() - 1)
    }

    /// Access a block.
    ///
    /// # Panics
    ///
    /// Panics if the block was removed.
    pub fn block(&self, id: BlockId) -> &Block {
        self.blocks[id.index()].as_ref().expect("removed block")
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if the block was removed.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        self.blocks[id.index()].as_mut().expect("removed block")
    }

    /// True if the block id refers to a live (not removed) block.
    pub fn block_exists(&self, id: BlockId) -> bool {
        self.blocks
            .get(id.index())
            .map(|b| b.is_some())
            .unwrap_or(false)
    }

    /// Remove a block and all instructions in it.
    ///
    /// The caller is responsible for first removing CFG edges and φ-node
    /// incoming entries that reference it.
    pub fn remove_block(&mut self, id: BlockId) {
        if let Some(block) = self.blocks[id.index()].take() {
            for inst in block.insts {
                self.insts[inst.index()] = None;
            }
        }
    }

    /// Iterate over live block ids in arena order (entry first).
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.as_ref().map(|_| BlockId::from_index(i)))
    }

    /// Number of live blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
    }

    // ---- instructions ----

    /// Add an instruction to the arena without placing it in a block.
    pub fn add_inst(&mut self, inst: Inst) -> InstId {
        self.insts.push(Some(inst));
        InstId::from_index(self.insts.len() - 1)
    }

    /// Add an instruction and append it to `bb`.
    pub fn append_inst(&mut self, bb: BlockId, inst: Inst) -> InstId {
        let id = self.add_inst(inst);
        self.block_mut(bb).insts.push(id);
        id
    }

    /// Add an instruction and insert it at `pos` within `bb`.
    pub fn insert_inst(&mut self, bb: BlockId, pos: usize, inst: Inst) -> InstId {
        let id = self.add_inst(inst);
        self.block_mut(bb).insts.insert(pos, id);
        id
    }

    /// Access an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the instruction was removed.
    pub fn inst(&self, id: InstId) -> &Inst {
        self.insts[id.index()].as_ref().expect("removed inst")
    }

    /// Mutable access to an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the instruction was removed.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        self.insts[id.index()].as_mut().expect("removed inst")
    }

    /// True if the id refers to a live instruction.
    pub fn inst_exists(&self, id: InstId) -> bool {
        self.insts
            .get(id.index())
            .map(|i| i.is_some())
            .unwrap_or(false)
    }

    /// Remove an instruction from its block's list and the arena.
    ///
    /// The caller must ensure its result has no remaining uses.
    pub fn remove_inst(&mut self, bb: BlockId, id: InstId) {
        let block = self.block_mut(bb);
        block.insts.retain(|&i| i != id);
        self.insts[id.index()] = None;
    }

    /// Remove an instruction from the arena only (when its block is gone or
    /// the list was already edited).
    pub fn erase_inst(&mut self, id: InstId) {
        self.insts[id.index()] = None;
    }

    /// Total number of live instructions.
    pub fn num_insts(&self) -> usize {
        self.insts.iter().filter(|i| i.is_some()).count()
    }

    /// Iterate `(InstId, &Inst)` over the instructions of `bb` in order.
    pub fn insts_in(&self, bb: BlockId) -> impl Iterator<Item = (InstId, &Inst)> + '_ {
        self.block(bb)
            .insts
            .iter()
            .map(move |&id| (id, self.inst(id)))
    }

    /// The terminator of `bb`, if the block is complete.
    pub fn terminator(&self, bb: BlockId) -> Option<InstId> {
        let last = *self.block(bb).insts.last()?;
        if self.inst(last).is_terminator() {
            Some(last)
        } else {
            None
        }
    }

    /// Successor blocks of `bb` (empty if the block has no terminator).
    pub fn successors(&self, bb: BlockId) -> Vec<BlockId> {
        match self.terminator(bb) {
            Some(t) => self.inst(t).successors(),
            None => Vec::new(),
        }
    }

    // ---- whole-function edits ----

    /// Replace every use of `from` with `to` across all instructions.
    /// Returns the number of operands replaced.
    pub fn replace_all_uses(&mut self, from: Value, to: Value) -> usize {
        let mut n = 0;
        for inst in self.insts.iter_mut().flatten() {
            n += inst.replace_uses(from, to);
        }
        n
    }

    /// Count the uses of a value across all live instructions.
    pub fn count_uses(&self, value: Value) -> usize {
        let mut n = 0;
        for inst in self.insts.iter().flatten() {
            inst.for_each_operand(|v| {
                if v == value {
                    n += 1;
                }
            });
        }
        n
    }

    /// Collect `(user_inst, block)` pairs that use `value`.
    pub fn users(&self, value: Value) -> Vec<(InstId, BlockId)> {
        let mut out = Vec::new();
        for bb in self.block_ids().collect::<Vec<_>>() {
            for &iid in &self.block(bb).insts {
                let mut used = false;
                self.inst(iid).for_each_operand(|v| used |= v == value);
                if used {
                    out.push((iid, bb));
                }
            }
        }
        out
    }

    /// Find the block containing instruction `id`, if it is placed.
    pub fn block_of(&self, id: InstId) -> Option<BlockId> {
        self.block_ids()
            .find(|&bb| self.block(bb).insts.contains(&id))
    }

    /// Update every φ-node in `bb` that has an incoming entry from
    /// `old_pred` to come from `new_pred` instead.
    pub fn retarget_phis(&mut self, bb: BlockId, old_pred: BlockId, new_pred: BlockId) {
        let ids: Vec<InstId> = self.block(bb).insts.clone();
        for id in ids {
            if let Opcode::Phi { incoming } = &mut self.inst_mut(id).op {
                for (pred, _) in incoming.iter_mut() {
                    if *pred == old_pred {
                        *pred = new_pred;
                    }
                }
            }
        }
    }

    /// Remove φ-node incoming entries from `pred` in `bb`.
    pub fn remove_phi_edge(&mut self, bb: BlockId, pred: BlockId) {
        let ids: Vec<InstId> = self.block(bb).insts.clone();
        for id in ids {
            if let Opcode::Phi { incoming } = &mut self.inst_mut(id).op {
                incoming.retain(|(p, _)| *p != pred);
            }
        }
    }

    /// Upper bound (exclusive) of instruction arena indices, for dense maps.
    pub fn inst_capacity(&self) -> usize {
        self.insts.len()
    }

    /// Upper bound (exclusive) of block arena indices, for dense maps.
    pub fn block_capacity(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;

    fn add_fn() -> Function {
        let mut f = Function::new("add2", vec![Type::I32, Type::I32], Type::I32);
        let entry = f.entry;
        let sum = f.append_inst(
            entry,
            Inst::new(
                Type::I32,
                Opcode::Binary(BinOp::Add, Value::Arg(0), Value::Arg(1)),
            ),
        );
        f.append_inst(
            entry,
            Inst::new(
                Type::Void,
                Opcode::Ret {
                    value: Some(Value::Inst(sum)),
                },
            ),
        );
        f
    }

    #[test]
    fn build_and_query() {
        let f = add_fn();
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.num_insts(), 2);
        let term = f.terminator(f.entry).unwrap();
        assert!(f.inst(term).is_terminator());
        assert!(f.successors(f.entry).is_empty());
    }

    #[test]
    fn replace_all_uses_rewrites_operands() {
        let mut f = add_fn();
        let n = f.replace_all_uses(Value::Arg(0), Value::i32(7));
        assert_eq!(n, 1);
        assert_eq!(f.count_uses(Value::Arg(0)), 0);
        assert_eq!(f.count_uses(Value::i32(7)), 1);
    }

    #[test]
    fn remove_inst_leaves_tombstone() {
        let mut f = add_fn();
        let entry = f.entry;
        let first = f.block(entry).insts[0];
        f.remove_inst(entry, first);
        assert!(!f.inst_exists(first));
        assert_eq!(f.num_insts(), 1);
        // Arena capacity unchanged: ids remain stable.
        assert_eq!(f.inst_capacity(), 2);
    }

    #[test]
    fn remove_block_erases_contents() {
        let mut f = add_fn();
        let bb = f.add_block();
        let id = f.append_inst(bb, Inst::new(Type::Void, Opcode::Unreachable));
        f.remove_block(bb);
        assert!(!f.block_exists(bb));
        assert!(!f.inst_exists(id));
    }

    #[test]
    fn users_and_block_of() {
        let f = add_fn();
        let entry = f.entry;
        let first = f.block(entry).insts[0];
        let users = f.users(Value::Inst(first));
        assert_eq!(users.len(), 1);
        assert_eq!(f.block_of(first), Some(entry));
    }

    #[test]
    fn phi_edge_edits() {
        let mut f = Function::new("g", vec![], Type::I32);
        let entry = f.entry;
        let b1 = f.add_block();
        let b2 = f.add_block();
        let join = f.add_block();
        let phi = f.append_inst(
            join,
            Inst::new(
                Type::I32,
                Opcode::Phi {
                    incoming: vec![(b1, Value::i32(1)), (b2, Value::i32(2))],
                },
            ),
        );
        let _ = entry;
        f.retarget_phis(join, b1, entry);
        if let Opcode::Phi { incoming } = &f.inst(phi).op {
            assert_eq!(incoming[0].0, entry);
        }
        f.remove_phi_edge(join, b2);
        if let Opcode::Phi { incoming } = &f.inst(phi).op {
            assert_eq!(incoming.len(), 1);
        }
    }
}
