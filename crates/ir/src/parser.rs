//! Textual IR parser — the inverse of [`crate::printer::print_module`].
//!
//! The serve layer accepts modules over the wire in the printed textual
//! form, so this parser is written to be total on untrusted input: every
//! malformed construct becomes a [`ParseError`] (never a panic), arena
//! indices are capped ([`MAX_INDEX`]), and the total arena capacity
//! reconstructed across all functions shares one module-wide budget
//! ([`MAX_MODULE_SLOTS`]) so hostile text cannot force huge allocations —
//! neither with one giant index nor with many functions each claiming a
//! large sparse arena.
//!
//! # Fidelity
//!
//! `parse_module(print_module(m))` reconstructs a module whose printed form
//! is byte-identical to the input, which also makes its function
//! fingerprints identical (they hash the printed text). Arena slots of
//! *printed* entities (globals, functions via the `; f<slot>` comments,
//! blocks via their labels, value-producing instructions via `%<id>`) are
//! preserved exactly, including tombstones between them. Void instructions
//! (stores, branches, returns) carry no printed id, so they are re-assigned
//! fresh arena slots above the highest printed id; nothing observes those
//! slots — the printer never shows them and fingerprints hash text.
//!
//! Parsing is purely syntactic: semantic well-formedness (terminators,
//! SSA dominance, call arity) is the job of [`crate::verify::verify_module`],
//! which is total on any module this parser produces.

use crate::function::{BlockId, Function, InstId};
use crate::inst::{BinOp, CastOp, CmpPred, Inst, Opcode};
use crate::module::{FuncId, Global, GlobalId, Module};
use crate::types::Type;
use crate::value::Value;
use std::fmt;

/// Upper bound on any arena index appearing in the text (instruction ids,
/// block labels, global/function slots) and on global element counts.
/// Real modules sit far below this; the cap exists so a one-line hostile
/// request cannot make the parser allocate gigabytes of tombstones.
pub const MAX_INDEX: usize = 1 << 20;

/// Module-wide cap on the total number of function arena slots (live
/// entities plus tombstones) the parser will reconstruct, summed across
/// every function's block and instruction arenas. [`MAX_INDEX`] bounds
/// each *individual* index, but each function claims its own arenas — so
/// without a shared budget, a module of many one-line functions each
/// labeled `b1048575` would allocate `MAX_INDEX` slots *per function*,
/// amplifying a few hundred bytes of hostile text into tens of millions
/// of slots. Real printed modules use at most a handful of slots per line
/// of text, so legitimate input never gets near this.
pub const MAX_MODULE_SLOTS: usize = MAX_INDEX;

/// A syntax error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number the error was detected on.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

fn parse_index(line: usize, s: &str, what: &str) -> Result<usize, ParseError> {
    match s.parse::<usize>() {
        Ok(n) if n <= MAX_INDEX => Ok(n),
        Ok(_) => err(line, format!("{what} index {s} exceeds limit")),
        Err(_) => err(line, format!("invalid {what} index `{s}`")),
    }
}

fn parse_ty(line: usize, s: &str) -> Result<Type, ParseError> {
    match s {
        "void" => Ok(Type::Void),
        "i1" => Ok(Type::I1),
        "i8" => Ok(Type::I8),
        "i16" => Ok(Type::I16),
        "i32" => Ok(Type::I32),
        "i64" => Ok(Type::I64),
        "ptr" => Ok(Type::Ptr),
        _ => err(line, format!("unknown type `{s}`")),
    }
}

fn parse_value(line: usize, s: &str) -> Result<Value, ParseError> {
    if let Some(rest) = s.strip_prefix("%arg") {
        let i = parse_index(line, rest, "argument")?;
        return Ok(Value::Arg(i as u32));
    }
    if let Some(rest) = s.strip_prefix('%') {
        let i = parse_index(line, rest, "instruction")?;
        return Ok(Value::Inst(InstId::from_index(i)));
    }
    if let Some(rest) = s.strip_prefix("@g") {
        let i = parse_index(line, rest, "global")?;
        return Ok(Value::Global(GlobalId::from_index(i)));
    }
    let (ty_s, payload) = match s.split_once(' ') {
        Some(p) => p,
        None => return err(line, format!("malformed value `{s}`")),
    };
    let ty = parse_ty(line, ty_s)?;
    if payload == "undef" {
        return Ok(Value::Undef(ty));
    }
    match payload.parse::<i64>() {
        Ok(v) => Ok(Value::ConstInt(ty, v)),
        Err(_) => err(line, format!("malformed constant `{s}`")),
    }
}

fn parse_block_ref(line: usize, s: &str) -> Result<BlockId, ParseError> {
    match s.strip_prefix('b') {
        Some(rest) => Ok(BlockId::from_index(parse_index(line, rest, "block")?)),
        None => err(line, format!("expected block reference, got `{s}`")),
    }
}

fn split2<'a>(line: usize, s: &'a str, ctx: &str) -> Result<(&'a str, &'a str), ParseError> {
    match s.split_once(", ") {
        Some(p) => Ok(p),
        None => err(line, format!("expected two operands in `{ctx}`")),
    }
}

fn bin_op(mn: &str) -> Option<BinOp> {
    BinOp::ALL.into_iter().find(|b| b.name() == mn)
}

fn cmp_pred(mn: &str) -> Option<CmpPred> {
    CmpPred::ALL.into_iter().find(|p| p.name() == mn)
}

fn cast_op(mn: &str) -> Option<CastOp> {
    [CastOp::Trunc, CastOp::ZExt, CastOp::SExt, CastOp::BitCast]
        .into_iter()
        .find(|c| c.name() == mn)
}

/// Parse an opcode body (everything after `%id = <ty> ` or the line itself
/// for void instructions).
fn parse_opcode(line: usize, body: &str) -> Result<Opcode, ParseError> {
    let (mn, rest) = body.split_once(' ').unwrap_or((body, ""));
    if let Some(op) = bin_op(mn) {
        let (a, b) = split2(line, rest, body)?;
        return Ok(Opcode::Binary(
            op,
            parse_value(line, a)?,
            parse_value(line, b)?,
        ));
    }
    if let Some(op) = cast_op(mn) {
        return Ok(Opcode::Cast(op, parse_value(line, rest)?));
    }
    match mn {
        "icmp" => {
            let (pred_s, ops) = match rest.split_once(' ') {
                Some(p) => p,
                None => return err(line, "icmp needs a predicate and operands"),
            };
            let pred = match cmp_pred(pred_s) {
                Some(p) => p,
                None => return err(line, format!("unknown icmp predicate `{pred_s}`")),
            };
            let (a, b) = split2(line, ops, body)?;
            Ok(Opcode::ICmp(
                pred,
                parse_value(line, a)?,
                parse_value(line, b)?,
            ))
        }
        "select" => {
            let (c, rest) = split2(line, rest, body)?;
            let (t, f) = split2(line, rest, body)?;
            Ok(Opcode::Select {
                cond: parse_value(line, c)?,
                tval: parse_value(line, t)?,
                fval: parse_value(line, f)?,
            })
        }
        "phi" => {
            let mut incoming = Vec::new();
            let mut s = rest.trim_end();
            while !s.is_empty() {
                let open = match s.strip_prefix('[') {
                    Some(o) => o,
                    None => return err(line, format!("malformed phi incoming near `{s}`")),
                };
                let (group, tail) = match open.split_once(']') {
                    Some(p) => p,
                    None => return err(line, "unterminated phi incoming group"),
                };
                let (v, bb) = split2(line, group, group)?;
                incoming.push((parse_block_ref(line, bb)?, parse_value(line, v)?));
                s = tail.strip_prefix(", ").unwrap_or(tail);
            }
            Ok(Opcode::Phi { incoming })
        }
        "alloca" => {
            let (count_s, ty_s) = match rest.split_once(" x ") {
                Some(p) => p,
                None => return err(line, "malformed alloca"),
            };
            let count = parse_index(line, count_s, "alloca count")? as u32;
            Ok(Opcode::Alloca {
                elem_ty: parse_ty(line, ty_s)?,
                count,
            })
        }
        "load" => Ok(Opcode::Load {
            ptr: parse_value(line, rest)?,
        }),
        "store" => {
            let (v, p) = split2(line, rest, body)?;
            Ok(Opcode::Store {
                ptr: parse_value(line, p)?,
                value: parse_value(line, v)?,
            })
        }
        "getelementptr" => {
            let (p, i) = split2(line, rest, body)?;
            Ok(Opcode::Gep {
                ptr: parse_value(line, p)?,
                index: parse_value(line, i)?,
            })
        }
        "call" => {
            let callee_args = match rest.strip_prefix("@f") {
                Some(r) => r,
                None => return err(line, "call must target @f<slot>"),
            };
            let (id_s, args_s) = match callee_args.split_once('(') {
                Some(p) => p,
                None => return err(line, "malformed call"),
            };
            let args_s = match args_s.strip_suffix(')') {
                Some(a) => a,
                None => return err(line, "unterminated call argument list"),
            };
            let callee = FuncId::from_index(parse_index(line, id_s, "function")?);
            let mut args = Vec::new();
            if !args_s.is_empty() {
                for a in args_s.split(", ") {
                    args.push(parse_value(line, a)?);
                }
            }
            Ok(Opcode::Call { callee, args })
        }
        "br" => {
            if let Some((c, rest)) = rest.split_once(", ") {
                let (t, e) = split2(line, rest, body)?;
                Ok(Opcode::CondBr {
                    cond: parse_value(line, c)?,
                    then_bb: parse_block_ref(line, t)?,
                    else_bb: parse_block_ref(line, e)?,
                })
            } else {
                Ok(Opcode::Br {
                    target: parse_block_ref(line, rest)?,
                })
            }
        }
        "switch" => {
            let (v, rest) = match rest.split_once(", default ") {
                Some(p) => p,
                None => return err(line, "malformed switch"),
            };
            let (def, cases_s) = match rest.split_once(" [") {
                Some(p) => p,
                None => return err(line, "switch missing case list"),
            };
            let cases_s = match cases_s.strip_suffix(']') {
                Some(c) => c,
                None => return err(line, "unterminated switch case list"),
            };
            let mut cases = Vec::new();
            if !cases_s.is_empty() {
                for c in cases_s.split(", ") {
                    let (val, bb) = match c.split_once(" -> ") {
                        Some(p) => p,
                        None => return err(line, format!("malformed switch case `{c}`")),
                    };
                    let val = match val.parse::<i64>() {
                        Ok(v) => v,
                        Err(_) => return err(line, format!("malformed case value `{val}`")),
                    };
                    cases.push((val, parse_block_ref(line, bb)?));
                }
            }
            Ok(Opcode::Switch {
                value: parse_value(line, v)?,
                default: parse_block_ref(line, def)?,
                cases,
            })
        }
        "ret" => {
            if rest == "void" {
                Ok(Opcode::Ret { value: None })
            } else {
                Ok(Opcode::Ret {
                    value: Some(parse_value(line, rest)?),
                })
            }
        }
        "unreachable" => Ok(Opcode::Unreachable),
        _ => err(line, format!("unknown instruction `{mn}`")),
    }
}

/// One parsed instruction line: its printed arena id (None for void
/// instructions, which print without a result) and the instruction.
struct ParsedInst {
    slot: Option<usize>,
    inst: Inst,
}

fn parse_inst_line(line: usize, text: &str) -> Result<ParsedInst, ParseError> {
    let t = text.trim_start();
    if t.starts_with('%') {
        let (lhs, rest) = match t.split_once(" = ") {
            Some(p) => p,
            None => return err(line, "instruction result without `=`"),
        };
        let slot = match lhs.strip_prefix('%') {
            Some(s) => parse_index(line, s, "instruction")?,
            None => return err(line, "malformed result name"),
        };
        let (ty_s, body) = match rest.split_once(' ') {
            Some(p) => p,
            None => return err(line, "instruction missing a type"),
        };
        let ty = parse_ty(line, ty_s)?;
        if ty.is_void() {
            return err(line, "void instruction cannot have a result");
        }
        Ok(ParsedInst {
            slot: Some(slot),
            inst: Inst::new(ty, parse_opcode(line, body)?),
        })
    } else {
        Ok(ParsedInst {
            slot: None,
            inst: Inst::new(Type::Void, parse_opcode(line, t)?),
        })
    }
}

/// Parse a `define` header: `define <ret> @<name>(<params>)<attrs> {`.
fn parse_header(
    line: usize,
    text: &str,
) -> Result<(String, Vec<Type>, Type, Vec<String>), ParseError> {
    let rest = match text.strip_prefix("define ") {
        Some(r) => r,
        None => return err(line, "expected `define`"),
    };
    let rest = match rest.strip_suffix(" {") {
        Some(r) => r,
        None => return err(line, "function header must end in ` {`"),
    };
    let (ret_s, rest) = match rest.split_once(" @") {
        Some(p) => p,
        None => return err(line, "function header missing `@name`"),
    };
    let ret_ty = parse_ty(line, ret_s)?;
    let open = match rest.find('(') {
        Some(i) => i,
        None => return err(line, "function header missing `(`"),
    };
    let close = match rest.rfind(')') {
        Some(i) if i >= open => i,
        _ => return err(line, "function header missing `)`"),
    };
    let name = rest[..open].to_string();
    if name.is_empty() {
        return err(line, "empty function name");
    }
    let params_s = &rest[open + 1..close];
    let mut params = Vec::new();
    if !params_s.is_empty() {
        for (i, p) in params_s.split(", ").enumerate() {
            let (ty_s, arg) = match p.split_once(' ') {
                Some(x) => x,
                None => return err(line, format!("malformed parameter `{p}`")),
            };
            if arg != format!("%arg{i}") {
                return err(line, format!("parameter {i} must be named %arg{i}"));
            }
            params.push(parse_ty(line, ty_s)?);
        }
    }
    let attrs: Vec<String> = rest[close + 1..]
        .split_whitespace()
        .map(str::to_string)
        .collect();
    Ok((name, params, ret_ty, attrs))
}

/// Assemble a [`Function`] from its parsed header and block contents,
/// reconstructing the exact arena slots of printed entities.
fn build_function(
    line: usize,
    name: String,
    params: Vec<Type>,
    ret_ty: Type,
    attrs: &[String],
    blocks: Vec<(usize, Vec<ParsedInst>)>,
    slot_budget: &mut usize,
) -> Result<Function, ParseError> {
    if blocks.is_empty() {
        return err(line, format!("function @{name} has no blocks"));
    }
    let mut f = Function::new(name.clone(), params, ret_ty);
    for a in attrs {
        match a.as_str() {
            "readnone" => f.attrs.readnone = true,
            "readonly" => f.attrs.readonly = true,
            "internal" => f.attrs.internal = true,
            "alwaysinline" => f.attrs.always_inline = true,
            "outlined" => f.attrs.outlined = true,
            _ => return err(line, format!("unknown attribute `{a}`")),
        }
    }

    // Charge this function's arena capacities (live slots and tombstones
    // alike) against the module-wide budget *before* allocating anything,
    // so hostile input cannot amplify per-function: the whole module gets
    // [`MAX_MODULE_SLOTS`], not each function.
    let max_block = blocks.iter().map(|(id, _)| *id).max().unwrap_or(0);
    let max_slot = blocks
        .iter()
        .flat_map(|(_, insts)| insts.iter().filter_map(|p| p.slot))
        .max();
    let slots = (max_block + 1) + max_slot.map_or(0, |m| m + 1);
    if slots > *slot_budget {
        return err(
            line,
            format!("module exceeds the {MAX_MODULE_SLOTS}-slot arena budget at @{name}"),
        );
    }
    *slot_budget -= slots;

    // Recreate the block arena: live slots are exactly the printed labels;
    // slots between them are tombstones. `Function::new` made slot 0.
    let mut live = vec![false; max_block + 1];
    for (id, _) in &blocks {
        if live[*id] {
            return err(line, format!("duplicate block label b{id} in @{name}"));
        }
        live[*id] = true;
    }
    for _ in 0..max_block {
        f.add_block();
    }
    for (i, &alive) in live.iter().enumerate() {
        if !alive {
            f.remove_block(BlockId::from_index(i));
        }
    }
    f.entry = BlockId::from_index(blocks[0].0);

    // Recreate the instruction arena: printed `%id`s take their exact
    // slots (tombstones fill the gaps); void instructions are appended
    // above the highest printed id.
    let mut arena: Vec<Option<Inst>> = vec![None; max_slot.map_or(0, |m| m + 1)];
    for (_, insts) in &blocks {
        for p in insts {
            if let Some(slot) = p.slot {
                if arena[slot].is_some() {
                    return err(line, format!("duplicate instruction id %{slot} in @{name}"));
                }
                arena[slot] = Some(p.inst.clone());
            }
        }
    }
    for inst in arena {
        match inst {
            Some(inst) => {
                f.add_inst(inst);
            }
            None => {
                let id = f.add_inst(Inst::new(Type::Void, Opcode::Unreachable));
                f.erase_inst(id);
            }
        }
    }
    for (bid, insts) in blocks {
        let mut list = Vec::with_capacity(insts.len());
        for p in insts {
            match p.slot {
                Some(slot) => list.push(InstId::from_index(slot)),
                None => list.push(f.add_inst(p.inst)),
            }
        }
        f.block_mut(BlockId::from_index(bid)).insts = list;
    }
    Ok(f)
}

fn parse_global_line(line: usize, text: &str) -> Result<(usize, Global), ParseError> {
    let rest = match text.strip_prefix("@g") {
        Some(r) => r,
        None => return err(line, "expected global definition"),
    };
    let (id_s, rest) = match rest.split_once(" = ") {
        Some(p) => p,
        None => return err(line, "global definition missing `=`"),
    };
    let slot = parse_index(line, id_s, "global")?;
    let (spec, name) = match rest.split_once(" ; ") {
        Some(p) => p,
        None => return err(line, "global definition missing `; <name>`"),
    };
    let (kind, spec) = match spec.split_once(' ') {
        Some(p) => p,
        None => return err(line, "malformed global"),
    };
    let is_const = match kind {
        "const" => true,
        "global" => false,
        _ => return err(line, format!("unknown global kind `{kind}`")),
    };
    let (count_s, spec) = match spec.split_once(" x ") {
        Some(p) => p,
        None => return err(line, "malformed global element count"),
    };
    let count = parse_index(line, count_s, "global count")? as u32;
    let (ty_s, init_s) = match spec.split_once(' ') {
        Some(p) => p,
        None => return err(line, "global missing initializer"),
    };
    let elem_ty = parse_ty(line, ty_s)?;
    let init = if init_s == "zeroinit" {
        Vec::new()
    } else {
        let inner = match init_s.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            Some(i) => i,
            None => return err(line, format!("malformed initializer `{init_s}`")),
        };
        let mut vals = Vec::new();
        if !inner.is_empty() {
            for v in inner.split(", ") {
                match v.parse::<i64>() {
                    Ok(x) => vals.push(x),
                    Err(_) => return err(line, format!("malformed initializer value `{v}`")),
                }
            }
        }
        if vals.len() > MAX_INDEX {
            return err(line, "initializer too long");
        }
        vals
    };
    Ok((
        slot,
        Global {
            name: name.to_string(),
            elem_ty,
            count,
            init,
            is_const,
        },
    ))
}

/// Parse the textual form produced by [`crate::printer::print_module`].
///
/// Purely syntactic — run [`crate::verify::verify_module`] on the result
/// before trusting it semantically.
///
/// # Errors
///
/// Returns the first syntax problem found, with its 1-based line number.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0usize;
    while i < lines.len() && lines[i].trim().is_empty() {
        i += 1;
    }
    let name = match lines.get(i).and_then(|l| l.strip_prefix("; module ")) {
        Some(n) => n.to_string(),
        None => return err(i + 1, "expected `; module <name>` header"),
    };
    i += 1;
    let mut m = Module::new(name);
    // Shared across all functions — see [`MAX_MODULE_SLOTS`].
    let mut slot_budget = MAX_MODULE_SLOTS;
    // Pending `; f<slot>` annotation for the next `define`.
    let mut pending_slot: Option<usize> = None;
    while i < lines.len() {
        let line = lines[i];
        let ln = i + 1;
        if line.trim().is_empty() {
            i += 1;
            continue;
        }
        if line.starts_with("@g") {
            if pending_slot.is_some() {
                return err(ln, "global definition after `; f<slot>` annotation");
            }
            let (slot, g) = parse_global_line(ln, line)?;
            if slot < m.global_capacity() {
                return err(ln, format!("global slot g{slot} already used"));
            }
            while m.global_capacity() < slot {
                let id = m.add_global(Global::zeroed("", Type::I8, 0));
                m.remove_global(id);
            }
            m.add_global(g);
            i += 1;
            continue;
        }
        if let Some(slot_s) = line.strip_prefix("; f") {
            if pending_slot.is_some() {
                return err(ln, "consecutive `; f<slot>` annotations");
            }
            pending_slot = Some(parse_index(ln, slot_s, "function")?);
            i += 1;
            continue;
        }
        if line.starts_with("define ") {
            let (fname, params, ret_ty, attrs) = parse_header(ln, line)?;
            i += 1;
            // Collect block sections until the closing `}`.
            let mut blocks: Vec<(usize, Vec<ParsedInst>)> = Vec::new();
            let mut closed = false;
            while i < lines.len() {
                let bl = lines[i];
                let bln = i + 1;
                if bl == "}" {
                    closed = true;
                    i += 1;
                    break;
                }
                if let Some(label) = bl.strip_suffix(':') {
                    let bb = match label.strip_prefix('b') {
                        Some(s) => parse_index(bln, s, "block")?,
                        None => return err(bln, format!("malformed block label `{bl}`")),
                    };
                    blocks.push((bb, Vec::new()));
                } else if bl.starts_with("  ") {
                    match blocks.last_mut() {
                        Some((_, insts)) => insts.push(parse_inst_line(bln, bl)?),
                        None => return err(bln, "instruction before first block label"),
                    }
                } else {
                    return err(bln, format!("unexpected line in function body: `{bl}`"));
                }
                i += 1;
            }
            if !closed {
                return err(i, format!("unterminated function @{fname}"));
            }
            let f = build_function(ln, fname, params, ret_ty, &attrs, blocks, &mut slot_budget)?;
            let slot = pending_slot.take().unwrap_or(m.func_capacity());
            if slot < m.func_capacity() {
                return err(ln, format!("function slot f{slot} already used"));
            }
            while m.func_capacity() < slot {
                let id = m.add_function(Function::new("", Vec::new(), Type::Void));
                m.remove_function(id);
            }
            m.add_function(f);
            continue;
        }
        return err(ln, format!("unexpected line `{line}`"));
    }
    if pending_slot.is_some() {
        return err(lines.len(), "`; f<slot>` annotation without a function");
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::printer::print_module;

    fn roundtrip(m: &Module) -> Module {
        let text = print_module(m);
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(print_module(&parsed), text, "print is not a fixpoint");
        parsed
    }

    fn rich_module() -> Module {
        let mut m = Module::new("demo");
        let g = m.add_global(Global::constant("tbl", Type::I32, vec![1, -2, 3]));
        let dead = m.add_global(Global::zeroed("dead", Type::I8, 4));
        m.add_global(Global::zeroed("buf", Type::I8, 16));
        m.remove_global(dead);

        let mut b = FunctionBuilder::new("helper", vec![Type::I32], Type::I32);
        let w = b.binary(BinOp::Mul, b.arg(0), Value::i32(3));
        b.ret(Some(w));
        let helper = m.add_function(b.finish());
        m.func_mut(helper).attrs.internal = true;
        m.func_mut(helper).attrs.readnone = true;

        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let p = b.gep(Value::Global(g), Value::i32(1));
        let v = b.load(Type::I32, p);
        let c = b.icmp(CmpPred::Slt, v, Value::i32(10));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let a = b.alloca(Type::I32, 2);
        b.store(a, v);
        let x = b.call(helper, Type::I32, vec![v]);
        b.br(j);
        b.switch_to(e);
        let y = b.binary(BinOp::Add, v, Value::ConstInt(Type::I64, -7));
        let yt = b.cast(CastOp::Trunc, Type::I32, y);
        b.br(j);
        b.switch_to(j);
        let phi = b.phi(Type::I32, vec![(t, x), (e, yt)]);
        let s = b.select(c, phi, Value::Undef(Type::I32));
        b.ret(Some(s));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn roundtrip_rich_module_is_exact() {
        let m = rich_module();
        let parsed = roundtrip(&m);
        assert_eq!(
            crate::fingerprint::fingerprint_module(&parsed),
            crate::fingerprint::fingerprint_module(&m)
        );
        crate::verify::assert_verified(&parsed);
    }

    #[test]
    fn roundtrip_preserves_sparse_arenas() {
        let mut m = rich_module();
        // Tombstone the first function; calls keep their slot references.
        let helper = m.func_by_name("helper").unwrap();
        // Inline the call away first so the module stays valid.
        let main = m.main().unwrap();
        let f = m.func_mut(main);
        let mut call_id = None;
        for bb in f.block_ids().collect::<Vec<_>>() {
            for (id, inst) in f.insts_in(bb) {
                if matches!(inst.op, Opcode::Call { .. }) {
                    call_id = Some((bb, id));
                }
            }
        }
        let (bb, id) = call_id.unwrap();
        let ty = f.inst(id).ty;
        *f.inst_mut(id) = Inst::new(ty, Opcode::Binary(BinOp::Add, Value::i32(1), Value::i32(2)));
        let _ = bb;
        m.remove_function(helper);
        let parsed = roundtrip(&m);
        assert_eq!(parsed.func_capacity(), m.func_capacity());
        assert_eq!(parsed.main().unwrap(), m.main().unwrap());
        crate::verify::assert_verified(&parsed);
    }

    #[test]
    fn roundtrip_preserves_switch_and_unreachable() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let c1 = b.new_block();
        let c2 = b.new_block();
        let d = b.new_block();
        b.switch(b.arg(0), d, vec![(1, c1), (-2, c2)]);
        b.switch_to(c1);
        b.ret(Some(Value::i32(10)));
        b.switch_to(c2);
        b.unreachable();
        b.switch_to(d);
        b.ret(Some(Value::i32(0)));
        let mut m = Module::new("sw");
        m.add_function(b.finish());
        let parsed = roundtrip(&m);
        crate::verify::assert_verified(&parsed);
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in [
            "",
            "garbage",
            "; module m\n@g0 = const 1 x i32",
            "; module m\ndefine i32 @f( {",
            "; module m\ndefine i32 @f() {\nb0:\n  ret i32 1",
            "; module m\ndefine i32 @f() {\n  ret i32 1\n}",
            "; module m\ndefine i32 @f() {\nb0:\n  %0 = i32 frobnicate %arg0\n}",
            "; module m\ndefine i32 @f() {\nb0:\n  %0 = i32 add %1\n}",
            "; module m\n; f0\n; f1\ndefine void @f() {\nb0:\n  ret void\n}",
            "; module m\n; f0",
            "; module m\ndefine void @f() {\nb0:\n  %99999999999 = i32 add %arg0, %arg0\n}",
        ] {
            assert!(parse_module(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn duplicate_slots_rejected() {
        let dup_inst = "; module m\ndefine i32 @f() {\nb0:\n  %0 = i32 add i32 1, i32 2\n  %0 = i32 add i32 1, i32 2\n  ret %0\n}";
        assert!(parse_module(dup_inst).is_err());
        let dup_block = "; module m\ndefine i32 @f() {\nb0:\nb0:\n  ret i32 1\n}";
        assert!(parse_module(dup_block).is_err());
        let dup_global = "; module m\n@g0 = const 1 x i32 [1] ; a\n@g0 = const 1 x i32 [1] ; b";
        assert!(parse_module(dup_global).is_err());
    }

    #[test]
    fn index_cap_blocks_huge_allocations() {
        let huge = format!(
            "; module m\ndefine i32 @f() {{\nb{}:\n  ret i32 1\n}}",
            usize::MAX
        );
        assert!(parse_module(&huge).is_err());
    }

    #[test]
    fn tombstones_cannot_amplify_across_functions() {
        // Each label passes the per-index cap, but every function would
        // claim its own MAX_INDEX-slot block arena — a few hundred bytes
        // of text amplified into tens of millions of slots. The shared
        // module budget must refuse, and fast.
        let mut text = String::from("; module m\n");
        for i in 0..20 {
            text.push_str(&format!(
                "define void @f{i}() {{\nb{MAX_INDEX}:\n  ret void\n}}\n"
            ));
        }
        let t0 = std::time::Instant::now();
        let e = parse_module(&text).unwrap_err();
        assert!(e.msg.contains("arena budget"), "wrong error: {e}");
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(2),
            "budget refusal was not cheap: {:?}",
            t0.elapsed()
        );

        // Modest sparse arenas spread over many functions stay well under
        // the budget and round-trip exactly.
        let mut m = Module::new("sparse");
        for i in 0..64 {
            let mut b = FunctionBuilder::new(format!("f{i}"), vec![Type::I32], Type::I32);
            let x = b.binary(BinOp::Add, b.arg(0), Value::i32(1));
            let y = b.binary(BinOp::Mul, x, Value::i32(2));
            b.ret(Some(y));
            let mut f = b.finish();
            // Tombstone an interior instruction slot.
            let dead = f.add_inst(Inst::new(Type::I32, Opcode::Unreachable));
            f.erase_inst(dead);
            m.add_function(f);
        }
        roundtrip(&m);
    }
}
