//! A deterministic tracing interpreter.
//!
//! Execution produces an [`ExecTrace`]: per-basic-block execution counts (the
//! "software trace" LegUp's clock-cycle profiler consumes), per-function call
//! counts, `main`'s return value, and a checksum of global memory. The
//! trace's `observable()` tuple is the semantics-preservation oracle used by
//! the pass property tests.
//!
//! # Memory model
//!
//! One flat address space of 64-bit cells. Address 0 is null. Globals get
//! fixed base addresses; each `alloca` gets fresh cells in its call frame.
//! `Gep` adds an element index to a base address. Loads of out-of-range
//! addresses yield 0; stores to them are ignored — total semantics, no UB.

use crate::function::{BlockId, InstId};
use crate::inst::Opcode;
use crate::module::{FuncId, Module};
use crate::types::Type;
use crate::value::Value;
use crate::{fold, Function};
use std::collections::HashMap;
use std::fmt;

/// Why execution trapped (stopped early) instead of returning.
///
/// Every entry point takes an explicit fuel (step) budget, so even
/// adversarial IR — e.g. a module an RL agent drove into an infinite loop
/// — executes in bounded time and yields a typed [`Trap::FuelExhausted`]
/// rather than hanging the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// The module has no `main` function.
    NoMain,
    /// The step/fuel budget was exhausted (non-terminating or too slow).
    FuelExhausted,
    /// Call depth exceeded the limit (runaway recursion).
    StackOverflow,
    /// A block had no terminator (malformed IR).
    MissingTerminator(BlockId),
    /// An `unreachable` instruction was executed.
    ReachedUnreachable,
}

/// Former name of [`Trap`], kept for existing callers.
pub type ExecError = Trap;

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::NoMain => write!(f, "module has no main function"),
            Trap::FuelExhausted => write!(f, "step/fuel budget exhausted"),
            Trap::StackOverflow => write!(f, "call depth limit exceeded"),
            Trap::MissingTerminator(bb) => {
                write!(f, "block b{} has no terminator", bb.index())
            }
            Trap::ReachedUnreachable => write!(f, "executed unreachable"),
        }
    }
}

impl std::error::Error for Trap {}

/// Execution record of one program run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecTrace {
    /// Times each `(function, block)` was entered.
    pub block_counts: HashMap<(FuncId, BlockId), u64>,
    /// Times each function was called (main counts once).
    pub call_counts: HashMap<FuncId, u64>,
    /// `main`'s return value (`None` for `void`).
    pub return_value: Option<i64>,
    /// FNV-style checksum of all global memory after execution.
    pub memory_checksum: u64,
    /// Total instructions executed.
    pub insts_executed: u64,
}

impl ExecTrace {
    /// How often block `bb` of function `f` executed.
    pub fn count(&self, f: FuncId, bb: BlockId) -> u64 {
        self.block_counts.get(&(f, bb)).copied().unwrap_or(0)
    }

    /// How often function `f` was called.
    pub fn calls(&self, f: FuncId) -> u64 {
        self.call_counts.get(&f).copied().unwrap_or(0)
    }

    /// The observable behaviour of the run: the return value.
    ///
    /// Final memory contents are deliberately *not* part of this oracle:
    /// a dead store to memory nobody reads is unobservable in C, and
    /// store-killing passes (`-dse`, `-globalopt`) rely on that. Programs
    /// used as semantics-preservation test subjects fold their outputs into
    /// the value they return. The raw [`memory_checksum`] stays available
    /// for tests of passes that promise to keep memory intact.
    ///
    /// [`memory_checksum`]: ExecTrace::memory_checksum
    pub fn observable(&self) -> Option<i64> {
        self.return_value
    }
}

/// Maximum call depth.
const MAX_DEPTH: usize = 512;

struct Machine<'m> {
    module: &'m Module,
    memory: Vec<i64>,
    global_base: Vec<usize>,
    fuel: u64,
    trace: ExecTrace,
}

struct Frame {
    /// Dense register file indexed by instruction arena index.
    regs: Vec<i64>,
    args: Vec<i64>,
    frame_base: usize,
}

impl<'m> Machine<'m> {
    fn new(module: &'m Module, fuel: u64) -> Machine<'m> {
        // Lay out globals: address 0 is null.
        let mut memory = vec![0i64];
        let mut global_base = vec![
            0usize;
            module
                .global_ids()
                .map(|g| g.index() + 1)
                .max()
                .unwrap_or(0)
        ];
        for gid in module.global_ids() {
            let g = module.global(gid);
            global_base[gid.index()] = memory.len();
            for i in 0..g.count as usize {
                memory.push(g.init_at(i));
            }
        }
        Machine {
            module,
            memory,
            global_base,
            fuel,
            trace: ExecTrace::default(),
        }
    }

    fn load(&self, addr: i64) -> i64 {
        if addr <= 0 {
            return 0;
        }
        self.memory.get(addr as usize).copied().unwrap_or(0)
    }

    fn store(&mut self, addr: i64, v: i64) {
        if addr <= 0 {
            return;
        }
        if let Some(cell) = self.memory.get_mut(addr as usize) {
            *cell = v;
        }
    }

    fn eval(&self, frame: &Frame, v: Value) -> i64 {
        match v {
            Value::Inst(id) => frame.regs.get(id.index()).copied().unwrap_or(0),
            Value::Arg(i) => frame.args.get(i as usize).copied().unwrap_or(0),
            Value::ConstInt(_, c) => c,
            Value::Global(g) => self.global_base[g.index()] as i64,
            Value::Undef(_) => 0,
        }
    }

    fn call(&mut self, fid: FuncId, args: Vec<i64>, depth: usize) -> Result<i64, ExecError> {
        if depth > MAX_DEPTH {
            return Err(ExecError::StackOverflow);
        }
        *self.trace.call_counts.entry(fid).or_insert(0) += 1;
        let f: &Function = self.module.func(fid);
        let frame_base = self.memory.len();
        let mut frame = Frame {
            regs: vec![0; f.inst_capacity()],
            args,
            frame_base,
        };

        let mut prev_bb: Option<BlockId> = None;
        let mut bb = f.entry;
        'blocks: loop {
            *self.trace.block_counts.entry((fid, bb)).or_insert(0) += 1;
            // φ-nodes read their operands simultaneously on entry.
            let inst_ids: &[InstId] = &f.block(bb).insts;
            let mut phi_updates: Vec<(InstId, i64)> = Vec::new();
            for &iid in inst_ids {
                if let Opcode::Phi { incoming } = &f.inst(iid).op {
                    let pred = prev_bb.expect("phi in entry block");
                    let v = incoming
                        .iter()
                        .find(|(p, _)| *p == pred)
                        .map(|(_, v)| self.eval(&frame, *v))
                        .unwrap_or(0);
                    // Pointer-typed φs (loop-closed geps etc.) carry raw
                    // addresses; only integer φs re-wrap to their width.
                    let ty = f.inst(iid).ty;
                    let v = if ty.is_int() { ty.wrap(v) } else { v };
                    phi_updates.push((iid, v));
                } else {
                    break;
                }
            }
            for (iid, v) in phi_updates {
                frame.regs[iid.index()] = v;
            }

            for &iid in inst_ids {
                let inst = f.inst(iid);
                if inst.is_phi() {
                    continue;
                }
                if self.fuel == 0 {
                    return Err(Trap::FuelExhausted);
                }
                self.fuel -= 1;
                self.trace.insts_executed += 1;
                match &inst.op {
                    Opcode::Binary(op, a, b) => {
                        let (x, y) = (self.eval(&frame, *a), self.eval(&frame, *b));
                        frame.regs[iid.index()] = fold::eval_binop(*op, inst.ty, x, y);
                    }
                    Opcode::ICmp(pred, a, b) => {
                        let ty = operand_type(f, *a);
                        // Pointer comparisons behave as 64-bit address
                        // comparisons.
                        let ty = if ty.is_int() { ty } else { Type::I64 };
                        let (x, y) = (self.eval(&frame, *a), self.eval(&frame, *b));
                        frame.regs[iid.index()] = fold::eval_icmp(*pred, ty, x, y);
                    }
                    Opcode::Select { cond, tval, fval } => {
                        let c = self.eval(&frame, *cond);
                        let v = if c != 0 {
                            self.eval(&frame, *tval)
                        } else {
                            self.eval(&frame, *fval)
                        };
                        frame.regs[iid.index()] = v;
                    }
                    Opcode::Phi { .. } => unreachable!(),
                    Opcode::Alloca { count, .. } => {
                        let base = self.memory.len();
                        self.memory.extend(std::iter::repeat_n(0, *count as usize));
                        frame.regs[iid.index()] = base as i64;
                    }
                    Opcode::Load { ptr } => {
                        let addr = self.eval(&frame, *ptr);
                        let raw = self.load(addr);
                        let v = if inst.ty.is_int() {
                            inst.ty.wrap(raw)
                        } else {
                            raw
                        };
                        frame.regs[iid.index()] = v;
                    }
                    Opcode::Store { ptr, value } => {
                        let addr = self.eval(&frame, *ptr);
                        let v = self.eval(&frame, *value);
                        self.store(addr, v);
                    }
                    Opcode::Gep { ptr, index } => {
                        let base = self.eval(&frame, *ptr);
                        let idx = self.eval(&frame, *index);
                        frame.regs[iid.index()] = base.wrapping_add(idx);
                    }
                    Opcode::Cast(op, v) => {
                        let from = operand_type(f, *v);
                        let x = self.eval(&frame, *v);
                        let to = if inst.ty.is_int() { inst.ty } else { Type::I64 };
                        let from = if from.is_int() { from } else { Type::I64 };
                        frame.regs[iid.index()] = fold::eval_cast(*op, from, to, x);
                    }
                    Opcode::Call { callee, args } => {
                        let argv: Vec<i64> = args.iter().map(|a| self.eval(&frame, *a)).collect();
                        let r = self.call(*callee, argv, depth + 1)?;
                        frame.regs[iid.index()] = r;
                    }
                    Opcode::Br { target } => {
                        prev_bb = Some(bb);
                        bb = *target;
                        continue 'blocks;
                    }
                    Opcode::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let c = self.eval(&frame, *cond);
                        prev_bb = Some(bb);
                        bb = if c != 0 { *then_bb } else { *else_bb };
                        continue 'blocks;
                    }
                    Opcode::Switch {
                        value,
                        default,
                        cases,
                    } => {
                        let v = self.eval(&frame, *value);
                        prev_bb = Some(bb);
                        bb = cases
                            .iter()
                            .find(|(c, _)| *c == v)
                            .map(|(_, b)| *b)
                            .unwrap_or(*default);
                        continue 'blocks;
                    }
                    Opcode::Ret { value } => {
                        let r = value.map(|v| self.eval(&frame, v)).unwrap_or(0);
                        self.memory
                            .truncate(frame.frame_base.max(self.frame_floor()));
                        return Ok(r);
                    }
                    Opcode::Unreachable => return Err(ExecError::ReachedUnreachable),
                }
            }
            return Err(ExecError::MissingTerminator(bb));
        }
    }

    /// Lowest address the stack may shrink to (end of globals).
    fn frame_floor(&self) -> usize {
        let mut floor = 1;
        for gid in self.module.global_ids() {
            let g = self.module.global(gid);
            floor = floor.max(self.global_base[gid.index()] + g.count as usize);
        }
        floor
    }

    fn checksum_globals(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for gid in self.module.global_ids() {
            let g = self.module.global(gid);
            let base = self.global_base[gid.index()];
            for i in 0..g.count as usize {
                let v = self.memory.get(base + i).copied().unwrap_or(0) as u64;
                h ^= v.wrapping_add(i as u64);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }
}

fn operand_type(f: &Function, v: Value) -> Type {
    match v {
        Value::Inst(id) => f.inst(id).ty,
        Value::ConstInt(ty, _) | Value::Undef(ty) => ty,
        Value::Arg(i) => f.params.get(i as usize).copied().unwrap_or(Type::I64),
        Value::Global(_) => Type::I64,
    }
}

/// Run the module's `main` with the given instruction budget.
///
/// # Errors
///
/// Returns an [`ExecError`] if there is no `main`, the budget runs out,
/// recursion exceeds the depth limit, or malformed IR is executed.
pub fn run_main(module: &Module, fuel: u64) -> Result<ExecTrace, ExecError> {
    let main = module.main().ok_or(ExecError::NoMain)?;
    run_function(module, main, &[], fuel)
}

/// Run an arbitrary function with the given arguments and budget.
///
/// # Errors
///
/// Same conditions as [`run_main`].
pub fn run_function(
    module: &Module,
    func: FuncId,
    args: &[i64],
    fuel: u64,
) -> Result<ExecTrace, ExecError> {
    let mut m = Machine::new(module, fuel);
    let r = m.call(func, args.to_vec(), 0)?;
    let ret_ty = module.func(func).ret_ty;
    m.trace.return_value = if ret_ty.is_void() { None } else { Some(r) };
    m.trace.memory_checksum = m.checksum_globals();
    Ok(m.trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, CmpPred};
    use crate::module::Global;

    fn module_with(f: Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    #[test]
    fn straightline_arithmetic() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let x = b.binary(BinOp::Mul, Value::i32(6), Value::i32(7));
        let y = b.binary(BinOp::Sub, x, Value::i32(2));
        b.ret(Some(y));
        let t = run_main(&module_with(b.finish()), 1000).unwrap();
        assert_eq!(t.return_value, Some(40));
        assert_eq!(t.insts_executed, 3);
    }

    #[test]
    fn loop_sums_and_counts_blocks() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        let (header, _) = b.counted_loop(Value::i32(5), |b, i| {
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, i);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let m = module_with(b.finish());
        let t = run_main(&m, 10_000).unwrap();
        assert_eq!(t.return_value, Some(10)); // 0+1+2+3+4
        let main = m.main().unwrap();
        assert_eq!(t.count(main, header), 6); // 5 iterations + exit test
        assert_eq!(t.calls(main), 1);
    }

    #[test]
    fn function_call_and_recursion() {
        let mut m = Module::new("t");
        // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
        let fib_id = FuncId::from_index(0);
        let mut b = FunctionBuilder::new("fib", vec![Type::I32], Type::I32);
        let rec = b.new_block();
        let base = b.new_block();
        let n = b.arg(0);
        let c = b.icmp(CmpPred::Slt, n, Value::i32(2));
        b.cond_br(c, base, rec);
        b.switch_to(base);
        b.ret(Some(n));
        b.switch_to(rec);
        let n1 = b.binary(BinOp::Sub, n, Value::i32(1));
        let n2 = b.binary(BinOp::Sub, n, Value::i32(2));
        let f1 = b.call(fib_id, Type::I32, vec![n1]);
        let f2 = b.call(fib_id, Type::I32, vec![n2]);
        let s = b.binary(BinOp::Add, f1, f2);
        b.ret(Some(s));
        assert_eq!(m.add_function(b.finish()), fib_id);

        let mut mb = FunctionBuilder::new("main", vec![], Type::I32);
        let r = mb.call(fib_id, Type::I32, vec![Value::i32(10)]);
        mb.ret(Some(r));
        m.add_function(mb.finish());

        let t = run_main(&m, 1_000_000).unwrap();
        assert_eq!(t.return_value, Some(55));
        assert!(t.calls(fib_id) > 100);
    }

    #[test]
    fn out_of_fuel_on_infinite_loop() {
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let spin = b.new_block();
        b.br(spin);
        b.switch_to(spin);
        // A non-terminator instruction so fuel is consumed.
        let _ = b.binary(BinOp::Add, Value::i32(1), Value::i32(1));
        b.br(spin);
        let r = run_main(&module_with(b.finish()), 1000);
        assert_eq!(r, Err(Trap::FuelExhausted));
    }

    #[test]
    fn stack_overflow_detected() {
        let mut m = Module::new("t");
        let f_id = FuncId::from_index(0);
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let r = b.call(f_id, Type::I32, vec![]);
        b.ret(Some(r));
        // main calls itself forever
        let mut f = b.finish();
        f.name = "main".to_string();
        m.add_function(f);
        let r = run_main(&m, u64::MAX);
        assert_eq!(r, Err(ExecError::StackOverflow));
    }

    #[test]
    fn globals_affect_checksum() {
        let mut m = Module::new("t");
        let g = m.add_global(Global::zeroed("out", Type::I32, 4));
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let p = b.gep(Value::Global(g), Value::i32(2));
        b.store(p, Value::i32(99));
        b.ret(None);
        m.add_function(b.finish());
        let t1 = run_main(&m, 1000).unwrap();

        let mut m2 = Module::new("t");
        m2.add_global(Global::zeroed("out", Type::I32, 4));
        let mut b2 = FunctionBuilder::new("main", vec![], Type::Void);
        b2.ret(None);
        m2.add_function(b2.finish());
        let t2 = run_main(&m2, 1000).unwrap();

        assert_ne!(t1.memory_checksum, t2.memory_checksum);
    }

    #[test]
    fn switch_dispatch() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let c1 = b.new_block();
        let c2 = b.new_block();
        let dflt = b.new_block();
        b.switch(Value::i32(2), dflt, vec![(1, c1), (2, c2)]);
        b.switch_to(c1);
        b.ret(Some(Value::i32(10)));
        b.switch_to(c2);
        b.ret(Some(Value::i32(20)));
        b.switch_to(dflt);
        b.ret(Some(Value::i32(30)));
        let t = run_main(&module_with(b.finish()), 1000).unwrap();
        assert_eq!(t.return_value, Some(20));
    }

    #[test]
    fn null_pointer_access_is_benign() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let null = b.cast(crate::inst::CastOp::BitCast, Type::Ptr, Value::i64(0));
        b.store(null, Value::i32(5));
        let v = b.load(Type::I32, null);
        b.ret(Some(v));
        let t = run_main(&module_with(b.finish()), 1000).unwrap();
        assert_eq!(t.return_value, Some(0));
    }

    #[test]
    fn unreachable_errors() {
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        b.unreachable();
        let r = run_main(&module_with(b.finish()), 1000);
        assert_eq!(r, Err(ExecError::ReachedUnreachable));
    }

    #[test]
    fn alloca_frames_are_released() {
        // A function with a big alloca called in a loop must not leak memory
        // across calls (frame truncation on return).
        let mut m = Module::new("t");
        let callee = FuncId::from_index(0);
        let mut b = FunctionBuilder::new("work", vec![], Type::I32);
        let buf = b.alloca(Type::I32, 64);
        b.store(buf, Value::i32(1));
        let v = b.load(Type::I32, buf);
        b.ret(Some(v));
        assert_eq!(m.add_function(b.finish()), callee);

        let mut mb = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = mb.alloca(Type::I32, 1);
        mb.store(acc, Value::i32(0));
        mb.counted_loop(Value::i32(100), |b, _| {
            let r = b.call(callee, Type::I32, vec![]);
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, r);
            b.store(acc, n);
        });
        let out = mb.load(Type::I32, acc);
        mb.ret(Some(out));
        m.add_function(mb.finish());
        let t = run_main(&m, 1_000_000).unwrap();
        assert_eq!(t.return_value, Some(100));
    }
}
