//! Natural-loop detection.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::function::{BlockId, Function};
use std::collections::HashSet;

/// A natural loop: a back edge `latch -> header` where `header` dominates
/// `latch`, plus every block that can reach the latch without going through
/// the header.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (dominates all loop blocks).
    pub header: BlockId,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, header first.
    pub blocks: Vec<BlockId>,
    /// Blocks outside the loop that are targets of edges leaving it.
    pub exits: Vec<BlockId>,
}

impl Loop {
    /// True if `bb` belongs to the loop.
    pub fn contains(&self, bb: BlockId) -> bool {
        self.blocks.contains(&bb)
    }

    /// The unique preheader: the single predecessor of the header outside
    /// the loop, if it exists and the header is its only successor.
    pub fn preheader(&self, cfg: &Cfg) -> Option<BlockId> {
        let outside: Vec<BlockId> = cfg
            .unique_preds(self.header)
            .into_iter()
            .filter(|p| !self.contains(*p))
            .collect();
        match outside.as_slice() {
            [p] if cfg.unique_succs(*p) == vec![self.header] => Some(*p),
            _ => None,
        }
    }

    /// The unique block outside the loop that branches to the header, if
    /// exactly one exists. Unlike [`Loop::preheader`] it may have other
    /// successors (e.g. the guard block `-loop-rotate` leaves behind).
    pub fn entering_block(&self, cfg: &Cfg) -> Option<BlockId> {
        let outside: Vec<BlockId> = cfg
            .unique_preds(self.header)
            .into_iter()
            .filter(|p| !self.contains(*p))
            .collect();
        match outside.as_slice() {
            [p] => Some(*p),
            _ => None,
        }
    }

    /// The unique latch, if the loop has exactly one back edge.
    pub fn single_latch(&self) -> Option<BlockId> {
        match self.latches.as_slice() {
            [l] => Some(*l),
            _ => None,
        }
    }

    /// Loop blocks with an edge out of the loop.
    pub fn exiting_blocks(&self, cfg: &Cfg) -> Vec<BlockId> {
        let mut out = Vec::new();
        for &bb in &self.blocks {
            if cfg.succs(bb).iter().any(|s| !self.contains(*s)) {
                out.push(bb);
            }
        }
        out
    }
}

/// All natural loops of `f`, outermost-header-first by RPO.
///
/// Loops sharing a header are merged (as LLVM does). Nested loops appear
/// as separate entries whose block sets overlap.
pub fn find_loops(_f: &Function, cfg: &Cfg, dt: &DomTree) -> Vec<Loop> {
    let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
    for &bb in cfg.rpo() {
        for &succ in cfg.succs(bb) {
            if dt.is_reachable(succ) && dt.dominates(succ, bb) {
                // back edge bb -> succ
                match by_header.iter_mut().find(|(h, _)| *h == succ) {
                    Some((_, latches)) => {
                        if !latches.contains(&bb) {
                            latches.push(bb);
                        }
                    }
                    None => by_header.push((succ, vec![bb])),
                }
            }
        }
    }

    let mut loops = Vec::new();
    for (header, latches) in by_header {
        let mut blocks: Vec<BlockId> = vec![header];
        let mut seen: HashSet<BlockId> = HashSet::from([header]);
        let mut stack: Vec<BlockId> = latches.clone();
        while let Some(bb) = stack.pop() {
            if seen.insert(bb) {
                blocks.push(bb);
            } else {
                continue;
            }
            for &p in cfg.preds(bb) {
                if !seen.contains(&p) && dt.is_reachable(p) {
                    stack.push(p);
                }
            }
        }
        let mut exits = Vec::new();
        for &bb in &blocks {
            for &s in cfg.succs(bb) {
                if !seen.contains(&s) && !exits.contains(&s) {
                    exits.push(s);
                }
            }
        }
        loops.push(Loop {
            header,
            latches,
            blocks,
            exits,
        });
    }
    // Sort by header RPO index so outer loops (earlier headers) come first.
    loops.sort_by_key(|l| dt.rpo_index(l.header).unwrap_or(usize::MAX));
    loops
}

/// Convenience: compute CFG, dominators, and loops in one call.
pub fn analyze_loops(f: &Function) -> (Cfg, DomTree, Vec<Loop>) {
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let loops = find_loops(f, &cfg, &dt);
    (cfg, dt, loops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::value::Value;

    #[test]
    fn counted_loop_detected() {
        let mut b = FunctionBuilder::new("l", vec![Type::I32], Type::I32);
        let n = b.arg(0);
        let (header, exit) = b.counted_loop(n, |_, _| {});
        b.ret(Some(Value::i32(0)));
        let f = b.finish();
        let (cfg, _dt, loops) = analyze_loops(&f);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, header);
        assert_eq!(l.blocks.len(), 2); // header + body/latch
        assert_eq!(l.exits, vec![exit]);
        assert_eq!(l.preheader(&cfg), Some(f.entry));
        assert!(l.single_latch().is_some());
        assert_eq!(l.exiting_blocks(&cfg), vec![header]);
    }

    #[test]
    fn nested_loops_detected() {
        let mut b = FunctionBuilder::new("n", vec![Type::I32], Type::I32);
        let n = b.arg(0);
        let (outer_h, _) = b.counted_loop(n, |b, _| {
            let m = b.const_i32(4);
            let (_inner_h, _) = b.counted_loop(m, |_, _| {});
        });
        b.ret(Some(Value::i32(0)));
        let f = b.finish();
        let (_cfg, _dt, loops) = analyze_loops(&f);
        assert_eq!(loops.len(), 2);
        // The outer loop contains the inner loop's header.
        let outer = loops.iter().find(|l| l.header == outer_h).unwrap();
        let inner = loops.iter().find(|l| l.header != outer_h).unwrap();
        assert!(outer.contains(inner.header));
        assert!(!inner.contains(outer.header));
        assert!(outer.blocks.len() > inner.blocks.len());
    }

    #[test]
    fn straightline_has_no_loops() {
        let mut b = FunctionBuilder::new("s", vec![], Type::Void);
        b.ret(None);
        let f = b.finish();
        let (_, _, loops) = analyze_loops(&f);
        assert!(loops.is_empty());
    }

    #[test]
    fn self_loop() {
        // entry -> header; header -> header | exit (self loop)
        let mut b = FunctionBuilder::new("sl", vec![Type::I32], Type::Void);
        let header = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let c = b.icmp(crate::inst::CmpPred::Eq, b.arg(0), Value::i32(0));
        b.cond_br(c, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let (_, _, loops) = analyze_loops(&f);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, header);
        assert_eq!(loops[0].latches, vec![header]);
        assert_eq!(loops[0].blocks, vec![header]);
    }
}
