//! Scalar and pointer types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of an IR value.
///
/// The IR is integer-only (the CHStone-style HLS kernels the paper evaluates
/// are integer codecs). Pointers are untyped addresses into the flat memory
/// the interpreter models; the pointee element width lives on the producing
/// `Alloca`/`Global`/`Gep`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Type {
    /// No value (function with no return, `Store`, terminators).
    Void,
    /// 1-bit boolean (comparison results, branch conditions).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// Pointer into the flat address space.
    Ptr,
}

impl Type {
    /// Bit width of an integer type.
    ///
    /// # Panics
    ///
    /// Panics if the type is `Void` or `Ptr`.
    pub fn bits(self) -> u32 {
        match self {
            Type::I1 => 1,
            Type::I8 => 8,
            Type::I16 => 16,
            Type::I32 => 32,
            Type::I64 => 64,
            Type::Void | Type::Ptr => panic!("bits() on non-integer type {self}"),
        }
    }

    /// True for `I1`..`I64`.
    pub fn is_int(self) -> bool {
        matches!(
            self,
            Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64
        )
    }

    /// True for `Ptr`.
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::Ptr)
    }

    /// True for `Void`.
    pub fn is_void(self) -> bool {
        matches!(self, Type::Void)
    }

    /// Wrap a value to this integer type's range, sign-extended to `i64`.
    ///
    /// This is the canonical "store into a register of this width" op used
    /// by the interpreter and constant folder, so both agree on semantics.
    ///
    /// # Panics
    ///
    /// Panics if the type is not an integer type.
    pub fn wrap(self, v: i64) -> i64 {
        let bits = self.bits();
        if bits == 64 {
            return v;
        }
        let shift = 64 - bits;
        (v << shift) >> shift
    }

    /// Zero-extend interpretation of `v` as this integer type.
    ///
    /// # Panics
    ///
    /// Panics if the type is not an integer type.
    pub fn zext(self, v: i64) -> i64 {
        let bits = self.bits();
        if bits == 64 {
            return v;
        }
        v & ((1i64 << bits) - 1)
    }

    /// The integer type with the next smaller width, if any.
    pub fn narrower(self) -> Option<Type> {
        match self {
            Type::I64 => Some(Type::I32),
            Type::I32 => Some(Type::I16),
            Type::I16 => Some(Type::I8),
            Type::I8 => Some(Type::I1),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::Void => "void",
            Type::I1 => "i1",
            Type::I8 => "i8",
            Type::I16 => "i16",
            Type::I32 => "i32",
            Type::I64 => "i64",
            Type::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_sign_extends() {
        assert_eq!(Type::I8.wrap(255), -1);
        assert_eq!(Type::I8.wrap(127), 127);
        assert_eq!(Type::I8.wrap(128), -128);
        assert_eq!(Type::I16.wrap(65_535), -1);
        assert_eq!(Type::I32.wrap(u32::MAX as i64), -1);
        assert_eq!(Type::I64.wrap(-5), -5);
        assert_eq!(Type::I1.wrap(1), -1); // i1 "true" is all-ones when sign-extended
        assert_eq!(Type::I1.wrap(2), 0);
    }

    #[test]
    fn zext_masks() {
        assert_eq!(Type::I8.zext(-1), 255);
        assert_eq!(Type::I1.zext(-1), 1);
        assert_eq!(Type::I32.zext(-1), u32::MAX as i64);
        assert_eq!(Type::I64.zext(-1), -1);
    }

    #[test]
    fn bits_and_predicates() {
        assert_eq!(Type::I32.bits(), 32);
        assert!(Type::I1.is_int());
        assert!(!Type::Ptr.is_int());
        assert!(Type::Ptr.is_ptr());
        assert!(Type::Void.is_void());
    }

    #[test]
    fn display_names() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::Ptr.to_string(), "ptr");
        assert_eq!(Type::Void.to_string(), "void");
    }

    #[test]
    #[should_panic]
    fn bits_panics_on_void() {
        let _ = Type::Void.bits();
    }

    #[test]
    fn narrower_chain() {
        assert_eq!(Type::I64.narrower(), Some(Type::I32));
        assert_eq!(Type::I1.narrower(), None);
        assert_eq!(Type::Ptr.narrower(), None);
    }
}
