//! Instructions: opcodes, operands, and terminator queries.

use crate::function::{BlockId, InstId};
use crate::module::FuncId;
use crate::types::Type;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Integer binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (`x/0 == 0`; `MIN/-1` wraps).
    SDiv,
    /// Unsigned division (`x/0 == 0`).
    UDiv,
    /// Signed remainder (`x%0 == 0`).
    SRem,
    /// Unsigned remainder (`x%0 == 0`).
    URem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Left shift (amount masked to the bit width).
    Shl,
    /// Logical right shift (amount masked).
    LShr,
    /// Arithmetic right shift (amount masked).
    AShr,
}

impl BinOp {
    /// All binary operators, in a stable order.
    pub const ALL: [BinOp; 13] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::SDiv,
        BinOp::UDiv,
        BinOp::SRem,
        BinOp::URem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::LShr,
        BinOp::AShr,
    ];

    /// True if `a op b == b op a`.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// True if `(a op b) op c == a op (b op c)`.
    pub fn is_associative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// Mnemonic used by the printer.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::UDiv => "udiv",
            BinOp::SRem => "srem",
            BinOp::URem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
        }
    }
}

/// Integer comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,
}

impl CmpPred {
    /// All predicates, in a stable order.
    pub const ALL: [CmpPred; 10] = [
        CmpPred::Eq,
        CmpPred::Ne,
        CmpPred::Slt,
        CmpPred::Sle,
        CmpPred::Sgt,
        CmpPred::Sge,
        CmpPred::Ult,
        CmpPred::Ule,
        CmpPred::Ugt,
        CmpPred::Uge,
    ];

    /// The predicate with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> CmpPred {
        match self {
            CmpPred::Eq => CmpPred::Eq,
            CmpPred::Ne => CmpPred::Ne,
            CmpPred::Slt => CmpPred::Sgt,
            CmpPred::Sle => CmpPred::Sge,
            CmpPred::Sgt => CmpPred::Slt,
            CmpPred::Sge => CmpPred::Sle,
            CmpPred::Ult => CmpPred::Ugt,
            CmpPred::Ule => CmpPred::Uge,
            CmpPred::Ugt => CmpPred::Ult,
            CmpPred::Uge => CmpPred::Ule,
        }
    }

    /// The negated predicate (`!(a < b)` ⇔ `a >= b`).
    pub fn inverse(self) -> CmpPred {
        match self {
            CmpPred::Eq => CmpPred::Ne,
            CmpPred::Ne => CmpPred::Eq,
            CmpPred::Slt => CmpPred::Sge,
            CmpPred::Sle => CmpPred::Sgt,
            CmpPred::Sgt => CmpPred::Sle,
            CmpPred::Sge => CmpPred::Slt,
            CmpPred::Ult => CmpPred::Uge,
            CmpPred::Ule => CmpPred::Ugt,
            CmpPred::Ugt => CmpPred::Ule,
            CmpPred::Uge => CmpPred::Ult,
        }
    }

    /// Mnemonic used by the printer.
    pub fn name(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Slt => "slt",
            CmpPred::Sle => "sle",
            CmpPred::Sgt => "sgt",
            CmpPred::Sge => "sge",
            CmpPred::Ult => "ult",
            CmpPred::Ule => "ule",
            CmpPred::Ugt => "ugt",
            CmpPred::Uge => "uge",
        }
    }
}

/// Integer/pointer conversion operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CastOp {
    /// Truncate to a narrower integer type.
    Trunc,
    /// Zero-extend to a wider integer type.
    ZExt,
    /// Sign-extend to a wider integer type.
    SExt,
    /// Reinterpret bits (int ↔ ptr of the same role in our flat memory).
    BitCast,
}

impl CastOp {
    /// Mnemonic used by the printer.
    pub fn name(self) -> &'static str {
        match self {
            CastOp::Trunc => "trunc",
            CastOp::ZExt => "zext",
            CastOp::SExt => "sext",
            CastOp::BitCast => "bitcast",
        }
    }
}

/// The operation an [`Inst`] performs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// Two-operand integer arithmetic/logic.
    Binary(BinOp, Value, Value),
    /// Integer comparison producing `i1`.
    ICmp(CmpPred, Value, Value),
    /// `cond ? tval : fval`.
    Select {
        /// The `i1` selector.
        cond: Value,
        /// Value when `cond` is true.
        tval: Value,
        /// Value when `cond` is false.
        fval: Value,
    },
    /// SSA φ-node; one incoming value per predecessor block.
    Phi {
        /// `(predecessor, value)` pairs, one per incoming edge.
        incoming: Vec<(BlockId, Value)>,
    },
    /// Stack allocation of `count` elements of `elem_ty`; yields a pointer.
    Alloca {
        /// Element type.
        elem_ty: Type,
        /// Number of elements.
        count: u32,
    },
    /// Load a value of the instruction's result type from `ptr`.
    Load {
        /// Address to read.
        ptr: Value,
    },
    /// Store `value` to `ptr`.
    Store {
        /// Address to write.
        ptr: Value,
        /// Value being stored.
        value: Value,
    },
    /// Element pointer: `ptr + index` in units of the pointee element.
    Gep {
        /// Base pointer.
        ptr: Value,
        /// Element index.
        index: Value,
    },
    /// Conversion.
    Cast(CastOp, Value),
    /// Direct call to a function in the same module.
    Call {
        /// The callee.
        callee: FuncId,
        /// Argument values, one per parameter.
        args: Vec<Value>,
    },
    /// Unconditional branch.
    Br {
        /// Destination block.
        target: BlockId,
    },
    /// Two-way conditional branch on an `i1`.
    CondBr {
        /// The `i1` condition.
        cond: Value,
        /// Destination when true.
        then_bb: BlockId,
        /// Destination when false.
        else_bb: BlockId,
    },
    /// Multi-way branch on an integer.
    Switch {
        /// The scrutinee.
        value: Value,
        /// Destination when no case matches.
        default: BlockId,
        /// `(case value, destination)` pairs.
        cases: Vec<(i64, BlockId)>,
    },
    /// Return from the function.
    Ret {
        /// Returned value (`None` for `void` functions).
        value: Option<Value>,
    },
    /// Marks an unreachable point; executing it ends the program.
    Unreachable,
}

/// A single instruction. Its identity is its [`InstId`] inside a function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inst {
    /// Result type (`Void` for stores and terminators).
    pub ty: Type,
    /// The operation.
    pub op: Opcode,
}

impl Inst {
    /// Create an instruction.
    pub fn new(ty: Type, op: Opcode) -> Inst {
        Inst { ty, op }
    }

    /// True if this opcode ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self.op,
            Opcode::Br { .. }
                | Opcode::CondBr { .. }
                | Opcode::Switch { .. }
                | Opcode::Ret { .. }
                | Opcode::Unreachable
        )
    }

    /// True for φ-nodes.
    pub fn is_phi(&self) -> bool {
        matches!(self.op, Opcode::Phi { .. })
    }

    /// True if removing this instruction (when its result is unused) changes
    /// program behaviour: stores, calls, and terminators have side effects.
    ///
    /// Calls are conservatively side-effecting here; interprocedural passes
    /// refine this with function attributes.
    pub fn has_side_effects(&self) -> bool {
        matches!(self.op, Opcode::Store { .. } | Opcode::Call { .. }) || self.is_terminator()
    }

    /// True if the instruction reads memory.
    pub fn reads_memory(&self) -> bool {
        matches!(self.op, Opcode::Load { .. } | Opcode::Call { .. })
    }

    /// True if the instruction writes memory.
    pub fn writes_memory(&self) -> bool {
        matches!(self.op, Opcode::Store { .. } | Opcode::Call { .. })
    }

    /// All value operands, in order.
    pub fn operands(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.for_each_operand(|v| out.push(v));
        out
    }

    /// Visit each value operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match &self.op {
            Opcode::Binary(_, a, b) | Opcode::ICmp(_, a, b) => {
                f(*a);
                f(*b);
            }
            Opcode::Select { cond, tval, fval } => {
                f(*cond);
                f(*tval);
                f(*fval);
            }
            Opcode::Phi { incoming } => {
                for (_, v) in incoming {
                    f(*v);
                }
            }
            Opcode::Alloca { .. } => {}
            Opcode::Load { ptr } => f(*ptr),
            Opcode::Store { ptr, value } => {
                f(*ptr);
                f(*value);
            }
            Opcode::Gep { ptr, index } => {
                f(*ptr);
                f(*index);
            }
            Opcode::Cast(_, v) => f(*v),
            Opcode::Call { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            Opcode::Br { .. } => {}
            Opcode::CondBr { cond, .. } => f(*cond),
            Opcode::Switch { value, .. } => f(*value),
            Opcode::Ret { value } => {
                if let Some(v) = value {
                    f(*v);
                }
            }
            Opcode::Unreachable => {}
        }
    }

    /// Visit each value operand mutably (used for use-replacement).
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Value)) {
        match &mut self.op {
            Opcode::Binary(_, a, b) | Opcode::ICmp(_, a, b) => {
                f(a);
                f(b);
            }
            Opcode::Select { cond, tval, fval } => {
                f(cond);
                f(tval);
                f(fval);
            }
            Opcode::Phi { incoming } => {
                for (_, v) in incoming {
                    f(v);
                }
            }
            Opcode::Alloca { .. } => {}
            Opcode::Load { ptr } => f(ptr),
            Opcode::Store { ptr, value } => {
                f(ptr);
                f(value);
            }
            Opcode::Gep { ptr, index } => {
                f(ptr);
                f(index);
            }
            Opcode::Cast(_, v) => f(v),
            Opcode::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Opcode::Br { .. } => {}
            Opcode::CondBr { cond, .. } => f(cond),
            Opcode::Switch { value, .. } => f(value),
            Opcode::Ret { value } => {
                if let Some(v) = value {
                    f(v);
                }
            }
            Opcode::Unreachable => {}
        }
    }

    /// Successor blocks if this is a terminator (empty otherwise).
    pub fn successors(&self) -> Vec<BlockId> {
        match &self.op {
            Opcode::Br { target } => vec![*target],
            Opcode::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Opcode::Switch { default, cases, .. } => {
                let mut out = vec![*default];
                out.extend(cases.iter().map(|(_, b)| *b));
                out
            }
            _ => Vec::new(),
        }
    }

    /// Visit each successor block id mutably (used for CFG edits).
    pub fn for_each_successor_mut(&mut self, mut f: impl FnMut(&mut BlockId)) {
        match &mut self.op {
            Opcode::Br { target } => f(target),
            Opcode::CondBr {
                then_bb, else_bb, ..
            } => {
                f(then_bb);
                f(else_bb);
            }
            Opcode::Switch { default, cases, .. } => {
                f(default);
                for (_, b) in cases {
                    f(b);
                }
            }
            _ => {}
        }
    }

    /// Replace every operand equal to `from` with `to`. Returns the number
    /// of replacements.
    pub fn replace_uses(&mut self, from: Value, to: Value) -> usize {
        let mut n = 0;
        self.for_each_operand_mut(|v| {
            if *v == from {
                *v = to;
                n += 1;
            }
        });
        n
    }

    /// A short mnemonic for statistics and display.
    pub fn mnemonic(&self) -> &'static str {
        match &self.op {
            Opcode::Binary(op, ..) => op.name(),
            Opcode::ICmp(..) => "icmp",
            Opcode::Select { .. } => "select",
            Opcode::Phi { .. } => "phi",
            Opcode::Alloca { .. } => "alloca",
            Opcode::Load { .. } => "load",
            Opcode::Store { .. } => "store",
            Opcode::Gep { .. } => "getelementptr",
            Opcode::Cast(op, _) => op.name(),
            Opcode::Call { .. } => "call",
            Opcode::Br { .. } => "br",
            Opcode::CondBr { .. } => "br",
            Opcode::Switch { .. } => "switch",
            Opcode::Ret { .. } => "ret",
            Opcode::Unreachable => "unreachable",
        }
    }
}

/// Referenced instruction with its id, convenient for iteration.
#[derive(Debug, Clone, Copy)]
pub struct InstRef<'a> {
    /// The instruction's id within its function.
    pub id: InstId,
    /// The instruction itself.
    pub inst: &'a Inst,
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.mnemonic(), self.ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutativity() {
        assert!(BinOp::Add.is_commutative());
        assert!(BinOp::Xor.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Shl.is_commutative());
        assert!(BinOp::Mul.is_associative());
        assert!(!BinOp::SDiv.is_associative());
    }

    #[test]
    fn pred_swap_inverse_roundtrip() {
        for p in CmpPred::ALL {
            assert_eq!(p.swapped().swapped(), p);
            assert_eq!(p.inverse().inverse(), p);
        }
        assert_eq!(CmpPred::Slt.swapped(), CmpPred::Sgt);
        assert_eq!(CmpPred::Slt.inverse(), CmpPred::Sge);
    }

    #[test]
    fn terminator_queries() {
        let ret = Inst::new(Type::Void, Opcode::Ret { value: None });
        assert!(ret.is_terminator());
        assert!(ret.has_side_effects());
        assert!(ret.successors().is_empty());

        let br = Inst::new(
            Type::Void,
            Opcode::CondBr {
                cond: Value::TRUE,
                then_bb: BlockId::from_index(1),
                else_bb: BlockId::from_index(2),
            },
        );
        assert_eq!(
            br.successors(),
            vec![BlockId::from_index(1), BlockId::from_index(2)]
        );
    }

    #[test]
    fn operand_iteration_and_replacement() {
        let a = Value::Arg(0);
        let b = Value::i32(3);
        let mut add = Inst::new(Type::I32, Opcode::Binary(BinOp::Add, a, a));
        assert_eq!(add.operands(), vec![a, a]);
        assert_eq!(add.replace_uses(a, b), 2);
        assert_eq!(add.operands(), vec![b, b]);
    }

    #[test]
    fn memory_queries() {
        let load = Inst::new(Type::I32, Opcode::Load { ptr: Value::Arg(0) });
        assert!(load.reads_memory());
        assert!(!load.writes_memory());
        assert!(!load.has_side_effects());

        let store = Inst::new(
            Type::Void,
            Opcode::Store {
                ptr: Value::Arg(0),
                value: Value::i32(1),
            },
        );
        assert!(store.writes_memory());
        assert!(store.has_side_effects());
    }

    #[test]
    fn switch_successors() {
        let sw = Inst::new(
            Type::Void,
            Opcode::Switch {
                value: Value::Arg(0),
                default: BlockId::from_index(0),
                cases: vec![(1, BlockId::from_index(1)), (2, BlockId::from_index(2))],
            },
        );
        assert_eq!(sw.successors().len(), 3);
    }
}
