//! Control-flow-graph queries: predecessors, successors, orderings.

use crate::function::{BlockId, Function};
use std::collections::HashMap;

/// Immutable CFG snapshot of a function.
///
/// Built once per analysis/transform; cheap at this IR's scale. Holds
/// predecessor and successor lists plus a reverse post-order.
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: HashMap<BlockId, Vec<BlockId>>,
    succs: HashMap<BlockId, Vec<BlockId>>,
    rpo: Vec<BlockId>,
    entry: BlockId,
}

impl Cfg {
    /// Compute the CFG of `f`.
    pub fn new(f: &Function) -> Cfg {
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        let mut succs: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for bb in f.block_ids() {
            let s = f.successors(bb);
            for &t in &s {
                preds.entry(t).or_default().push(bb);
            }
            succs.insert(bb, s);
            preds.entry(bb).or_default();
        }
        let rpo = reverse_post_order(f);
        Cfg {
            preds,
            succs,
            rpo,
            entry: f.entry,
        }
    }

    /// Predecessors of `bb` (blocks with an edge into it). A block that
    /// branches to `bb` twice (both arms of a cond-br) appears twice.
    pub fn preds(&self, bb: BlockId) -> &[BlockId] {
        self.preds.get(&bb).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Successors of `bb`.
    pub fn succs(&self, bb: BlockId) -> &[BlockId] {
        self.succs.get(&bb).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Unique predecessors (deduplicated).
    pub fn unique_preds(&self, bb: BlockId) -> Vec<BlockId> {
        let mut v = self.preds(bb).to_vec();
        v.sort();
        v.dedup();
        v
    }

    /// Unique successors (deduplicated).
    pub fn unique_succs(&self, bb: BlockId) -> Vec<BlockId> {
        let mut v = self.succs(bb).to_vec();
        v.sort();
        v.dedup();
        v
    }

    /// Blocks reachable from entry, in reverse post-order (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// The function entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// True if `bb` is reachable from the entry block.
    pub fn is_reachable(&self, bb: BlockId) -> bool {
        self.rpo.contains(&bb)
    }

    /// Total number of CFG edges (counting duplicates).
    pub fn num_edges(&self) -> usize {
        self.succs.values().map(Vec::len).sum()
    }

    /// Edges `(src, dst)` that are critical: the source has more than one
    /// successor and the destination has more than one predecessor.
    pub fn critical_edges(&self) -> Vec<(BlockId, BlockId)> {
        let mut out = Vec::new();
        for (&src, succs) in &self.succs {
            if succs.len() <= 1 {
                continue;
            }
            for &dst in succs {
                if self.preds(dst).len() > 1 {
                    out.push((src, dst));
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Reachable blocks in reverse post-order (entry first).
pub fn reverse_post_order(f: &Function) -> Vec<BlockId> {
    let mut visited = vec![false; f.block_capacity()];
    let mut post = Vec::new();
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = Vec::new();
    if !f.block_exists(f.entry) {
        return post;
    }
    visited[f.entry.index()] = true;
    stack.push((f.entry, 0));
    while let Some(&mut (bb, ref mut idx)) = stack.last_mut() {
        let succs = f.successors(bb);
        if *idx < succs.len() {
            let next = succs[*idx];
            *idx += 1;
            if f.block_exists(next) && !visited[next.index()] {
                visited[next.index()] = true;
                stack.push((next, 0));
            }
        } else {
            post.push(bb);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Blocks not reachable from entry.
pub fn unreachable_blocks(f: &Function) -> Vec<BlockId> {
    let reach = reverse_post_order(f);
    let mut reachable = vec![false; f.block_capacity()];
    for bb in &reach {
        reachable[bb.index()] = true;
    }
    f.block_ids().filter(|bb| !reachable[bb.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::CmpPred;
    use crate::types::Type;
    use crate::value::Value;

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret(Some(Value::i32(0)));
        b.finish()
    }

    #[test]
    fn diamond_preds_succs() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(f.entry).len(), 2);
        let join = *cfg.rpo().last().unwrap();
        assert_eq!(cfg.preds(join).len(), 2);
        assert_eq!(cfg.num_edges(), 4);
        assert!(cfg.critical_edges().is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.rpo()[0], f.entry);
        assert_eq!(cfg.rpo().len(), 4);
    }

    #[test]
    fn unreachable_detected() {
        let mut b = FunctionBuilder::new("u", vec![], Type::Void);
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        assert_eq!(unreachable_blocks(&f), vec![dead]);
        assert!(!Cfg::new(&f).is_reachable(dead));
    }

    #[test]
    fn critical_edge_found() {
        // entry --cond--> {a, join}; a -> join. Edge entry->join is critical.
        let mut b = FunctionBuilder::new("c", vec![Type::I32], Type::Void);
        let a = b.new_block();
        let join = b.new_block();
        let c = b.icmp(CmpPred::Eq, b.arg(0), Value::i32(0));
        b.cond_br(c, a, join);
        b.switch_to(a);
        b.br(join);
        b.switch_to(join);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.critical_edges(), vec![(f.entry, join)]);
    }

    #[test]
    fn duplicate_edge_counted_twice() {
        let mut b = FunctionBuilder::new("dup", vec![Type::I32], Type::Void);
        let t = b.new_block();
        let c = b.icmp(CmpPred::Eq, b.arg(0), Value::i32(0));
        // both arms target the same block
        b.cond_br(c, t, t);
        b.switch_to(t);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.preds(t).len(), 2);
        assert_eq!(cfg.unique_preds(t).len(), 1);
    }
}
