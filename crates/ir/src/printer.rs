//! Textual form of modules and functions (LLVM-flavoured, for debugging).

use crate::function::{BlockId, Function};
use crate::inst::Opcode;
use crate::module::Module;
use std::fmt::Write;

/// Render a whole module.
///
/// The output is a complete, lossless description of the module: global
/// initializer values are printed (`zeroinit` or `[v, v, ...]`) and every
/// function is preceded by a `; f<slot>` comment recording its arena slot,
/// so [`crate::parser::parse_module`] can reconstruct sparse arenas (call
/// operands reference functions by slot index).
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; module {}", m.name);
    for gid in m.global_ids() {
        let g = m.global(gid);
        let init = if g.init.is_empty() {
            "zeroinit".to_string()
        } else {
            let parts: Vec<String> = g.init.iter().map(|v| v.to_string()).collect();
            format!("[{}]", parts.join(", "))
        };
        let _ = writeln!(
            out,
            "@g{} = {} {} x {} {} ; {}",
            gid.index(),
            if g.is_const { "const" } else { "global" },
            g.count,
            g.elem_ty,
            init,
            g.name,
        );
    }
    for fid in m.func_ids() {
        out.push('\n');
        let _ = writeln!(out, "; f{}", fid.index());
        out.push_str(&print_function(m.func(fid)));
    }
    out
}

/// Render one function.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{t} %arg{i}"))
        .collect();
    // Attributes are semantic state (passes consult them), so they must
    // be visible in the printed form: the evaluation cache fingerprints
    // modules by their text, and an attribute-only change that printed
    // identically would alias two genuinely different modules.
    let mut attrs = String::new();
    for (set, name) in [
        (f.attrs.readnone, "readnone"),
        (f.attrs.readonly, "readonly"),
        (f.attrs.internal, "internal"),
        (f.attrs.always_inline, "alwaysinline"),
        (f.attrs.outlined, "outlined"),
    ] {
        if set {
            attrs.push(' ');
            attrs.push_str(name);
        }
    }
    let _ = writeln!(
        out,
        "define {} @{}({}){} {{",
        f.ret_ty,
        f.name,
        params.join(", "),
        attrs
    );
    for bb in f.block_ids() {
        let _ = writeln!(out, "b{}:", bb.index());
        for (id, inst) in f.insts_in(bb) {
            let body = format_opcode(f, &inst.op);
            if inst.ty.is_void() {
                let _ = writeln!(out, "  {body}");
            } else {
                let _ = writeln!(out, "  %{} = {} {}", id.index(), inst.ty, body);
            }
        }
    }
    out.push_str("}\n");
    out
}

fn bb_name(bb: BlockId) -> String {
    format!("b{}", bb.index())
}

fn format_opcode(f: &Function, op: &Opcode) -> String {
    let _ = f;
    match op {
        Opcode::Binary(b, x, y) => format!("{} {x}, {y}", b.name()),
        Opcode::ICmp(p, x, y) => format!("icmp {} {x}, {y}", p.name()),
        Opcode::Select { cond, tval, fval } => format!("select {cond}, {tval}, {fval}"),
        Opcode::Phi { incoming } => {
            let parts: Vec<String> = incoming
                .iter()
                .map(|(bb, v)| format!("[{v}, {}]", bb_name(*bb)))
                .collect();
            format!("phi {}", parts.join(", "))
        }
        Opcode::Alloca { elem_ty, count } => format!("alloca {count} x {elem_ty}"),
        Opcode::Load { ptr } => format!("load {ptr}"),
        Opcode::Store { ptr, value } => format!("store {value}, {ptr}"),
        Opcode::Gep { ptr, index } => format!("getelementptr {ptr}, {index}"),
        Opcode::Cast(c, v) => format!("{} {v}", c.name()),
        Opcode::Call { callee, args } => {
            let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            format!("call @f{}({})", callee.index(), parts.join(", "))
        }
        Opcode::Br { target } => format!("br {}", bb_name(*target)),
        Opcode::CondBr {
            cond,
            then_bb,
            else_bb,
        } => format!("br {cond}, {}, {}", bb_name(*then_bb), bb_name(*else_bb)),
        Opcode::Switch {
            value,
            default,
            cases,
        } => {
            let parts: Vec<String> = cases
                .iter()
                .map(|(c, bb)| format!("{c} -> {}", bb_name(*bb)))
                .collect();
            format!(
                "switch {value}, default {} [{}]",
                bb_name(*default),
                parts.join(", ")
            )
        }
        Opcode::Ret { value } => match value {
            Some(v) => format!("ret {v}"),
            None => "ret void".to_string(),
        },
        Opcode::Unreachable => "unreachable".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, CmpPred};
    use crate::module::Global;
    use crate::types::Type;
    use crate::value::Value;

    #[test]
    fn prints_function_with_all_shapes() {
        let mut m = Module::new("demo");
        let g = m.add_global(Global::constant("tbl", Type::I32, vec![1, 2]));
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(10));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let p = b.gep(Value::Global(g), Value::i32(1));
        let v = b.load(Type::I32, p);
        b.br(j);
        b.switch_to(e);
        let w = b.binary(BinOp::Add, b.arg(0), Value::i32(1));
        b.br(j);
        b.switch_to(j);
        let phi = b.phi(Type::I32, vec![(t, v), (e, w)]);
        b.ret(Some(phi));
        m.add_function(b.finish());

        let text = print_module(&m);
        assert!(text.contains("define i32 @main"));
        assert!(text.contains("icmp slt"));
        assert!(text.contains("phi"));
        assert!(text.contains("getelementptr"));
        assert!(text.contains("@g0 = const 2 x i32 [1, 2] ; tbl"));
        assert!(text.contains("; f0\ndefine"));
        // Every live block is printed.
        for i in 0..4 {
            assert!(text.contains(&format!("b{i}:")), "missing block b{i}");
        }
    }

    #[test]
    fn void_instructions_have_no_result() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let a = b.alloca(Type::I32, 1);
        b.store(a, Value::i32(1));
        b.ret(None);
        let text = print_function(&b.finish());
        assert!(text.contains("store i32 1"));
        assert!(text.contains("ret void"));
        assert!(!text.contains("= void"));
    }
}
