//! Ergonomic construction of functions.

use crate::function::{BlockId, Function, InstId};
use crate::inst::{BinOp, CastOp, CmpPred, Inst, Opcode};
use crate::module::{FuncId, GlobalId};
use crate::types::Type;
use crate::value::Value;

/// Builds a [`Function`] one instruction at a time, tracking an insertion
/// point like LLVM's `IRBuilder`.
///
/// # Example
///
/// ```
/// use autophase_ir::{builder::FunctionBuilder, Type, BinOp, CmpPred};
///
/// // fn clamp0(x: i32) -> i32 { if x < 0 { 0 } else { x } }
/// let mut b = FunctionBuilder::new("clamp0", vec![Type::I32], Type::I32);
/// let x = b.arg(0);
/// let zero = b.const_i32(0);
/// let neg = b.icmp(CmpPred::Slt, x, zero);
/// let sel = b.select(neg, zero, x);
/// b.ret(Some(sel));
/// let f = b.finish();
/// assert_eq!(f.num_insts(), 3);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
}

impl FunctionBuilder {
    /// Start building a function; the insertion point is its entry block.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret_ty: Type) -> FunctionBuilder {
        let func = Function::new(name, params, ret_ty);
        let current = func.entry;
        FunctionBuilder { func, current }
    }

    /// The entry block id.
    pub fn entry_block(&self) -> BlockId {
        self.func.entry
    }

    /// Create a new empty block (does not move the insertion point).
    pub fn new_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Move the insertion point to the end of `bb`.
    pub fn switch_to(&mut self, bb: BlockId) {
        self.current = bb;
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Finish and return the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Read access to the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Mutable access for edits the builder doesn't cover.
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }

    fn emit(&mut self, ty: Type, op: Opcode) -> Value {
        let id = self.func.append_inst(self.current, Inst::new(ty, op));
        Value::Inst(id)
    }

    fn emit_void(&mut self, op: Opcode) -> InstId {
        self.func
            .append_inst(self.current, Inst::new(Type::Void, op))
    }

    // ---- values ----

    /// Function argument `i` as a value.
    pub fn arg(&self, i: u32) -> Value {
        Value::Arg(i)
    }

    /// `i32` constant.
    pub fn const_i32(&self, v: i32) -> Value {
        Value::i32(v)
    }

    /// `i64` constant.
    pub fn const_i64(&self, v: i64) -> Value {
        Value::i64(v)
    }

    /// Integer constant of an arbitrary type.
    pub fn const_int(&self, ty: Type, v: i64) -> Value {
        Value::const_int(ty, v)
    }

    /// Address of a global.
    pub fn global(&self, g: GlobalId) -> Value {
        Value::Global(g)
    }

    // ---- instructions ----

    /// Two-operand arithmetic/logic. Result type follows `lhs`'s type when
    /// it is an instruction/constant; otherwise `i32`.
    pub fn binary(&mut self, op: BinOp, lhs: Value, rhs: Value) -> Value {
        let ty = self.type_of(lhs);
        self.emit(ty, Opcode::Binary(op, lhs, rhs))
    }

    /// Typed binary operation.
    pub fn binary_ty(&mut self, ty: Type, op: BinOp, lhs: Value, rhs: Value) -> Value {
        self.emit(ty, Opcode::Binary(op, lhs, rhs))
    }

    /// Integer comparison producing `i1`.
    pub fn icmp(&mut self, pred: CmpPred, lhs: Value, rhs: Value) -> Value {
        self.emit(Type::I1, Opcode::ICmp(pred, lhs, rhs))
    }

    /// `cond ? tval : fval`.
    pub fn select(&mut self, cond: Value, tval: Value, fval: Value) -> Value {
        let ty = self.type_of(tval);
        self.emit(ty, Opcode::Select { cond, tval, fval })
    }

    /// φ-node with explicit incoming edges.
    pub fn phi(&mut self, ty: Type, incoming: Vec<(BlockId, Value)>) -> Value {
        // φ-nodes must precede non-φ instructions: insert after existing φs.
        let pos = self
            .func
            .block(self.current)
            .insts
            .iter()
            .take_while(|&&id| self.func.inst(id).is_phi())
            .count();
        let id = self
            .func
            .insert_inst(self.current, pos, Inst::new(ty, Opcode::Phi { incoming }));
        Value::Inst(id)
    }

    /// Stack array of `count` elements; yields a pointer.
    pub fn alloca(&mut self, elem_ty: Type, count: u32) -> Value {
        self.emit(Type::Ptr, Opcode::Alloca { elem_ty, count })
    }

    /// Load a `ty` from `ptr`.
    pub fn load(&mut self, ty: Type, ptr: Value) -> Value {
        self.emit(ty, Opcode::Load { ptr })
    }

    /// Store `value` to `ptr`.
    pub fn store(&mut self, ptr: Value, value: Value) -> InstId {
        self.emit_void(Opcode::Store { ptr, value })
    }

    /// Pointer to element `index` of `ptr`'s array.
    pub fn gep(&mut self, ptr: Value, index: Value) -> Value {
        self.emit(Type::Ptr, Opcode::Gep { ptr, index })
    }

    /// Conversion; the result type must be provided.
    pub fn cast(&mut self, op: CastOp, ty: Type, v: Value) -> Value {
        self.emit(ty, Opcode::Cast(op, v))
    }

    /// Call `callee` with `args`; `ret_ty` is the callee's return type.
    pub fn call(&mut self, callee: FuncId, ret_ty: Type, args: Vec<Value>) -> Value {
        self.emit(ret_ty, Opcode::Call { callee, args })
    }

    // ---- terminators ----

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) -> InstId {
        self.emit_void(Opcode::Br { target })
    }

    /// Conditional branch on an `i1`.
    pub fn cond_br(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId) -> InstId {
        self.emit_void(Opcode::CondBr {
            cond,
            then_bb,
            else_bb,
        })
    }

    /// Multi-way switch.
    pub fn switch(&mut self, value: Value, default: BlockId, cases: Vec<(i64, BlockId)>) -> InstId {
        self.emit_void(Opcode::Switch {
            value,
            default,
            cases,
        })
    }

    /// Return (with a value unless the function returns `void`).
    pub fn ret(&mut self, value: Option<Value>) -> InstId {
        self.emit_void(Opcode::Ret { value })
    }

    /// Unreachable terminator.
    pub fn unreachable(&mut self) -> InstId {
        self.emit_void(Opcode::Unreachable)
    }

    // ---- loop sugar ----

    /// Emit a counted loop `for i in 0..n` and invoke `body(builder, i)`
    /// inside it. Returns `(loop_header, exit_block)`; the insertion point
    /// is left at the exit block.
    ///
    /// The loop is emitted in unrotated "while" form (header tests the
    /// condition), leaving room for `-loop-rotate` to improve it.
    pub fn counted_loop(
        &mut self,
        n: Value,
        body: impl FnOnce(&mut FunctionBuilder, Value),
    ) -> (BlockId, BlockId) {
        let preheader = self.current;
        let header = self.new_block();
        let body_bb = self.new_block();
        let exit = self.new_block();

        self.br(header);

        self.switch_to(header);
        let i = self.phi(Type::I32, vec![(preheader, Value::i32(0))]);
        let cont = self.icmp(CmpPred::Slt, i, n);
        self.cond_br(cont, body_bb, exit);

        self.switch_to(body_bb);
        body(self, i);
        // The body may have created more blocks; the increment goes at the
        // current insertion point, then jumps back to the header.
        let latch = self.current;
        let next = self.binary(BinOp::Add, i, Value::i32(1));
        self.br(header);

        // Patch the φ with the latch edge.
        if let Value::Inst(phi_id) = i {
            if let Opcode::Phi { incoming } = &mut self.func.inst_mut(phi_id).op {
                incoming.push((latch, next));
            }
        }

        self.switch_to(exit);
        (header, exit)
    }

    /// Best-effort type of a value (for result-type inference in `binary`).
    pub fn type_of(&self, v: Value) -> Type {
        match v {
            Value::Inst(id) => self.func.inst(id).ty,
            Value::ConstInt(ty, _) | Value::Undef(ty) => ty,
            Value::Arg(i) => self
                .func
                .params
                .get(i as usize)
                .copied()
                .unwrap_or(Type::I32),
            Value::Global(_) => Type::Ptr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;

    #[test]
    fn build_branchy_function() {
        // fn abs(x) { if x < 0 { -x } else { x } }
        let mut b = FunctionBuilder::new("abs", vec![Type::I32], Type::I32);
        let then_bb = b.new_block();
        let else_bb = b.new_block();
        let join = b.new_block();

        let x = b.arg(0);
        let zero = b.const_i32(0);
        let neg = b.icmp(CmpPred::Slt, x, zero);
        b.cond_br(neg, then_bb, else_bb);

        b.switch_to(then_bb);
        let negated = b.binary(BinOp::Sub, zero, x);
        b.br(join);

        b.switch_to(else_bb);
        b.br(join);

        b.switch_to(join);
        let result = b.phi(Type::I32, vec![(then_bb, negated), (else_bb, x)]);
        b.ret(Some(result));

        let f = b.finish();
        assert_eq!(f.num_blocks(), 4);
        assert_eq!(f.successors(f.entry).len(), 2);
    }

    #[test]
    fn counted_loop_shape() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        let n = b.const_i32(10);
        let (header, _exit) = b.counted_loop(n, |b, i| {
            let cur = b.load(Type::I32, acc);
            let next = b.binary(BinOp::Add, cur, i);
            b.store(acc, next);
        });
        let total = b.load(Type::I32, acc);
        b.ret(Some(total));
        let f = b.finish();
        // header has two predecessors: preheader and latch
        let preds: Vec<_> = f
            .block_ids()
            .filter(|&bb| f.successors(bb).contains(&header))
            .collect();
        assert_eq!(preds.len(), 2);
        m.add_function(f);
        let trace = crate::interp::run_main(&m, 100_000).unwrap();
        assert_eq!(trace.return_value, Some(45));
    }

    #[test]
    fn type_inference() {
        let mut b = FunctionBuilder::new("t", vec![Type::I64], Type::I64);
        let x = b.arg(0);
        let y = b.binary(BinOp::Mul, x, b.const_i64(3));
        assert_eq!(b.type_of(y), Type::I64);
        let c = b.icmp(CmpPred::Eq, y, x);
        assert_eq!(b.type_of(c), Type::I1);
        b.ret(Some(y));
    }

    #[test]
    fn phi_inserted_before_non_phis() {
        let mut b = FunctionBuilder::new("p", vec![], Type::I32);
        let e = b.entry_block();
        let v = b.binary(BinOp::Add, Value::i32(1), Value::i32(2));
        let _phi = b.phi(Type::I32, vec![]);
        let f = b.func();
        let first = f.block(e).insts[0];
        assert!(f.inst(first).is_phi());
        let _ = v;
    }
}
