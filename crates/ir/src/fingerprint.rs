//! Content fingerprints for functions, globals, and modules.
//!
//! These are the shared primitives behind every content-addressed cache
//! in the workspace: the evaluation cache's module fingerprints, the HLS
//! per-function schedule cache, and the incremental fingerprint memo all
//! key off the values defined here, so they agree by construction.
//!
//! A function's fingerprint hashes its printed form — the printer
//! includes attributes precisely because they are semantic state. A
//! global's fingerprint hashes its structural content directly (the
//! printed form elides initializer values). A module's fingerprint is an
//! order-sensitive combination of its name, global fingerprints, and
//! per-slot function fingerprints, which is what lets an incremental
//! maintainer re-hash only dirty slots and still produce the same value
//! as hashing from scratch.

use crate::function::Function;
use crate::module::{Global, Module};
use crate::printer::print_function;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer — a strong 64-bit mix.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fingerprint of one function's full content (printed form, which
/// includes signature, attributes, and body).
pub fn fingerprint_function(f: &Function) -> u64 {
    fnv1a(print_function(f).as_bytes())
}

/// Fingerprint of one global's content. Hashes the structural fields
/// directly — unlike the printed form, this sees initializer *values*,
/// so constant-folding a global never aliases two distinct states.
pub fn fingerprint_global(g: &Global) -> u64 {
    let mut h = fnv1a(g.name.as_bytes());
    h = mix64(h ^ g.elem_ty.bits() as u64);
    h = mix64(h ^ g.count as u64);
    h = mix64(h ^ g.is_const as u64);
    for &v in &g.init {
        h = mix64(h ^ v as u64);
    }
    h
}

/// Order-sensitive fold of per-slot fingerprints into one value.
///
/// Empty slots contribute a fixed sentinel so `[Some(a), None]` and
/// `[None, Some(a)]` differ — slot position is semantic (ids are
/// indices).
pub fn combine_slots(seed: u64, slots: impl Iterator<Item = Option<u64>>) -> u64 {
    let mut h = mix64(seed);
    for s in slots {
        h = mix64(h ^ s.unwrap_or(0xDEAD_5107_DEAD_5107));
    }
    h
}

/// Fingerprint of a module's current state, defined as the combination
/// of its name, global fingerprints, and per-slot function fingerprints.
pub fn fingerprint_module(m: &Module) -> u64 {
    let name_fp = fnv1a(m.name.as_bytes());
    let globals_fp = combine_slots(
        0x610B_A150_610B_A150,
        (0..m.global_capacity()).map(|i| {
            m.global_arc(crate::module::GlobalId::from_index(i))
                .map(|g| fingerprint_global(g))
        }),
    );
    let funcs_fp = combine_slots(
        0xF07C_F07C_F07C_F07C,
        (0..m.func_capacity()).map(|i| {
            m.func_arc(crate::module::FuncId::from_index(i))
                .map(|f| fingerprint_function(f))
        }),
    );
    mix64(name_fp ^ mix64(globals_fp ^ mix64(funcs_fp)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::value::Value;

    fn sample() -> Module {
        let mut m = Module::new("t");
        m.add_global(Global::constant("tbl", Type::I32, vec![1, 2, 3]));
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        b.ret(Some(Value::i32(0)));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn stable_across_clones() {
        let m = sample();
        assert_eq!(fingerprint_module(&m), fingerprint_module(&m.clone()));
        assert_eq!(fingerprint_module(&m), fingerprint_module(&m.deep_clone()));
    }

    #[test]
    fn global_init_values_distinguish() {
        let mut a = Module::new("t");
        a.add_global(Global::constant("tbl", Type::I32, vec![1, 2, 3]));
        let mut b = Module::new("t");
        b.add_global(Global::constant("tbl", Type::I32, vec![1, 2, 4]));
        assert_ne!(fingerprint_module(&a), fingerprint_module(&b));
    }

    #[test]
    fn slot_position_is_semantic() {
        let f = |name: &str| {
            let mut b = FunctionBuilder::new(name, vec![], Type::Void);
            b.ret(None);
            b.finish()
        };
        let mut a = Module::new("t");
        let ai = a.add_function(f("x"));
        a.add_function(f("main"));
        a.remove_function(ai);
        let mut b = Module::new("t");
        b.add_function(f("main"));
        let bi = b.add_function(f("x"));
        b.remove_function(bi);
        // Both hold just "main", but in different slots.
        assert_ne!(fingerprint_module(&a), fingerprint_module(&b));
    }

    #[test]
    fn function_change_changes_fingerprint() {
        let m = sample();
        let mut m2 = m.clone();
        let main = m2.main().unwrap();
        m2.func_mut(main).name = "main2".to_string();
        assert_ne!(fingerprint_module(&m), fingerprint_module(&m2));
    }
}
