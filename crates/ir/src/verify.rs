//! Structural and SSA well-formedness checks.
//!
//! The verifier is the primary invariant in the pass property tests: every
//! optimization pass must leave a verifiable module behind.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::function::{BlockId, Function, InstId};
use crate::inst::Opcode;
use crate::module::{FuncId, Module};
use crate::value::Value;
use std::fmt;

/// A verification failure with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The function the problem is in (module-level problems use index 0's
    /// id with an explanatory message).
    pub func: String,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in @{}: {}", self.func, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole module.
///
/// # Errors
///
/// Returns the first violation found: dangling function/global references,
/// call-arity mismatches, or any per-function violation from
/// [`verify_function`].
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    verify_functions(m, m.func_ids())
}

/// Verify a subset of a module's functions (function-local checks plus their
/// outgoing call and global references).
///
/// This is the incremental-evaluation entry point: after a pass that touched
/// only some functions, checking just those functions is sound *provided no
/// function or global was removed and no signature changed* — a clean caller
/// of a re-signatured or deleted callee would otherwise be missed. Callers
/// (see `passes::checked`) must fall back to [`verify_module`] on any
/// structural or signature change.
///
/// # Errors
///
/// Returns the first violation found in the given functions.
pub fn verify_functions(
    m: &Module,
    ids: impl IntoIterator<Item = FuncId>,
) -> Result<(), VerifyError> {
    for fid in ids {
        if !m.func_exists(fid) {
            continue;
        }
        let f = m.func(fid);
        verify_function(f).map_err(|msg| VerifyError {
            func: f.name.clone(),
            message: msg,
        })?;
        // Cross-function checks.
        for bb in f.block_ids() {
            for (_, inst) in f.insts_in(bb) {
                if let Opcode::Call { callee, args } = &inst.op {
                    if !m.func_exists(*callee) {
                        return Err(VerifyError {
                            func: f.name.clone(),
                            message: format!("call to removed function f{}", callee.index()),
                        });
                    }
                    let target = m.func(*callee);
                    if args.len() != target.params.len() {
                        return Err(VerifyError {
                            func: f.name.clone(),
                            message: format!(
                                "call to @{} passes {} args, expected {}",
                                target.name,
                                args.len(),
                                target.params.len()
                            ),
                        });
                    }
                    if inst.ty != target.ret_ty {
                        return Err(VerifyError {
                            func: f.name.clone(),
                            message: format!(
                                "call to @{} has result type {}, callee returns {}",
                                target.name, inst.ty, target.ret_ty
                            ),
                        });
                    }
                }
                let mut bad_global = None;
                inst.for_each_operand(|v| {
                    if let Value::Global(g) = v {
                        if !m.global_exists(g) {
                            bad_global = Some(g);
                        }
                    }
                });
                if let Some(g) = bad_global {
                    return Err(VerifyError {
                        func: f.name.clone(),
                        message: format!("use of removed global g{}", g.index()),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Verify a single function. Returns a description of the first violation.
///
/// Checks: every block ends in exactly one terminator (and has no terminator
/// mid-block); φ-nodes precede non-φ instructions and their incoming lists
/// match the block's unique predecessors; branch targets exist; operand
/// references point at live instructions; argument indices are in range;
/// in reachable code every instruction use is dominated by its definition;
/// the entry block has no φ-nodes; no instruction appears in two blocks.
///
/// # Errors
///
/// Returns a human-readable message describing the first violation.
pub fn verify_function(f: &Function) -> Result<(), String> {
    // Block-local structure.
    let mut placement: Vec<Option<BlockId>> = vec![None; f.inst_capacity()];
    for bb in f.block_ids() {
        let insts = &f.block(bb).insts;
        if insts.is_empty() {
            return Err(format!("block b{} is empty", bb.index()));
        }
        let mut seen_non_phi = false;
        for (i, &iid) in insts.iter().enumerate() {
            if !f.inst_exists(iid) {
                return Err(format!(
                    "block b{} lists removed instruction %{}",
                    bb.index(),
                    iid.index()
                ));
            }
            if let Some(other) = placement[iid.index()] {
                return Err(format!(
                    "instruction %{} appears in both b{} and b{}",
                    iid.index(),
                    other.index(),
                    bb.index()
                ));
            }
            placement[iid.index()] = Some(bb);
            let inst = f.inst(iid);
            let is_last = i == insts.len() - 1;
            if inst.is_terminator() && !is_last {
                return Err(format!(
                    "terminator %{} is not last in b{}",
                    iid.index(),
                    bb.index()
                ));
            }
            if is_last && !inst.is_terminator() {
                return Err(format!(
                    "block b{} does not end in a terminator",
                    bb.index()
                ));
            }
            if inst.is_phi() {
                if seen_non_phi {
                    return Err(format!(
                        "phi %{} after non-phi instruction in b{}",
                        iid.index(),
                        bb.index()
                    ));
                }
                if bb == f.entry {
                    return Err("phi in entry block".to_string());
                }
            } else {
                seen_non_phi = true;
            }
            // Branch targets must exist.
            for succ in inst.successors() {
                if !f.block_exists(succ) {
                    return Err(format!(
                        "b{} branches to removed block b{}",
                        bb.index(),
                        succ.index()
                    ));
                }
            }
            // Operand references must be live.
            let mut err: Option<String> = None;
            inst.for_each_operand(|v| match v {
                Value::Inst(id) if !f.inst_exists(id) => {
                    err = Some(format!(
                        "%{} uses removed instruction %{}",
                        iid.index(),
                        id.index()
                    ));
                }
                Value::Arg(a) if a as usize >= f.params.len() => {
                    err = Some(format!("%{} uses out-of-range %arg{}", iid.index(), a));
                }
                _ => {}
            });
            if let Some(e) = err {
                return Err(e);
            }
        }
    }

    // CFG-level: φ incoming edges match unique predecessors in reachable code.
    // Unreachable predecessors need no incoming entry (passes only maintain
    // φ-nodes for live edges), but stray incoming from a non-predecessor is
    // always an error.
    let cfg = Cfg::new(f);
    for &bb in cfg.rpo() {
        let all_preds = cfg.unique_preds(bb);
        let preds: Vec<BlockId> = all_preds
            .iter()
            .copied()
            .filter(|p| cfg.is_reachable(*p))
            .collect();
        for (iid, inst) in f.insts_in(bb) {
            if let Opcode::Phi { incoming } = &inst.op {
                let mut in_blocks: Vec<BlockId> = incoming.iter().map(|(b, _)| *b).collect();
                in_blocks.sort();
                let mut dedup = in_blocks.clone();
                dedup.dedup();
                if dedup.len() != in_blocks.len() {
                    return Err(format!(
                        "phi %{} has duplicate incoming blocks",
                        iid.index()
                    ));
                }
                // Every reachable predecessor must have an incoming value,
                // and every incoming block must be a predecessor.
                for p in &preds {
                    if !in_blocks.contains(p) {
                        return Err(format!(
                            "phi %{} in b{} missing incoming for pred b{}",
                            iid.index(),
                            bb.index(),
                            p.index()
                        ));
                    }
                }
                for ib in &in_blocks {
                    if !all_preds.contains(ib) {
                        return Err(format!(
                            "phi %{} in b{} has incoming from non-pred b{}",
                            iid.index(),
                            bb.index(),
                            ib.index()
                        ));
                    }
                }
            }
        }
    }

    // SSA dominance: defs dominate uses (reachable code only).
    let dt = DomTree::new(f, &cfg);
    let mut order_in_block: Vec<usize> = vec![0; f.inst_capacity()];
    for bb in f.block_ids() {
        for (i, &iid) in f.block(bb).insts.iter().enumerate() {
            order_in_block[iid.index()] = i;
        }
    }
    for &bb in cfg.rpo() {
        for (iid, inst) in f.insts_in(bb) {
            let mut err: Option<String> = None;
            match &inst.op {
                Opcode::Phi { incoming } => {
                    for (pred, v) in incoming {
                        if let Value::Inst(def) = v {
                            if let Some(def_bb) = placement[def.index()] {
                                if dt.is_reachable(*pred) && !dt.dominates(def_bb, *pred) {
                                    err = Some(format!(
                                        "phi %{} incoming %{} from b{} not dominated by def in b{}",
                                        iid.index(),
                                        def.index(),
                                        pred.index(),
                                        def_bb.index()
                                    ));
                                }
                            } else {
                                err = Some(format!(
                                    "phi %{} uses unplaced instruction %{}",
                                    iid.index(),
                                    def.index()
                                ));
                            }
                        }
                    }
                }
                _ => {
                    inst.for_each_operand(|v| {
                        if err.is_some() {
                            return;
                        }
                        if let Value::Inst(def) = v {
                            match placement[def.index()] {
                                Some(def_bb) if def_bb == bb => {
                                    if order_in_block[def.index()] >= order_in_block[iid.index()] {
                                        err = Some(format!(
                                            "%{} used before defined in b{}",
                                            def.index(),
                                            bb.index()
                                        ));
                                    }
                                }
                                Some(def_bb) => {
                                    if !dt.dominates(def_bb, bb) {
                                        err = Some(format!(
                                            "use of %{} in b{} not dominated by def in b{}",
                                            def.index(),
                                            bb.index(),
                                            def_bb.index()
                                        ));
                                    }
                                }
                                None => {
                                    err = Some(format!(
                                        "%{} uses unplaced instruction %{}",
                                        iid.index(),
                                        def.index()
                                    ));
                                }
                            }
                        }
                    });
                }
            }
            if let Some(e) = err {
                return Err(e);
            }
        }
    }

    Ok(())
}

/// Verify and panic with a pretty message on failure (test helper).
///
/// # Panics
///
/// Panics if the module fails verification.
pub fn assert_verified(m: &Module) {
    if let Err(e) = verify_module(m) {
        panic!("{e}\n{}", crate::printer::print_module(m));
    }
}

/// Identify the function id a name refers to, for diagnostics.
pub fn func_named(m: &Module, name: &str) -> Option<FuncId> {
    m.func_by_name(name)
}

/// Check a single instruction id is placed exactly once (debug helper).
pub fn is_placed_once(f: &Function, id: InstId) -> bool {
    let mut n = 0;
    for bb in f.block_ids() {
        n += f.block(bb).insts.iter().filter(|&&i| i == id).count();
    }
    n == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, CmpPred, Inst};
    use crate::types::Type;

    fn module_with(f: Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    #[test]
    fn valid_function_passes() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let x = b.binary(BinOp::Add, b.arg(0), Value::i32(1));
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I32, vec![(t, x), (e, b.arg(0))]);
        b.ret(Some(p));
        assert!(verify_module(&module_with(b.finish())).is_ok());
    }

    #[test]
    fn missing_terminator_caught() {
        let mut f = Function::new("main", vec![], Type::Void);
        let e = f.entry;
        f.append_inst(
            e,
            Inst::new(
                Type::I32,
                Opcode::Binary(BinOp::Add, Value::i32(1), Value::i32(2)),
            ),
        );
        assert!(verify_function(&f).unwrap_err().contains("terminator"));
    }

    #[test]
    fn empty_block_caught() {
        let f = Function::new("main", vec![], Type::Void);
        assert!(verify_function(&f).unwrap_err().contains("empty"));
    }

    #[test]
    fn phi_missing_pred_caught() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        // phi only lists one of the two predecessors
        let p = b.phi(Type::I32, vec![(t, Value::i32(1))]);
        b.ret(Some(p));
        let err = verify_function(&b.finish()).unwrap_err();
        assert!(err.contains("missing incoming"), "{err}");
    }

    #[test]
    fn use_before_def_caught() {
        let mut f = Function::new("main", vec![], Type::I32);
        let e = f.entry;
        // ret uses %1 which is defined after it would run — construct use
        // of a later instruction in the same block.
        let later = InstId::from_index(1);
        f.append_inst(
            e,
            Inst::new(
                Type::I32,
                Opcode::Binary(BinOp::Add, Value::Inst(later), Value::i32(1)),
            ),
        );
        f.append_inst(
            e,
            Inst::new(
                Type::I32,
                Opcode::Binary(BinOp::Add, Value::i32(1), Value::i32(2)),
            ),
        );
        f.append_inst(e, Inst::new(Type::Void, Opcode::Ret { value: None }));
        let err = verify_function(&f).unwrap_err();
        assert!(err.contains("used before defined"), "{err}");
    }

    #[test]
    fn dangling_call_caught() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let r = b.call(FuncId::from_index(7), Type::I32, vec![]);
        b.ret(Some(r));
        let err = verify_module(&module_with(b.finish())).unwrap_err();
        assert!(err.message.contains("removed function"));
    }

    #[test]
    fn arity_mismatch_caught() {
        let mut m = Module::new("t");
        let callee = m.add_function(Function::new("f", vec![Type::I32], Type::Void));
        {
            let f = m.func_mut(callee);
            let e = f.entry;
            f.append_inst(e, Inst::new(Type::Void, Opcode::Ret { value: None }));
        }
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        b.call(callee, Type::Void, vec![]); // no args, callee wants 1
        b.ret(None);
        m.add_function(b.finish());
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("args"));
    }

    #[test]
    fn cross_block_dominance_violation_caught() {
        // then-block defines %x, join uses it directly (no phi): invalid.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let x = b.binary(BinOp::Add, b.arg(0), Value::i32(1));
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret(Some(x)); // use not dominated by def
        let err = verify_function(&b.finish()).unwrap_err();
        assert!(err.contains("not dominated"), "{err}");
    }

    #[test]
    fn phi_in_entry_caught() {
        let mut f = Function::new("main", vec![], Type::I32);
        let e = f.entry;
        f.append_inst(
            f.entry,
            Inst::new(Type::I32, Opcode::Phi { incoming: vec![] }),
        );
        f.append_inst(e, Inst::new(Type::Void, Opcode::Ret { value: None }));
        assert!(verify_function(&f).unwrap_err().contains("entry"));
    }
}
