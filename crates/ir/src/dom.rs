//! Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).

use crate::cfg::Cfg;
use crate::function::{BlockId, Function};
use std::collections::HashMap;

/// Dominator tree over the reachable blocks of a function.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each reachable block (entry maps to itself).
    idom: HashMap<BlockId, BlockId>,
    /// RPO index of each reachable block.
    rpo_index: HashMap<BlockId, usize>,
    entry: BlockId,
}

impl DomTree {
    /// Compute dominators for `f` given its CFG.
    pub fn new(f: &Function, cfg: &Cfg) -> DomTree {
        let rpo = cfg.rpo().to_vec();
        let mut rpo_index = HashMap::new();
        for (i, &bb) in rpo.iter().enumerate() {
            rpo_index.insert(bb, i);
        }
        let entry = f.entry;
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(entry, entry);

        let mut changed = true;
        while changed {
            changed = false;
            for &bb in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(bb) {
                    if !rpo_index.contains_key(&p) {
                        continue; // unreachable predecessor
                    }
                    if idom.contains_key(&p) {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, &rpo_index, cur, p),
                        });
                    }
                }
                if let Some(ni) = new_idom {
                    if idom.get(&bb) != Some(&ni) {
                        idom.insert(bb, ni);
                        changed = true;
                    }
                }
            }
        }

        DomTree {
            idom,
            rpo_index,
            entry,
        }
    }

    /// Immediate dominator of `bb` (`None` for the entry block or
    /// unreachable blocks).
    pub fn idom(&self, bb: BlockId) -> Option<BlockId> {
        if bb == self.entry {
            return None;
        }
        self.idom.get(&bb).copied()
    }

    /// True if `a` dominates `b` (reflexive: every block dominates itself).
    ///
    /// Unreachable blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.idom.contains_key(&a) || !self.idom.contains_key(&b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[&cur];
        }
    }

    /// True if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// True if the block is reachable (has a dominator entry).
    pub fn is_reachable(&self, bb: BlockId) -> bool {
        self.idom.contains_key(&bb)
    }

    /// Children of `bb` in the dominator tree.
    pub fn children(&self, bb: BlockId) -> Vec<BlockId> {
        let mut out: Vec<BlockId> = self
            .idom
            .iter()
            .filter(|&(&b, &d)| d == bb && b != self.entry)
            .map(|(&b, _)| b)
            .collect();
        out.sort();
        out
    }

    /// Dominance frontier of every reachable block (for SSA construction).
    pub fn dominance_frontiers(&self, cfg: &Cfg) -> HashMap<BlockId, Vec<BlockId>> {
        let mut df: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &bb in cfg.rpo() {
            let preds: Vec<BlockId> = cfg
                .preds(bb)
                .iter()
                .copied()
                .filter(|p| self.is_reachable(*p))
                .collect();
            if preds.len() < 2 {
                continue;
            }
            let idom_bb = self.idom[&bb];
            for p in preds {
                let mut runner = p;
                while runner != idom_bb {
                    let entry = df.entry(runner).or_default();
                    if !entry.contains(&bb) {
                        entry.push(bb);
                    }
                    if runner == self.entry {
                        break;
                    }
                    runner = self.idom[&runner];
                }
            }
        }
        df
    }

    /// RPO index of a reachable block.
    pub fn rpo_index(&self, bb: BlockId) -> Option<usize> {
        self.rpo_index.get(&bb).copied()
    }
}

fn intersect(
    idom: &HashMap<BlockId, BlockId>,
    rpo_index: &HashMap<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::CmpPred;
    use crate::types::Type;
    use crate::value::Value;

    /// entry -> {a, b}; a -> j; b -> j; j -> ret
    fn diamond() -> (Function, BlockId, BlockId, BlockId) {
        let mut bld = FunctionBuilder::new("d", vec![Type::I32], Type::I32);
        let a = bld.new_block();
        let b = bld.new_block();
        let j = bld.new_block();
        let c = bld.icmp(CmpPred::Slt, bld.arg(0), Value::i32(0));
        bld.cond_br(c, a, b);
        bld.switch_to(a);
        bld.br(j);
        bld.switch_to(b);
        bld.br(j);
        bld.switch_to(j);
        bld.ret(Some(Value::i32(1)));
        (bld.finish(), a, b, j)
    }

    #[test]
    fn diamond_dominators() {
        let (f, a, b, j) = diamond();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        assert_eq!(dt.idom(a), Some(f.entry));
        assert_eq!(dt.idom(b), Some(f.entry));
        assert_eq!(dt.idom(j), Some(f.entry));
        assert!(dt.dominates(f.entry, j));
        assert!(!dt.dominates(a, j));
        assert!(dt.dominates(j, j));
        assert!(dt.strictly_dominates(f.entry, a));
        assert!(!dt.strictly_dominates(a, a));
    }

    #[test]
    fn diamond_frontiers() {
        let (f, a, b, j) = diamond();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let df = dt.dominance_frontiers(&cfg);
        assert_eq!(df.get(&a), Some(&vec![j]));
        assert_eq!(df.get(&b), Some(&vec![j]));
        assert_eq!(df.get(&f.entry), None);
    }

    #[test]
    fn loop_dominators() {
        // entry -> header; header -> {body, exit}; body -> header
        let mut bld = FunctionBuilder::new("l", vec![Type::I32], Type::I32);
        let n = bld.arg(0);
        let (header, _exit) = bld.counted_loop(n, |_, _| {});
        bld.ret(Some(Value::i32(0)));
        let f = bld.finish();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        assert_eq!(dt.idom(header), Some(f.entry));
        // header dominates everything downstream
        for bb in cfg.rpo() {
            if *bb != f.entry {
                assert!(dt.dominates(header, *bb) || *bb == header);
            }
        }
    }

    #[test]
    fn children_listed() {
        let (f, a, b, j) = diamond();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let kids = dt.children(f.entry);
        assert!(kids.contains(&a) && kids.contains(&b) && kids.contains(&j));
    }

    #[test]
    fn unreachable_block_not_in_tree() {
        let mut bld = FunctionBuilder::new("u", vec![], Type::Void);
        let dead = bld.new_block();
        bld.ret(None);
        bld.switch_to(dead);
        bld.ret(None);
        let f = bld.finish();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        assert!(!dt.is_reachable(dead));
        assert!(!dt.dominates(f.entry, dead));
    }
}
