//! Property tests of the IR's algebraic core and analyses.

use autophase_ir::fold::{eval_binop, eval_cast, eval_icmp};
use autophase_ir::{BinOp, CastOp, CmpPred, Type};
use proptest::prelude::*;

fn int_types() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::I1),
        Just(Type::I8),
        Just(Type::I16),
        Just(Type::I32),
        Just(Type::I64),
    ]
}

proptest! {
    /// Results are always in the type's canonical (sign-extended) range.
    #[test]
    fn binop_results_canonical(ty in int_types(), a in any::<i64>(), b in any::<i64>()) {
        for op in BinOp::ALL {
            let r = eval_binop(op, ty, ty.wrap(a), ty.wrap(b));
            prop_assert_eq!(r, ty.wrap(r), "{:?} at {} not canonical", op, ty);
        }
    }

    /// Commutative ops commute; associative ops associate (on canonical
    /// inputs).
    #[test]
    fn algebraic_laws(ty in int_types(), a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        let (a, b, c) = (ty.wrap(a), ty.wrap(b), ty.wrap(c));
        for op in BinOp::ALL {
            if op.is_commutative() {
                prop_assert_eq!(eval_binop(op, ty, a, b), eval_binop(op, ty, b, a));
            }
            if op.is_associative() {
                let l = eval_binop(op, ty, eval_binop(op, ty, a, b), c);
                let r = eval_binop(op, ty, a, eval_binop(op, ty, b, c));
                prop_assert_eq!(l, r, "{:?} not associative at {}", op, ty);
            }
        }
    }

    /// The icmp predicate trichotomy: exactly one of <, ==, > holds (signed
    /// and unsigned).
    #[test]
    fn icmp_trichotomy(ty in int_types(), a in any::<i64>(), b in any::<i64>()) {
        let (a, b) = (ty.wrap(a), ty.wrap(b));
        let signed = [CmpPred::Slt, CmpPred::Eq, CmpPred::Sgt];
        let hits = signed.iter().filter(|&&p| eval_icmp(p, ty, a, b) != 0).count();
        prop_assert_eq!(hits, 1);
        let unsigned = [CmpPred::Ult, CmpPred::Eq, CmpPred::Ugt];
        let hits = unsigned.iter().filter(|&&p| eval_icmp(p, ty, a, b) != 0).count();
        prop_assert_eq!(hits, 1);
    }

    /// `swapped` and `inverse` mean what they claim.
    #[test]
    fn pred_swap_inverse_semantics(ty in int_types(), a in any::<i64>(), b in any::<i64>()) {
        let (a, b) = (ty.wrap(a), ty.wrap(b));
        for p in CmpPred::ALL {
            prop_assert_eq!(
                eval_icmp(p, ty, a, b),
                eval_icmp(p.swapped(), ty, b, a),
                "{:?} swap", p
            );
            prop_assert_eq!(
                eval_icmp(p, ty, a, b) != 0,
                eval_icmp(p.inverse(), ty, a, b) == 0,
                "{:?} inverse", p
            );
        }
    }

    /// trunc∘sext is the identity; trunc∘zext is the identity; sext/zext
    /// agree on non-negative values.
    #[test]
    fn cast_roundtrips(v in any::<i64>()) {
        let small = Type::I16.wrap(v);
        let s = eval_cast(CastOp::SExt, Type::I16, Type::I64, small);
        prop_assert_eq!(eval_cast(CastOp::Trunc, Type::I64, Type::I16, s), small);
        let z = eval_cast(CastOp::ZExt, Type::I16, Type::I64, small);
        prop_assert_eq!(eval_cast(CastOp::Trunc, Type::I64, Type::I16, z), small);
        if small >= 0 {
            prop_assert_eq!(s, z);
        }
    }

    /// Division semantics: (a/b)*b + a%b == a whenever b != 0 (signed and
    /// unsigned, any width).
    #[test]
    fn div_rem_identity(ty in int_types(), a in any::<i64>(), b in any::<i64>()) {
        let (a, b) = (ty.wrap(a), ty.wrap(b));
        prop_assume!(b != 0);
        let q = eval_binop(BinOp::SDiv, ty, a, b);
        let r = eval_binop(BinOp::SRem, ty, a, b);
        let back = eval_binop(BinOp::Add, ty, eval_binop(BinOp::Mul, ty, q, b), r);
        prop_assert_eq!(back, a, "signed at {}", ty);
        let q = eval_binop(BinOp::UDiv, ty, a, b);
        let r = eval_binop(BinOp::URem, ty, a, b);
        let back = eval_binop(BinOp::Add, ty, eval_binop(BinOp::Mul, ty, q, b), r);
        prop_assert_eq!(back, a, "unsigned at {}", ty);
    }

    /// Shifts by the masked amount match shifts by the raw amount.
    #[test]
    fn shift_amount_masking(ty in int_types(), a in any::<i64>(), s in any::<i64>()) {
        let a = ty.wrap(a);
        let masked = s & (ty.bits() as i64 - 1);
        for op in [BinOp::Shl, BinOp::LShr, BinOp::AShr] {
            prop_assert_eq!(
                eval_binop(op, ty, a, s),
                eval_binop(op, ty, a, masked),
                "{:?} at {}", op, ty
            );
        }
    }
}

mod structural {
    use autophase_ir::cfg::Cfg;
    use autophase_ir::dom::DomTree;
    use autophase_ir::loops::find_loops;
    use autophase_progen::{generate_valid, GenConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Dominator-tree laws on generated programs: entry dominates every
        /// reachable block; idom strictly dominates its node; loop headers
        /// dominate all their blocks.
        #[test]
        fn dominator_and_loop_laws(seed in 0u64..3000) {
            let m = generate_valid(&GenConfig::default(), seed);
            for fid in m.func_ids() {
                let f = m.func(fid);
                let cfg = Cfg::new(f);
                let dt = DomTree::new(f, &cfg);
                for &bb in cfg.rpo() {
                    prop_assert!(dt.dominates(f.entry, bb));
                    if let Some(idom) = dt.idom(bb) {
                        prop_assert!(dt.strictly_dominates(idom, bb));
                    }
                }
                for l in find_loops(f, &cfg, &dt) {
                    for &bb in &l.blocks {
                        prop_assert!(dt.dominates(l.header, bb), "header must dominate loop body");
                    }
                    for &latch in &l.latches {
                        prop_assert!(l.contains(latch));
                        prop_assert!(cfg.succs(latch).contains(&l.header));
                    }
                    for &e in &l.exits {
                        prop_assert!(!l.contains(e));
                    }
                }
            }
        }

        /// The printer emits one line per live instruction (smoke-level
        /// structural consistency of the textual form).
        #[test]
        fn printer_covers_all_instructions(seed in 0u64..3000) {
            let m = generate_valid(&GenConfig::default(), seed);
            let text = autophase_ir::printer::print_module(&m);
            for fid in m.func_ids() {
                let f = m.func(fid);
                // every block label appears
                for bb in f.block_ids() {
                    let label = format!("b{}:", bb.index());
                    prop_assert!(text.contains(&label), "missing block label");
                }
            }
            let printed_insts = text.lines().filter(|l| l.starts_with("  ")).count();
            prop_assert_eq!(printed_insts, m.num_insts());
        }
    }
}
