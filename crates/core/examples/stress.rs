//! Aggressive randomized stress of the pass pipeline — the long-running
//! sibling of `tests/semantics.rs`, intended for release builds:
//!
//! ```sh
//! cargo run --release -p autophase-core --example stress 5000
//! ```
//!
//! Each trial generates a random program (one in five at the larger
//! configuration), applies up to 30 random Table-1 passes, and checks the
//! verifier plus interpreter-observable behaviour after every step.
use autophase_ir::interp::run_main;
use autophase_passes::registry;
use autophase_progen::{generate_valid, GenConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut failures = 0;
    for t in 0..trials {
        let big = t % 5 == 4;
        let cfg = if big {
            GenConfig::large()
        } else {
            GenConfig::default()
        };
        let seed = rng.gen_range(0..1_000_000u64);
        let m0 = generate_valid(&cfg, seed);
        let expect = match run_main(&m0, 16_000_000) {
            Ok(tr) => tr.observable(),
            Err(_) => continue,
        };
        let len = rng.gen_range(1..=30usize);
        let seq: Vec<usize> = (0..len)
            .map(|_| rng.gen_range(0..registry::pass_count()))
            .collect();
        let mut m = m0.clone();
        for (i, &p) in seq.iter().enumerate() {
            registry::apply(&mut m, p);
            if let Err(e) = autophase_ir::verify::verify_module(&m) {
                println!(
                    "FAIL verify trial {t} big={big} seed {seed} seq {:?} at {i}: {e}",
                    &seq[..=i]
                );
                failures += 1;
                break;
            }
        }
        match run_main(&m, 64_000_000) {
            Ok(tr) if tr.observable() == expect => {}
            got => {
                println!("FAIL semantics trial {t} big={big} seed {seed} seq {seq:?}: {:?} vs {expect:?}",
                    got.map(|t| t.observable()));
                failures += 1;
            }
        }
        if t % 500 == 499 {
            println!("... {}/{trials} ok so far ({failures} failures)", t + 1);
        }
    }
    println!("done: {failures} failures / {trials} trials");
}
