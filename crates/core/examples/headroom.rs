//! Per-benchmark headroom probe: how much better than `-O3` can the
//! black-box searches get with paper-scale budgets? (A diagnostic used
//! while calibrating Figure 7; kept as a handy standalone utility.)
//!
//! ```sh
//! cargo run --release -p autophase-core --example headroom
//! ```

use autophase_core::env::{o3_cycles, sequence_cycles};
use autophase_hls::HlsConfig;
use autophase_search::{genetic, greedy, Objective};

fn main() {
    let hls = HlsConfig::default();
    for b in autophase_benchmarks::suite() {
        let o3 = o3_cycles(&b.module, &hls);
        let mut obj = Objective::new(|seq: &[usize]| sequence_cycles(&b.module, seq, &hls) as f64);
        let g = greedy::search(&mut obj, 45, 45, 2484, None);
        let mut obj2 = Objective::new(|seq: &[usize]| sequence_cycles(&b.module, seq, &hls) as f64);
        let ga = genetic::search(&mut obj2, 45, 45, 6080, &genetic::GaConfig::default(), 3);
        println!(
            "{:<10} o3={:<6} greedy={:<6} ({:+.1}%, {} smp) ga={:<6} ({:+.1}%, {} smp)",
            b.name,
            o3,
            g.best_cost as u64,
            (o3 as f64 - g.best_cost) / o3 as f64 * 100.0,
            g.samples,
            ga.best_cost as u64,
            (o3 as f64 - ga.best_cost) / o3 as f64 * 100.0,
            ga.samples
        );
    }
}
