//! Property tests for the evaluation cache.
//!
//! The cache's correctness story has three legs, each pinned by a
//! property here:
//!
//! * **key soundness** — the sequence hash separates different pass
//!   orderings (an order-insensitive hash would alias `[a, b]` with
//!   `[b, a]`, which generally produce different modules);
//! * **freshness** — a `get` never returns anything but the exact value
//!   last inserted for that key, across any interleaving of inserts and
//!   evictions;
//! * **bounded growth** — capacity is enforced per shard, and evictions
//!   remove whole entries (no partial state).

use autophase_core::eval_cache::{CacheEntry, CacheKey, EvalCache, SeqHash};
use autophase_features::NUM_FEATURES;
use proptest::prelude::*;

fn entry(tag: u64) -> CacheEntry {
    CacheEntry {
        module_fingerprint: tag,
        features: [tag as i64; NUM_FEATURES],
        cycles: tag.wrapping_mul(31) ^ 7,
        area: Default::default(),
        total_states: tag,
        insts_executed: tag,
        return_value: Some(tag as i64),
    }
}

/// The payload invariant `entry(tag)` establishes; every value read back
/// from a cache in these tests must satisfy it.
fn check_payload(e: &CacheEntry) {
    let tag = e.module_fingerprint;
    assert_eq!(e.cycles, tag.wrapping_mul(31) ^ 7);
    assert_eq!(e.features[0], tag as i64);
    assert_eq!(e.return_value, Some(tag as i64));
}

proptest! {
    /// Distinct pass sequences get distinct keys — in particular the
    /// hash is order-sensitive ([a,b] vs [b,a]) and length-sensitive.
    #[test]
    fn seq_hash_separates_sequences(
        a in proptest::collection::vec(0usize..46, 0..12),
        b in proptest::collection::vec(0usize..46, 0..12),
    ) {
        if a == b {
            prop_assert_eq!(SeqHash::of(&a), SeqHash::of(&b));
        } else {
            prop_assert_ne!(SeqHash::of(&a), SeqHash::of(&b));
        }
    }

    /// Swapping any two unequal adjacent passes changes the key.
    #[test]
    fn seq_hash_is_order_sensitive(
        seq in proptest::collection::vec(0usize..46, 2..10),
        at in 0usize..8,
    ) {
        let i = at % (seq.len() - 1);
        if seq[i] != seq[i + 1] {
            let mut swapped = seq.clone();
            swapped.swap(i, i + 1);
            prop_assert_ne!(SeqHash::of(&seq), SeqHash::of(&swapped));
        }
    }

    /// The incremental `push` form agrees with the one-shot `of` form —
    /// the environment builds keys incrementally while the multi-action
    /// trainer hashes whole sequences; both must land on the same key.
    #[test]
    fn seq_hash_incremental_matches_oneshot(
        seq in proptest::collection::vec(0usize..46, 0..16),
    ) {
        let mut h = SeqHash::new();
        for &p in &seq {
            h.push(p);
        }
        prop_assert_eq!(h.value(), SeqHash::of(&seq));
    }

    /// After an arbitrary series of inserts (with key collisions and
    /// evictions), every surviving key returns exactly the last value
    /// inserted for it — eviction never resurrects stale data.
    #[test]
    fn get_returns_last_insert_despite_evictions(
        ops in proptest::collection::vec((0u64..40, 0u64..6, 0u64..1000), 1..120),
        capacity in 4usize..40,
    ) {
        let cache = EvalCache::with_shards(capacity, 4);
        let mut model = std::collections::HashMap::new();
        for (program, seq, tag) in ops {
            let key = CacheKey { program, seq };
            cache.insert(key, entry(tag));
            model.insert(key, tag);
            if let Some(e) = cache.get(&key) {
                // The entry we just inserted must be readable and fresh.
                prop_assert_eq!(e.module_fingerprint, tag);
                check_payload(&e);
            } else {
                // Only possible if the insert itself was immediately
                // evicted, which the LRU stamp makes impossible: the
                // newest entry is never the eviction victim.
                prop_assert!(false, "freshly inserted key missing");
            }
        }
        // Whatever survived matches the model exactly.
        for (key, tag) in &model {
            if let Some(e) = cache.get(key) {
                prop_assert_eq!(e.module_fingerprint, *tag);
                check_payload(&e);
            }
        }
        prop_assert!(cache.len() <= capacity.max(4));
    }

    /// Counters are consistent: hits + misses equals lookups, and the
    /// hit rate is their ratio.
    #[test]
    fn counters_add_up(
        keys in proptest::collection::vec((0u64..8, 0u64..8), 1..60),
    ) {
        let cache = EvalCache::new(64);
        let mut lookups = 0u64;
        for &(p, s) in &keys {
            let key = CacheKey { program: p, seq: s };
            lookups += 1;
            if cache.get(&key).is_none() {
                cache.insert(key, entry(p ^ s));
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, lookups);
        let rate = stats.hit_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
        if stats.misses == 0 {
            prop_assert_eq!(rate, 1.0);
        }
    }
}

/// Deterministic companion to the proptests: a cache of capacity 1 per
/// shard must still never serve entry A under key B.
#[test]
fn eviction_churn_never_cross_serves() {
    let cache = EvalCache::with_shards(4, 4);
    for round in 0u64..50 {
        for k in 0u64..16 {
            let key = CacheKey {
                program: k,
                seq: round,
            };
            cache.insert(key, entry(k.wrapping_mul(1000) + round));
            let e = cache.get(&key).expect("just inserted");
            assert_eq!(e.module_fingerprint, k.wrapping_mul(1000) + round);
            check_payload(&e);
        }
    }
    assert!(cache.evictions() > 0, "churn should evict");
    assert!(cache.len() <= 4);
}
