//! LRU eviction behaviour of the incremental-evaluation memos under
//! capacity pressure.
//!
//! Eviction must be invisible to correctness: an evicted entry costs a
//! recompute, and the recomputed result must be bit-identical to what the
//! memo would have returned. The telemetry eviction counters must advance
//! so capacity pressure is observable in production.

use autophase_core::incremental::{IncrementalEval, ProfileMemo, SnapEntry, SnapshotMemo};
use autophase_hls::profile::profile_module;
use autophase_hls::HlsConfig;
use autophase_ir::printer::print_module;
use autophase_ir::Module;
use autophase_passes::changeset::apply_traced;
use autophase_telemetry as telemetry;
use std::sync::Arc;

fn programs() -> Vec<Module> {
    let mut out: Vec<Module> = autophase_benchmarks::suite()
        .into_iter()
        .map(|b| b.module)
        .collect();
    out.truncate(6);
    assert!(out.len() >= 4, "suite too small for eviction pressure");
    out
}

#[test]
fn profile_memo_evicts_lru_and_recompute_is_bit_identical() {
    let programs = programs();
    let cfg = HlsConfig::default();
    let reports: Vec<_> = programs
        .iter()
        .map(|m| profile_module(m, &cfg).expect("suite programs profile"))
        .collect();
    let fps: Vec<u64> = programs
        .iter()
        .map(autophase_core::eval_cache::fingerprint_module)
        .collect();

    let mut memo = ProfileMemo::new(2);
    memo.insert(fps[0], Arc::new(reports[0].clone()));
    memo.insert(fps[1], Arc::new(reports[1].clone()));
    assert_eq!(memo.evictions(), 0);

    // Refresh entry 0 so entry 1 is the LRU victim.
    assert!(memo.get(fps[0]).is_some());
    memo.insert(fps[2], Arc::new(reports[2].clone()));
    assert_eq!(memo.evictions(), 1);
    assert_eq!(memo.len(), 2);
    assert!(memo.get(fps[1]).is_none(), "LRU entry evicted");
    assert!(memo.get(fps[0]).is_some(), "recently used entry kept");

    // Recomputing the evicted entry gives a bit-identical report.
    let recomputed = profile_module(&programs[1], &cfg).expect("profiles again");
    assert_eq!(recomputed.cycles, reports[1].cycles);
    assert_eq!(recomputed.total_states, reports[1].total_states);
    assert_eq!(recomputed.insts_executed, reports[1].insts_executed);
    assert_eq!(recomputed.return_value, reports[1].return_value);

    // Re-inserting restores hit service.
    memo.insert(fps[1], Arc::new(recomputed));
    assert_eq!(memo.get(fps[1]).unwrap().cycles, reports[1].cycles);
}

#[test]
fn profile_memo_churn_under_sustained_pressure() {
    let programs = programs();
    let cfg = HlsConfig::default();
    let mut memo = ProfileMemo::new(2);
    // Stream all programs through a 2-entry memo several times: every
    // round evicts, and every served value stays correct.
    for round in 0..3 {
        for (i, m) in programs.iter().enumerate() {
            let fp = autophase_core::eval_cache::fingerprint_module(m);
            let expected = profile_module(m, &cfg).expect("profiles");
            let served = match memo.get(fp) {
                Some(hit) => hit,
                None => {
                    let fresh = Arc::new(expected.clone());
                    memo.insert(fp, Arc::clone(&fresh));
                    fresh
                }
            };
            assert_eq!(served.cycles, expected.cycles, "round {round} prog {i}");
            assert!(memo.len() <= 2);
        }
    }
    assert!(
        memo.evictions() >= programs.len() as u64,
        "sustained pressure must evict (saw {})",
        memo.evictions()
    );
}

#[test]
fn snapshot_memo_evicts_lru_and_recompute_is_bit_identical() {
    let program = programs().remove(0);
    // Record transitions for several single-pass sequences.
    let passes: [u16; 3] = [38, 23, 33];
    let mut results: Vec<(u16, String)> = Vec::new();
    let mut memo = SnapshotMemo::new(2);
    for &pass in &passes {
        let mut m = program.clone();
        let (changed, cs) = apply_traced(&mut m, pass as usize);
        let entry = if changed {
            let mut eval = IncrementalEval::new(&program);
            eval.apply(&m, &cs);
            SnapEntry::change(m.clone(), eval)
        } else {
            SnapEntry::noop()
        };
        results.push((pass, print_module(&m)));
        memo.insert(0, vec![pass], entry);
    }
    // Capacity 2, three inserts with no refreshes: the first key is gone.
    assert_eq!(memo.evictions(), 1);
    assert_eq!(memo.len(), 2);
    assert!(memo.get(0, vec![passes[0]]).is_none());

    // Recompute the evicted transition: bit-identical to the recording.
    let mut m = program.clone();
    let (changed, cs) = apply_traced(&mut m, passes[0] as usize);
    assert_eq!(print_module(&m), results[0].1, "recompute diverged");
    let entry = if changed {
        let mut eval = IncrementalEval::new(&program);
        eval.apply(&m, &cs);
        SnapEntry::change(m.clone(), eval)
    } else {
        SnapEntry::noop()
    };
    memo.insert(0, vec![passes[0]], entry);
    let restored = memo.get(0, vec![passes[0]]).expect("reinserted");
    if let Some((rm, re)) = restored.state_clone() {
        assert_eq!(print_module(&rm), results[0].1);
        assert_eq!(
            re.module_fp(),
            autophase_core::eval_cache::fingerprint_module(&rm)
        );
    }
}

#[test]
fn eviction_telemetry_counters_advance() {
    telemetry::reset();
    telemetry::enable();

    let mut pm = ProfileMemo::new(1);
    let report = Arc::new(autophase_hls::profile::HlsReport {
        cycles: 1,
        total_states: 0,
        area: autophase_hls::area::AreaReport::default(),
        insts_executed: 0,
        return_value: None,
    });
    pm.insert(1, Arc::clone(&report));
    pm.insert(2, Arc::clone(&report)); // evicts fp 1
    pm.insert(3, Arc::clone(&report)); // evicts fp 2
    assert_eq!(pm.evictions(), 2);

    let mut sm = SnapshotMemo::new(1);
    sm.insert(0, vec![1], SnapEntry::noop());
    sm.insert(0, vec![2], SnapEntry::noop()); // evicts seq [1]
    assert_eq!(sm.evictions(), 1);

    telemetry::disable();
    let snap = telemetry::snapshot();
    let counter = |name: &str, label: &str| {
        snap.counters
            .iter()
            .find(|c| c.name == name && c.label == label)
            .map(|c| c.value)
            .unwrap_or(0)
    };
    assert!(
        counter("core.profile_memo", "evict") >= 2,
        "profile memo eviction counter must advance"
    );
    assert!(
        counter("core.snap_memo", "evict") >= 1,
        "snapshot memo eviction counter must advance"
    );
    telemetry::reset();
}
