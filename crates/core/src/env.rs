//! The phase-ordering RL environment (§5.1).

use crate::eval_cache::{fingerprint_module, CacheEntry, CacheKey, EvalCache, SeqHash};
use crate::incremental::{IncrementalEval, ProfileMemo, SnapEntry, SnapshotMemo};
use crate::quarantine::Quarantine;
use autophase_features::{
    extract, extract_structural, filter_features, log_normalize, normalize_to_inst_count,
    FeatureSet, FeatureVector, FILTERED_FEATURES, NUM_FEATURES, NUM_STRUCTURAL_FEATURES,
};
use autophase_hls::{
    profile::{profile_module, profile_module_cached, HlsReport},
    HlsConfig, ScheduleCache,
};
use autophase_ir::Module;
use autophase_passes::changeset::{apply_traced, ChangeSet};
use autophase_passes::checked::apply_checked_traced;
use autophase_passes::registry::{self, NUM_PASSES};
use autophase_passes::FuelBudget;
use autophase_rl::env::{Environment, StepResult};
use std::sync::Arc;

/// What the agent observes (§5.1's two input-feature types and their
/// combination; Table 3's "Observation Space" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservationKind {
    /// The Table-2 program features.
    ProgramFeatures,
    /// The histogram of previously applied passes.
    ActionHistory,
    /// Both, concatenated (the generalization setup of §6.2).
    Combined,
}

/// Feature normalization (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureNorm {
    /// Raw counts (the per-program experiments of §6.1).
    Raw,
    /// Technique ①: `log(1+x)`.
    Log,
    /// Technique ②: divide by total instruction count.
    InstCount,
}

/// Reward shaping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewardKind {
    /// `R = c_prev − c_cur` (§5.1).
    Raw,
    /// `sign(Δ)·ln(1+|Δ|)` — "the logarithm of the improvement in cycle
    /// count" used for cross-program training (§6.2).
    Log,
    /// Always zero (the paper's RL-PPO1 control).
    Zero,
}

/// What the agent optimizes (§5.1: "the reward could be defined as the
/// negative of the area and thus the RL agent will optimize for the area.
/// It is also possible to co-optimize multiple objectives").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Circuit execution time in cycles (the paper's main experiments).
    Cycles,
    /// Resource usage (the area model's scalar total).
    Area,
    /// `cycle_weight·cycles + area_weight·area` (multi-objective).
    Weighted {
        /// Weight on the cycle count.
        cycle_weight: f64,
        /// Weight on the area total.
        area_weight: f64,
    },
    /// Dynamic instruction count — the software-compilation objective the
    /// paper's conclusion proposes extending to ("we believe that the same
    /// approach can be successfully applied to software compilation").
    DynamicInsts,
}

/// Environment configuration.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Observation space.
    pub observation: ObservationKind,
    /// Feature normalization.
    pub feature_norm: FeatureNorm,
    /// Reward shaping.
    pub reward: RewardKind,
    /// Episode length (the paper sets the pass length to 45 in §6.1).
    pub episode_len: usize,
    /// Restrict features to the §4-filtered subset.
    pub filtered_features: bool,
    /// Which feature vector the observation carries. `Table2` is the
    /// paper's 56 counts; `Structural` appends the CFG/loop/dominator
    /// shape block (`autophase_features::structural`) so the corpus bench
    /// can ablate whether graph-shape features shrink the unseen-program
    /// gap. The §4 filter applies only to the Table-2 prefix; the
    /// structural block is never filtered.
    pub feature_set: FeatureSet,
    /// Restrict actions to the §4-filtered impactful passes.
    pub filtered_passes: bool,
    /// Expose Table 1's `-terminate` pseudo-action (index 45): choosing it
    /// ends the episode immediately. Off by default (the §6.1 runs use
    /// fixed-length episodes).
    pub include_terminate: bool,
    /// What the reward measures.
    pub objective: Objective,
    /// HLS settings (200 MHz by default).
    pub hls: HlsConfig,
    /// Apply passes transactionally ([`autophase_passes::apply_checked`]):
    /// a pass that panics, breaks the verifier, or blows the fuel budget
    /// is rolled back and scored as a no-op (zero reward) instead of
    /// crashing the training run. On by default; turn off only to
    /// reproduce the unchecked seed behavior exactly.
    pub fault_isolation: bool,
    /// Resource budget for checked pass applications.
    pub fuel: FuelBudget,
    /// Function-granular incremental evaluation: maintain per-function
    /// fingerprints and feature decompositions under each pass's change
    /// set, reuse FSM schedules for untouched functions, and memoize
    /// whole-module profiles by content fingerprint. Results are
    /// bit-identical to the from-scratch path (the differential suites
    /// enforce this); only the amount of work per step changes. On by
    /// default; turn off to reproduce the full-recompute baseline.
    pub incremental: bool,
}

impl Default for EnvConfig {
    fn default() -> EnvConfig {
        EnvConfig {
            observation: ObservationKind::ProgramFeatures,
            feature_norm: FeatureNorm::Raw,
            reward: RewardKind::Raw,
            episode_len: 45,
            filtered_features: false,
            feature_set: FeatureSet::Table2,
            filtered_passes: false,
            include_terminate: false,
            objective: Objective::Cycles,
            hls: HlsConfig::default(),
            fault_isolation: true,
            fuel: FuelBudget::default(),
            incremental: true,
        }
    }
}

/// The pass subset §4.2 finds impactful ("-scalarrepl, -gvn,
/// -scalarrepl-ssa, -loop-reduce, -loop-deletion, -reassociate,
/// -loop-rotate, -partial-inliner, -early-cse, -adce, -instcombine,
/// -simplifycfg, -dse, -loop-unroll, -mem2reg, -sroa"), plus the loop
/// canonicalizers they depend on.
pub const FILTERED_PASSES: [usize; 18] = [
    1,  // -scalarrepl
    7,  // -gvn
    11, // -scalarrepl-ssa
    12, // -loop-reduce
    14, // -loop-deletion
    15, // -reassociate
    23, // -loop-rotate
    24, // -partial-inliner
    25, // -inline
    26, // -early-cse
    28, // -adce
    29, // -loop-simplify
    30, // -instcombine
    31, // -simplifycfg
    32, // -dse
    33, // -loop-unroll
    38, // -mem2reg
    43, // -sroa
];

/// The phase-ordering environment over one or more programs.
///
/// Each episode picks the next program (round-robin), resets it to its
/// unoptimized form, and lets the agent apply passes one at a time. The
/// reward of a step is the improvement in the HLS cycle estimate.
pub struct PhaseOrderEnv {
    programs: Vec<Module>,
    cfg: EnvConfig,
    current: Module,
    program_cursor: usize,
    steps_taken: usize,
    action_histogram: Vec<f64>,
    prev_cycles: u64,
    /// Number of cycle-profiler invocations ("samples" in Figure 7).
    samples: u64,
    episode_done: bool,
    /// Shared memoization cache; `None` keeps the uncached seed path.
    cache: Option<Arc<EvalCache>>,
    /// Shared repeat-offender table; `None` disables masking.
    quarantine: Option<Arc<Quarantine>>,
    /// Fingerprints of the pristine programs (filled when a cache is set).
    program_fps: Vec<u64>,
    /// Fingerprint of the episode's pristine program.
    current_fp: u64,
    /// Rolling hash of the passes applied this episode that reported a
    /// change (the cache key's sequence component).
    seq_hash: SeqHash,
    /// Changing passes applied this episode (cached mode). `current`
    /// reflects only the first `materialized` of them; the rest are known
    /// from the transition memo and replayed lazily on demand.
    applied: Vec<usize>,
    /// How many entries of `applied` are reflected in `current`.
    materialized: usize,
    /// Incremental fingerprint/feature state, always synced with
    /// `current`'s materialized prefix. `None` until the first reset of an
    /// incremental episode (or always, with `cfg.incremental` off).
    inc: Option<IncrementalEval>,
    /// Lazily built pristine [`IncrementalEval`] per program, cloned into
    /// `inc` at reset so episode starts cost O(#functions) copies instead
    /// of a full re-extraction.
    inc_templates: Vec<Option<IncrementalEval>>,
    /// Per-function schedule/area cache, keyed by content fingerprint.
    /// Persistent across episodes and programs (one env = one HlsConfig).
    sched: ScheduleCache,
    /// Whole-module profile memo keyed by module content fingerprint.
    memo: ProfileMemo,
    /// Step-transition snapshots keyed by `(program index, exact
    /// changing-pass sequence)`. A hit replaces pass execution with a
    /// copy-on-write restore of the recorded result.
    snap: SnapshotMemo,
    /// Index in `programs` of the episode's program (unlike
    /// `program_cursor`, which already points at the *next* episode's).
    episode_program: usize,
    /// Whether `applied` is an exact changing-pass sequence from the
    /// episode's pristine program — false until the first reset, and
    /// after a mid-episode cache attach rebases the sequence bookkeeping
    /// onto a non-pristine state. Snapshot keys are only sound when true.
    snap_keys_valid: bool,
}

impl PhaseOrderEnv {
    /// Create an environment over a set of programs.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty.
    pub fn new(programs: Vec<Module>, cfg: EnvConfig) -> PhaseOrderEnv {
        assert!(!programs.is_empty(), "need at least one program");
        let current = programs[0].clone();
        let mut env = PhaseOrderEnv {
            programs,
            cfg,
            current,
            program_cursor: 0,
            steps_taken: 0,
            action_histogram: Vec::new(),
            prev_cycles: 0,
            samples: 0,
            episode_done: false,
            cache: None,
            quarantine: None,
            program_fps: Vec::new(),
            current_fp: 0,
            seq_hash: SeqHash::new(),
            applied: Vec::new(),
            materialized: 0,
            inc: None,
            inc_templates: Vec::new(),
            sched: ScheduleCache::default(),
            memo: ProfileMemo::default(),
            snap: SnapshotMemo::default(),
            episode_program: 0,
            snap_keys_valid: false,
        };
        env.inc_templates = (0..env.programs.len()).map(|_| None).collect();
        env.action_histogram = vec![0.0; env.num_actions()];
        env
    }

    /// Single-program convenience constructor.
    pub fn single(program: Module, cfg: EnvConfig) -> PhaseOrderEnv {
        PhaseOrderEnv::new(vec![program], cfg)
    }

    /// Like [`PhaseOrderEnv::new`], sharing `cache` from the start.
    pub fn with_cache(
        programs: Vec<Module>,
        cfg: EnvConfig,
        cache: Arc<EvalCache>,
    ) -> PhaseOrderEnv {
        let mut env = PhaseOrderEnv::new(programs, cfg);
        env.set_cache(cache);
        env
    }

    /// Attach a shared evaluation cache. Every profiler query from now on
    /// is keyed by `(program fingerprint, applied-pass hash)` and answered
    /// from the cache when possible; only real profiler runs count toward
    /// [`PhaseOrderEnv::samples`]. Results are bit-identical to the
    /// uncached path — the cache only changes how often the profiler runs.
    pub fn set_cache(&mut self, cache: Arc<EvalCache>) {
        self.init_fingerprints();
        self.cache = Some(cache);
    }

    /// The shared cache, if one is attached.
    pub fn cache(&self) -> Option<&Arc<EvalCache>> {
        self.cache.as_ref()
    }

    /// Attach a shared [`Quarantine`] table. Faulted pass applications are
    /// recorded against the episode's program fingerprint, and a pass that
    /// crosses the fault threshold is masked for that program: choosing it
    /// becomes a guaranteed no-op (zero reward, no apply attempt).
    ///
    /// The table is monotone, so sharing it across workers can only mask
    /// *more* over time — runs that must be bit-identical across worker
    /// counts should not attach one.
    pub fn set_quarantine(&mut self, quarantine: Arc<Quarantine>) {
        self.init_fingerprints();
        self.quarantine = Some(quarantine);
    }

    /// The shared quarantine table, if one is attached.
    pub fn quarantine(&self) -> Option<&Arc<Quarantine>> {
        self.quarantine.as_ref()
    }

    /// Pass ids currently masked (quarantined) for the episode's program.
    pub fn masked_passes(&self) -> Vec<usize> {
        match &self.quarantine {
            Some(q) => q.masked_passes(self.current_fp),
            None => Vec::new(),
        }
    }

    /// Fill the program fingerprints on the first cache/quarantine attach.
    fn init_fingerprints(&mut self) {
        if self.program_fps.is_empty() {
            self.program_fps = self.programs.iter().map(fingerprint_module).collect();
            // The episode may already be underway (mid-episode attach):
            // fingerprint the live module state so keys stay exact. The
            // rebased `applied` no longer starts at a pristine program,
            // so snapshot keys are invalid until the next reset.
            self.current_fp = fingerprint_module(&self.current);
            self.seq_hash = SeqHash::new();
            self.applied.clear();
            self.materialized = 0;
            self.snap_keys_valid = false;
        }
    }

    /// The action index list (Table-1 ids) this environment exposes.
    /// When `include_terminate` is set the last action is index 45.
    pub fn action_passes(&self) -> Vec<usize> {
        let mut passes = if self.cfg.filtered_passes {
            FILTERED_PASSES.to_vec()
        } else {
            (0..NUM_PASSES).collect::<Vec<_>>()
        };
        if self.cfg.include_terminate {
            passes.push(registry::TERMINATE);
        }
        passes
    }

    /// Objective value (cycles / area / weighted) of the current module
    /// state. For the default configuration this is the cycle count.
    ///
    /// With a cache attached, a hit answers without running the profiler
    /// (and without charging a sample); only misses profile. Failed
    /// profiles are never cached.
    pub fn cycles(&mut self) -> u64 {
        // Narrow re-borrows of `self.cache` throughout: cloning the `Arc`
        // here (the old code) was an atomic refcount bump on *every* step
        // of every worker — pure overhead, since the cache is never
        // detached mid-call.
        if self.cache.is_some() {
            let key = CacheKey {
                program: self.current_fp,
                seq: self.seq_hash.value(),
            };
            if let Some(entry) = self.cache.as_deref().and_then(|c| c.get(&key)) {
                return self.objective_of(&entry);
            }
            self.materialize();
            let report = match self.profile_current() {
                Some(r) => r,
                None => return u64::MAX / 4,
            };
            // With incremental state the entry is assembled from the
            // already-maintained fingerprint and feature total — no module
            // re-walk; otherwise fall back to the full extraction.
            let entry = match &self.inc {
                Some(inc) => CacheEntry::from_parts(inc.module_fp(), inc.features(), &report),
                None => CacheEntry::from_report(&self.current, &report),
            };
            let value = self.objective_of(&entry);
            if let Some(cache) = self.cache.as_deref() {
                cache.insert(key, entry);
            }
            return value;
        }
        match self.profile_current() {
            Some(report) => self.objective_of_report(&report),
            None => u64::MAX / 4,
        }
    }

    /// Profile `current` (which must be fully materialized), through the
    /// incremental machinery when enabled: a content-fingerprint memo hit
    /// returns a past report without running the profiler (and without
    /// charging a sample — the memo has [`EvalCache`] sampling semantics);
    /// a miss profiles with per-function schedule reuse. `None` when
    /// execution failed (never memoized).
    fn profile_current(&mut self) -> Option<Arc<HlsReport>> {
        if let Some(inc) = &self.inc {
            let fp = inc.module_fp();
            if let Some(report) = self.memo.get(fp) {
                return Some(report);
            }
            self.samples += 1;
            let report =
                profile_module_cached(&self.current, &self.cfg.hls, &mut self.sched, |f| {
                    inc.func_fp(f).expect("live function has a fingerprint")
                })
                .ok()?;
            let report = Arc::new(report);
            self.memo.insert(fp, Arc::clone(&report));
            return Some(report);
        }
        self.samples += 1;
        profile_module(&self.current, &self.cfg.hls)
            .ok()
            .map(Arc::new)
    }

    /// The configured objective read off a profile report.
    fn objective_of_report(&self, report: &HlsReport) -> u64 {
        match self.cfg.objective {
            Objective::Cycles => report.cycles,
            Objective::Area => report.area.total(),
            Objective::Weighted {
                cycle_weight,
                area_weight,
            } => (cycle_weight * report.cycles as f64 + area_weight * report.area.total() as f64)
                .max(0.0) as u64,
            Objective::DynamicInsts => report.insts_executed,
        }
    }

    /// The configured objective read off a cache entry.
    fn objective_of(&self, entry: &CacheEntry) -> u64 {
        match self.cfg.objective {
            Objective::Cycles => entry.cycles,
            Objective::Area => entry.area.total(),
            Objective::Weighted {
                cycle_weight,
                area_weight,
            } => (cycle_weight * entry.cycles as f64 + area_weight * entry.area.total() as f64)
                .max(0.0) as u64,
            Objective::DynamicInsts => entry.insts_executed,
        }
    }

    /// Cycle-profiler invocations so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Cycle count of the current state as of the last profile — free to
    /// read (no re-profiling).
    pub fn last_cycles(&self) -> u64 {
        self.prev_cycles
    }

    /// The module in its current (partially optimized) state.
    ///
    /// In cached mode the module is materialized lazily, so this may have
    /// to replay memoized passes first — hence `&mut self`.
    pub fn module(&mut self) -> &Module {
        self.materialize();
        &self.current
    }

    /// Replay any passes known (from the transition memo) to be part of
    /// the current state but not yet applied to `current`. Replaying only
    /// the *changing* passes reproduces the exact module: a pass that
    /// reported no change left the module untouched, so dropping it
    /// cannot alter what later passes see.
    fn materialize(&mut self) {
        for i in self.materialized..self.applied.len() {
            if self.inc.is_some() {
                // A replayed prefix is a previously walked sequence by
                // definition, so the snapshot memo usually turns the whole
                // replay into copy-on-write restores.
                if self.snap_keys_valid {
                    let key: Vec<u16> = self.applied[..=i].iter().map(|&p| p as u16).collect();
                    if let Some(entry) = self.snap.get(self.episode_program, key) {
                        debug_assert!(entry.changed(), "memoized changing pass recorded as no-op");
                        if let Some((module, eval)) = entry.state_clone() {
                            self.current = module;
                            self.inc = Some(eval);
                        }
                        continue;
                    }
                }
                let pass = self.applied[i];
                let (changed, cs) = apply_traced(&mut self.current, pass);
                debug_assert!(changed, "memoized changing pass replayed as no-op");
                self.note_change(&cs);
                if self.snap_keys_valid {
                    let key: Vec<u16> = self.applied[..=i].iter().map(|&p| p as u16).collect();
                    let entry = SnapEntry::change(
                        self.current.clone(),
                        self.inc.clone().expect("incremental mode"),
                    );
                    self.snap.insert(self.episode_program, key, entry);
                }
            } else {
                let changed = registry::apply(&mut self.current, self.applied[i]);
                debug_assert!(changed, "memoized changing pass replayed as no-op");
            }
        }
        self.materialized = self.applied.len();
    }

    /// The snapshot-memo key for applying `pass_id` to the current state:
    /// the episode's changing-pass sequence so far, plus the new pass.
    fn snap_key(&self, pass_id: usize) -> Vec<u16> {
        let mut key: Vec<u16> = self.applied.iter().map(|&p| p as u16).collect();
        key.push(pass_id as u16);
        key
    }

    /// Serve a step's apply from the snapshot memo if this exact
    /// `(program, sequence, pass)` transition was walked before: restore
    /// the recorded post-pass module and incremental state (COW clones)
    /// and report its change flag, skipping pass execution entirely.
    fn snapshot_lookup(&mut self, pass_id: usize) -> Option<bool> {
        if !self.snap_keys_valid || self.inc.is_none() {
            return None;
        }
        let key = self.snap_key(pass_id);
        let entry = self.snap.get(self.episode_program, key)?;
        if let Some((module, eval)) = entry.state_clone() {
            self.current = module;
            self.inc = Some(eval);
        }
        Some(entry.changed())
    }

    /// Apply `pass_id` to the (materialized) current state and record the
    /// transition in the snapshot memo. Returns `(changed, faulted)`;
    /// faulted applies are rolled back by the checked layer and never
    /// recorded.
    fn apply_and_record(&mut self, pass_id: usize) -> (bool, bool) {
        let (changed, faulted) = if self.cfg.fault_isolation {
            match apply_checked_traced(&mut self.current, pass_id, &self.cfg.fuel, None) {
                Ok((c, cs)) => {
                    if c {
                        self.note_change(&cs);
                    }
                    (c, false)
                }
                Err(_) => (false, true),
            }
        } else {
            (self.apply_unchecked(pass_id), false)
        };
        if !faulted && self.snap_keys_valid && self.inc.is_some() {
            let entry = if changed {
                SnapEntry::change(
                    self.current.clone(),
                    self.inc.clone().expect("incremental mode"),
                )
            } else {
                SnapEntry::noop()
            };
            self.snap
                .insert(self.episode_program, self.snap_key(pass_id), entry);
        }
        (changed, faulted)
    }

    /// (hits, misses) of the step-transition snapshot memo.
    pub fn snapshot_stats(&self) -> (u64, u64) {
        self.snap.stats()
    }

    /// The per-function incremental state (fingerprints + feature
    /// decomposition), if incremental evaluation is active. Exposed so
    /// invariant suites (chaos, differential) can assert it stays in
    /// lock-step with the module through faults and rollbacks.
    pub fn incremental_state(&self) -> Option<&IncrementalEval> {
        self.inc.as_ref()
    }

    /// Fold one successful, changing pass application's change set into
    /// the incremental state (no-op when incremental evaluation is off).
    /// Never called for faulted applies: the transactional rollback
    /// restores the exact pre-pass module, which `inc` already describes.
    fn note_change(&mut self, cs: &ChangeSet) {
        if let Some(inc) = &mut self.inc {
            inc.apply(&self.current, cs);
        }
    }

    /// Unchecked apply (fault isolation off) — traced only when the
    /// incremental state needs the change set, so the legacy configuration
    /// stays byte-for-byte the seed path.
    fn apply_unchecked(&mut self, pass_id: usize) -> bool {
        if self.inc.is_some() {
            let (changed, cs) = apply_traced(&mut self.current, pass_id);
            if changed {
                self.note_change(&cs);
            }
            changed
        } else {
            registry::apply(&mut self.current, pass_id)
        }
    }

    /// Materialize `current` if the next observation will need it (i.e.
    /// the cache cannot serve the state's feature vector).
    fn ensure_observable(&mut self) {
        if self.materialized == self.applied.len() {
            return;
        }
        let served = match (&self.cache, &self.cfg.observation) {
            (_, ObservationKind::ActionHistory) => true,
            // Structural features are extracted from the module itself —
            // no cache stores them, so the state must be materialized.
            _ if self.cfg.feature_set == FeatureSet::Structural => false,
            (Some(cache), _) => {
                let key = CacheKey {
                    program: self.current_fp,
                    seq: self.seq_hash.value(),
                };
                cache.peek(&key).is_some()
            }
            (None, _) => false,
        };
        if !served {
            self.materialize();
        }
    }

    /// Number of feature slots in the observation: the (possibly
    /// filtered) Table-2 prefix, plus the structural block when the
    /// config selects the `Structural` feature set.
    fn feature_len(&self) -> usize {
        let base = if self.cfg.filtered_features {
            FILTERED_FEATURES.len()
        } else {
            NUM_FEATURES
        };
        let extension = match self.cfg.feature_set {
            FeatureSet::Table2 => 0,
            FeatureSet::Structural => NUM_STRUCTURAL_FEATURES,
        };
        base + extension
    }

    /// Raw Table-2 features of the current state. With a cache attached,
    /// the `(program fingerprint, applied-pass hash)` key uniquely
    /// determines the module state (see [`crate::eval_cache`]), so an
    /// existing entry's stored features *are* `extract(&self.current)` —
    /// serving them skips the extraction walk. States the profiler never
    /// visited (zero-reward inference) fall through to a real extraction.
    fn raw_features(&self) -> FeatureVector {
        if let Some(cache) = &self.cache {
            let key = CacheKey {
                program: self.current_fp,
                seq: self.seq_hash.value(),
            };
            if let Some(entry) = cache.peek(&key) {
                return entry.features;
            }
        }
        // The incremental total is maintained to equal `extract` of the
        // materialized module at all times, so serving it here replaces a
        // full module walk with a copy.
        if let Some(inc) = &self.inc {
            return inc.features();
        }
        extract(&self.current)
    }

    fn features(&self) -> Vec<f64> {
        let raw = self.raw_features();
        let normed: Vec<f64> = match self.cfg.feature_norm {
            FeatureNorm::Raw => raw.iter().map(|&x| x as f64).collect(),
            FeatureNorm::Log => log_normalize(&raw),
            FeatureNorm::InstCount => normalize_to_inst_count(&raw),
        };
        let mut out = if self.cfg.filtered_features {
            filter_features(&normed)
        } else {
            normed
        };
        if self.cfg.feature_set == FeatureSet::Structural {
            // The caches and the incremental state only carry the 56-wide
            // Table-2 vector; the structural block always walks the
            // materialized module (`ensure_observable` guarantees
            // `current` is up to date before any observation). The same
            // normalization applies, with InstCount dividing by the raw
            // total instruction count (feature 51), and the §4 filter
            // never applies — the block is already importance-selected.
            let s = extract_structural(&self.current);
            match self.cfg.feature_norm {
                FeatureNorm::Raw => out.extend(s.iter().map(|&x| x as f64)),
                FeatureNorm::Log => {
                    out.extend(s.iter().map(|&x| (1.0 + x.max(0) as f64).ln()));
                }
                FeatureNorm::InstCount => {
                    let total = raw[51].max(1) as f64;
                    out.extend(s.iter().map(|&x| x as f64 / total));
                }
            }
        }
        out
    }

    fn observe(&mut self) -> Vec<f64> {
        self.ensure_observable();
        match self.cfg.observation {
            ObservationKind::ProgramFeatures => self.features(),
            ObservationKind::ActionHistory => self.action_histogram.clone(),
            ObservationKind::Combined => {
                let mut o = self.features();
                o.extend(&self.action_histogram);
                o
            }
        }
    }

    fn reward(&self, prev: u64, cur: u64) -> f64 {
        match self.cfg.reward {
            RewardKind::Zero => 0.0,
            RewardKind::Raw => prev as f64 - cur as f64,
            RewardKind::Log => {
                let d = prev as f64 - cur as f64;
                d.signum() * (1.0 + d.abs()).ln()
            }
        }
    }
}

impl Environment for PhaseOrderEnv {
    fn observation_dim(&self) -> usize {
        match self.cfg.observation {
            ObservationKind::ProgramFeatures => self.feature_len(),
            ObservationKind::ActionHistory => self.num_actions(),
            ObservationKind::Combined => self.feature_len() + self.num_actions(),
        }
    }

    fn num_actions(&self) -> usize {
        let base = if self.cfg.filtered_passes {
            FILTERED_PASSES.len()
        } else {
            NUM_PASSES
        };
        base + usize::from(self.cfg.include_terminate)
    }

    fn reset(&mut self) -> Vec<f64> {
        // Leave any per-episode fault-injection context behind.
        #[cfg(any(test, feature = "fault-injection"))]
        autophase_passes::fault::set_episode(None);
        // A COW clone: O(#functions) refcount bumps, not a deep copy.
        self.current = self.programs[self.program_cursor].clone();
        self.episode_program = self.program_cursor;
        if self.cfg.incremental {
            let idx = self.program_cursor;
            if self.inc_templates[idx].is_none() {
                // First episode on this program: pay one full extraction,
                // then every later reset clones the finished decomposition.
                self.inc_templates[idx] = Some(IncrementalEval::new(&self.programs[idx]));
            }
            self.inc = self.inc_templates[idx].clone();
        }
        // The episode starts pristine, so `applied` (cleared below) is an
        // exact changing-pass sequence again.
        self.snap_keys_valid = true;
        if !self.program_fps.is_empty() {
            self.current_fp = self.program_fps[self.program_cursor];
        }
        self.seq_hash = SeqHash::new();
        self.applied.clear();
        self.materialized = 0;
        self.program_cursor = (self.program_cursor + 1) % self.programs.len();
        self.steps_taken = 0;
        self.action_histogram = vec![0.0; self.num_actions()];
        self.episode_done = false;
        self.prev_cycles = self.cycles();
        self.observe()
    }

    fn reset_to(&mut self, episode: u64) -> Vec<f64> {
        // Episode-indexed program choice: any worker running episode `i`
        // sees the same program, making parallel collection deterministic.
        self.program_cursor = (episode % self.programs.len() as u64) as usize;
        let obs = self.reset();
        // Enter the episode's injection context after the generic reset
        // (which clears it): an episode runs on one thread, so per-pass
        // apply counts scoped to this context make "the Nth apply of pass
        // P in episode E" independent of worker count and scheduling.
        #[cfg(any(test, feature = "fault-injection"))]
        autophase_passes::fault::set_episode(Some(episode));
        obs
    }

    fn step(&mut self, action: usize) -> StepResult {
        assert!(!self.episode_done, "step() after episode end; call reset()");
        let pass_id = self.action_passes()[action];
        if pass_id == registry::TERMINATE {
            self.episode_done = true;
            return StepResult {
                observation: self.observe(),
                reward: 0.0,
                done: true,
            };
        }
        let quarantined = self
            .quarantine
            .as_ref()
            .is_some_and(|q| q.is_quarantined(self.current_fp, pass_id));

        // Poll the injection plan at the step level (not inside the
        // apply): whether a planned fault fires must not depend on cache
        // warmth, or chaos runs would diverge between cold and warm runs.
        // Masked actions never attempt an apply, so they don't poll (and
        // don't advance the per-episode apply counters).
        #[cfg(any(test, feature = "fault-injection"))]
        let injected = if quarantined {
            None
        } else {
            autophase_passes::fault::poll(pass_id)
        };
        #[cfg(not(any(test, feature = "fault-injection")))]
        let injected: Option<autophase_passes::checked::FaultKind> = None;

        // With a cache, the transition memo may already know whether this
        // pass changes the current state — then the (deterministic) pass
        // need not run at all, and `current` stays lazily stale until a
        // miss forces materialization.
        let mut faulted = false;
        let changed = if quarantined {
            // Masked: a known repeat offender on this program. Scored
            // like a faulted apply — no-op, zero reward — without even
            // attempting the pass.
            false
        } else if injected.is_some() {
            // Injected faults are keyed to per-episode apply counters, not
            // to module state, so the transition memo is bypassed in both
            // directions: a hit would skip the planned fault, a write
            // would poison fault-free runs.
            self.materialize();
            match apply_checked_traced(&mut self.current, pass_id, &self.cfg.fuel, injected) {
                Ok((c, cs)) => {
                    if c {
                        self.note_change(&cs);
                        if self.cache.is_some() {
                            self.materialized += 1;
                        }
                    }
                    c
                }
                Err(_) => {
                    faulted = true;
                    false
                }
            }
        } else if self.cache.is_some() {
            let key = CacheKey {
                program: self.current_fp,
                seq: self.seq_hash.value(),
            };
            // `transition` returns an owned answer, so this narrow borrow
            // replaces the old per-step `Arc` clone (an atomic refcount
            // bump on every step of every worker).
            match self
                .cache
                .as_deref()
                .and_then(|c| c.transition(&key, pass_id))
            {
                Some(c) => c,
                None => {
                    self.materialize();
                    let (c, f) = self.apply_and_record(pass_id);
                    faulted = f;
                    // Faulted transitions are never memoized: quarantine
                    // counts *repeat* offenses, and a memo hit would
                    // silently absorb every later one.
                    if !faulted {
                        if let Some(cache) = self.cache.as_deref() {
                            cache.record_transition(key, pass_id, c);
                        }
                    }
                    if c {
                        // `applied` gains this pass below; `current`
                        // already reflects it.
                        self.materialized += 1;
                    }
                    c
                }
            }
        } else if let Some(c) = self.snapshot_lookup(pass_id) {
            // Incremental mode, previously walked transition: the pass
            // did not run — the recorded result was restored instead.
            c
        } else {
            let (c, f) = self.apply_and_record(pass_id);
            faulted = f;
            c
        };
        if faulted {
            // The module was rolled back to its verified pre-pass state by
            // `apply_checked_with` (telemetry counted there); here only
            // the offender ledger is updated.
            if let Some(q) = &self.quarantine {
                q.record_fault(self.current_fp, pass_id);
            }
        }
        if changed {
            // Only changing passes enter the key: every no-op-padded
            // variant of one effective sequence shares a cache entry.
            self.seq_hash.push(pass_id);
            if self.cache.is_some() || self.inc.is_some() {
                self.applied.push(pass_id);
                if self.cache.is_none() {
                    // Without a cache there is no lazy materialization:
                    // `current` always reflects the whole sequence.
                    self.materialized = self.applied.len();
                }
            }
        }
        self.action_histogram[action] += 1.0;
        self.steps_taken += 1;

        // A pass that reports "no change" cannot move the cycle count;
        // skip the (expensive) re-profiling, exactly like caching the
        // simulator result. Zero-reward configurations (RL-PPO1, and
        // one-shot inference) never need intermediate profiles at all —
        // that is what makes Figure 9's "one sample per program" honest.
        let cur = if changed && self.cfg.reward != RewardKind::Zero {
            self.cycles()
        } else {
            self.prev_cycles
        };
        let reward = self.reward(self.prev_cycles, cur);
        self.prev_cycles = cur;
        let done = self.steps_taken >= self.cfg.episode_len;
        self.episode_done = done;
        StepResult {
            observation: self.observe(),
            reward,
            done,
        }
    }
}

/// Apply a full pass sequence to a fresh copy of `program` and return the
/// resulting cycle count (the objective the black-box searchers optimize).
pub fn sequence_cycles(program: &Module, seq: &[usize], hls: &HlsConfig) -> u64 {
    apply_and_profile(program, seq, hls).1
}

/// Apply a pass sequence and return both the optimized module and its
/// cycle count (one compilation — used where the caller also wants the
/// program's features, e.g. the §5.2 multi-action observation).
pub fn apply_and_profile(program: &Module, seq: &[usize], hls: &HlsConfig) -> (Module, u64) {
    // COW clone: the arenas are shared `Arc`s, and the pass pipeline
    // copy-on-writes only the functions it actually rewrites, so an
    // all-no-op sequence never copies a body at all. Bit-identical to the
    // old deep copy (see `apply_and_profile_matches_deep_clone_path`).
    let mut m = program.clone();
    registry::apply_sequence(&mut m, seq);
    let cycles = profile_module(&m, hls)
        .map(|r| r.cycles)
        .unwrap_or(u64::MAX / 4);
    (m, cycles)
}

/// One full-sequence evaluation: the features and cycle count the caller
/// needs whether or not the module itself was materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqEval {
    /// Table-2 features of the optimized module.
    pub features: FeatureVector,
    /// Cycle count of the optimized module (`u64::MAX / 4` when the
    /// profile failed).
    pub cycles: u64,
    /// Whether the evaluation was answered from the cache (no compile,
    /// no profile).
    pub cache_hit: bool,
}

/// [`apply_and_profile`] with memoization: keyed on the *raw* pass
/// sequence, so a hit skips pass application, profiling, and feature
/// extraction entirely. `program_fp` is the pristine program's
/// [`fingerprint_module`] (compute it once per program, not per call).
/// Failed profiles are evaluated but never cached.
pub fn evaluate_sequence_cached(
    program: &Module,
    program_fp: u64,
    seq: &[usize],
    hls: &HlsConfig,
    cache: &EvalCache,
) -> SeqEval {
    let key = CacheKey {
        program: program_fp,
        seq: SeqHash::of(seq),
    };
    if let Some(entry) = cache.get(&key) {
        return SeqEval {
            features: entry.features,
            cycles: entry.cycles,
            cache_hit: true,
        };
    }
    let mut m = program.clone();
    registry::apply_sequence(&mut m, seq);
    match profile_module(&m, hls) {
        Ok(report) => {
            let entry = CacheEntry::from_report(&m, &report);
            let eval = SeqEval {
                features: entry.features,
                cycles: entry.cycles,
                cache_hit: false,
            };
            cache.insert(key, entry);
            eval
        }
        Err(_) => SeqEval {
            features: extract(&m),
            cycles: u64::MAX / 4,
            cache_hit: false,
        },
    }
}

/// [`sequence_cycles`] with memoization (see [`evaluate_sequence_cached`]).
pub fn sequence_cycles_cached(
    program: &Module,
    program_fp: u64,
    seq: &[usize],
    hls: &HlsConfig,
    cache: &EvalCache,
) -> u64 {
    evaluate_sequence_cached(program, program_fp, seq, hls, cache).cycles
}

/// Cycle count of the unoptimized (`-O0`) program.
pub fn o0_cycles(program: &Module, hls: &HlsConfig) -> u64 {
    profile_module(program, hls)
        .map(|r| r.cycles)
        .unwrap_or(u64::MAX / 4)
}

/// Cycle count after the reference `-O3` pipeline.
pub fn o3_cycles(program: &Module, hls: &HlsConfig) -> u64 {
    let mut m = program.clone();
    autophase_passes::o3::o3(&mut m);
    profile_module(&m, hls)
        .map(|r| r.cycles)
        .unwrap_or(u64::MAX / 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_benchmarks::suite;
    use autophase_rl::env::Environment;

    fn small_program() -> Module {
        suite()
            .into_iter()
            .find(|b| b.name == "gsm")
            .unwrap()
            .module
    }

    #[test]
    fn reset_and_step_shapes() {
        let mut env = PhaseOrderEnv::single(small_program(), EnvConfig::default());
        let o = env.reset();
        assert_eq!(o.len(), 56);
        assert_eq!(env.num_actions(), 45);
        let r = env.step(38); // -mem2reg
        assert_eq!(r.observation.len(), 56);
        assert!(!r.done);
    }

    #[test]
    fn mem2reg_gives_positive_reward() {
        let mut env = PhaseOrderEnv::single(small_program(), EnvConfig::default());
        env.reset();
        let r = env.step(38);
        assert!(r.reward > 0.0, "mem2reg reward {}", r.reward);
    }

    #[test]
    fn noop_pass_zero_reward_and_no_sample() {
        let mut env = PhaseOrderEnv::single(small_program(), EnvConfig::default());
        env.reset();
        let s0 = env.samples();
        // -loweratomic (44) is a guaranteed no-op.
        let r = env.step(44);
        assert_eq!(r.reward, 0.0);
        assert_eq!(env.samples(), s0, "no-op must not consume a sample");
    }

    #[test]
    fn terminate_action_ends_episode() {
        let cfg = EnvConfig {
            include_terminate: true,
            episode_len: 10,
            ..EnvConfig::default()
        };
        let mut env = PhaseOrderEnv::single(small_program(), cfg);
        env.reset();
        assert_eq!(env.num_actions(), 46);
        let terminate = env.num_actions() - 1;
        let r = env.step(terminate);
        assert!(r.done);
        assert_eq!(r.reward, 0.0);
    }

    #[test]
    fn zero_reward_env_never_profiles_mid_episode() {
        let cfg = EnvConfig {
            reward: RewardKind::Zero,
            episode_len: 6,
            ..EnvConfig::default()
        };
        let mut env = PhaseOrderEnv::single(small_program(), cfg);
        env.reset();
        let after_reset = env.samples();
        for a in [38, 23, 31, 30, 7, 28] {
            let r = env.step(a);
            assert_eq!(r.reward, 0.0);
        }
        assert_eq!(env.samples(), after_reset, "inference must be profile-free");
    }

    #[test]
    fn episode_terminates_at_length() {
        let cfg = EnvConfig {
            episode_len: 3,
            ..EnvConfig::default()
        };
        let mut env = PhaseOrderEnv::single(small_program(), cfg);
        env.reset();
        assert!(!env.step(3).done);
        assert!(!env.step(3).done);
        assert!(env.step(3).done);
    }

    #[test]
    fn action_history_observation() {
        let cfg = EnvConfig {
            observation: ObservationKind::ActionHistory,
            episode_len: 5,
            ..EnvConfig::default()
        };
        let mut env = PhaseOrderEnv::single(small_program(), cfg);
        let o = env.reset();
        assert_eq!(o.len(), 45);
        assert!(o.iter().all(|&x| x == 0.0));
        let r = env.step(7);
        assert_eq!(r.observation[7], 1.0);
        let r = env.step(7);
        assert_eq!(r.observation[7], 2.0);
    }

    #[test]
    fn combined_and_filtered_dimensions() {
        let cfg = EnvConfig {
            observation: ObservationKind::Combined,
            filtered_features: true,
            filtered_passes: true,
            ..EnvConfig::default()
        };
        let mut env = PhaseOrderEnv::single(small_program(), cfg);
        assert_eq!(env.num_actions(), FILTERED_PASSES.len());
        let o = env.reset();
        assert_eq!(
            o.len(),
            autophase_features::FILTERED_FEATURES.len() + FILTERED_PASSES.len()
        );
    }

    #[test]
    fn structural_feature_set_widens_observation() {
        let cfg = EnvConfig {
            observation: ObservationKind::Combined,
            feature_norm: FeatureNorm::InstCount,
            filtered_features: true,
            filtered_passes: true,
            feature_set: FeatureSet::Structural,
            ..EnvConfig::default()
        };
        let mut env = PhaseOrderEnv::single(small_program(), cfg.clone());
        let expected = autophase_features::FILTERED_FEATURES.len()
            + NUM_STRUCTURAL_FEATURES
            + FILTERED_PASSES.len();
        assert_eq!(env.observation_dim(), expected);
        let o = env.reset();
        assert_eq!(o.len(), expected);
        // The Table-2 prefix must be unchanged relative to the plain set:
        // the structural block strictly extends, never reshuffles.
        let base_cfg = EnvConfig {
            feature_set: FeatureSet::Table2,
            ..cfg
        };
        let mut base = PhaseOrderEnv::single(small_program(), base_cfg);
        let ob = base.reset();
        let prefix = autophase_features::FILTERED_FEATURES.len();
        assert_eq!(&o[..prefix], &ob[..prefix]);
        // Observations stay consistent while stepping (the structural
        // block is extracted from the materialized module each step).
        let mem2reg = env.action_passes().iter().position(|&p| p == 38).unwrap();
        let r = env.step(mem2reg);
        assert_eq!(r.observation.len(), expected);
        assert!(r.observation.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn structural_observation_identical_with_and_without_incremental() {
        for norm in [FeatureNorm::Raw, FeatureNorm::Log, FeatureNorm::InstCount] {
            let mk = |incremental| EnvConfig {
                observation: ObservationKind::ProgramFeatures,
                feature_norm: norm,
                feature_set: FeatureSet::Structural,
                incremental,
                ..EnvConfig::default()
            };
            let mut a = PhaseOrderEnv::single(small_program(), mk(true));
            let mut b = PhaseOrderEnv::single(small_program(), mk(false));
            let (oa, ob) = (a.reset(), b.reset());
            assert_eq!(oa, ob, "reset observation diverged under {norm:?}");
            for pass in [38, 31, 7] {
                let ra = a.step(pass);
                let rb = b.step(pass);
                assert_eq!(
                    ra.observation, rb.observation,
                    "pass {pass} observation diverged under {norm:?}"
                );
            }
        }
    }

    #[test]
    fn multi_program_round_robin() {
        let progs: Vec<Module> = suite().into_iter().take(2).map(|b| b.module).collect();
        let names: Vec<String> = progs.iter().map(|m| m.name.clone()).collect();
        let mut env = PhaseOrderEnv::new(progs, EnvConfig::default());
        env.reset();
        let first = env.module().name.clone();
        env.reset();
        let second = env.module().name.clone();
        assert_ne!(first, second);
        assert!(names.contains(&first) && names.contains(&second));
    }

    #[test]
    fn area_objective_rewards_shrinking_circuits() {
        let cfg = EnvConfig {
            objective: Objective::Area,
            ..EnvConfig::default()
        };
        let mut env = PhaseOrderEnv::single(small_program(), cfg);
        env.reset();
        // Deleting dead loops / promoting memory shrinks the FSM and RAMs.
        let r1 = env.step(38); // -mem2reg
        let r2 = env.step(31); // -simplifycfg
        assert!(
            r1.reward + r2.reward > 0.0,
            "area should shrink: {} + {}",
            r1.reward,
            r2.reward
        );
    }

    #[test]
    fn software_objective_counts_dynamic_insts() {
        let cfg = EnvConfig {
            objective: Objective::DynamicInsts,
            ..EnvConfig::default()
        };
        let mut env = PhaseOrderEnv::single(small_program(), cfg);
        env.reset();
        let before = env.last_cycles();
        let r = env.step(38); // -mem2reg removes loads/stores → fewer insts
        assert!(r.reward > 0.0, "reward {}", r.reward);
        assert!(env.last_cycles() < before);
    }

    #[test]
    fn o3_beats_o0_on_gsm() {
        let hls = HlsConfig::default();
        let p = small_program();
        assert!(o3_cycles(&p, &hls) < o0_cycles(&p, &hls));
    }

    #[test]
    fn injected_fault_is_a_zero_reward_noop_and_rolls_back() {
        use autophase_passes::fault::{self, FaultPlan, FaultSpec};
        let _g = fault::test_guard();
        fault::quiet_panic_hook();
        // Episode-scoped spec: concurrent tests using plain reset() run in
        // the `None` episode context and can never match it.
        let plan = fault::install_plan(FaultPlan::new(vec![FaultSpec {
            pass: 38,
            nth: 1,
            episode: Some(9001),
            kind: autophase_passes::checked::FaultKind::Panic,
        }]));
        let pristine = autophase_ir::printer::print_module(&small_program());
        let mut env = PhaseOrderEnv::single(small_program(), EnvConfig::default());
        env.reset_to(9001);
        let r = env.step(38);
        assert_eq!(r.reward, 0.0, "faulted apply must score as a no-op");
        assert!(!r.done);
        assert_eq!(
            autophase_ir::printer::print_module(env.module()),
            pristine,
            "faulted apply must roll back to the pre-pass module"
        );
        autophase_ir::verify::verify_module(env.module()).unwrap();
        assert_eq!(plan.fired(), 1);
        // The second application of the same pass is past the planned
        // `nth` and goes through cleanly.
        let r = env.step(38);
        assert!(r.reward > 0.0, "post-fault apply works: {}", r.reward);
        fault::clear_plan();
    }

    #[test]
    fn injected_fault_bypasses_the_transition_memo() {
        use autophase_passes::fault::{self, FaultPlan, FaultSpec};
        let _g = fault::test_guard();
        fault::quiet_panic_hook();
        let cache = Arc::new(EvalCache::new(64));
        let mut env = PhaseOrderEnv::with_cache(
            vec![small_program()],
            EnvConfig::default(),
            Arc::clone(&cache),
        );
        // Warm the memo with a fault-free episode.
        env.reset_to(9010);
        let clean = env.step(38);
        assert!(clean.reward > 0.0);
        // Same state, warm memo — the planned fault must still fire.
        let plan = fault::install_plan(FaultPlan::new(vec![FaultSpec {
            pass: 38,
            nth: 1,
            episode: Some(9011),
            kind: autophase_passes::checked::FaultKind::CorruptIr,
        }]));
        env.reset_to(9011);
        let r = env.step(38);
        assert_eq!(r.reward, 0.0, "memo hit must not absorb a planned fault");
        assert_eq!(plan.fired(), 1);
        fault::clear_plan();
        // The fault wrote nothing into the memo: a fresh episode replays
        // the clean transition bit-identically.
        env.reset_to(9012);
        let again = env.step(38);
        assert_eq!(again.reward, clean.reward);
        assert_eq!(again.observation, clean.observation);
    }

    #[test]
    fn quarantine_masks_repeat_offenders() {
        use crate::quarantine::Quarantine;
        use autophase_passes::fault::{self, FaultPlan, FaultSpec};
        let _g = fault::test_guard();
        fault::quiet_panic_hook();
        let specs = [9021u64, 9022]
            .iter()
            .map(|&ep| FaultSpec {
                pass: 38,
                nth: 1,
                episode: Some(ep),
                kind: autophase_passes::checked::FaultKind::Panic,
            })
            .collect();
        let plan = fault::install_plan(FaultPlan::new(specs));
        let q = Arc::new(Quarantine::new(2));
        let mut env = PhaseOrderEnv::single(small_program(), EnvConfig::default());
        env.set_quarantine(Arc::clone(&q));
        let fp = crate::eval_cache::fingerprint_module(&small_program());

        env.reset_to(9021);
        assert_eq!(env.step(38).reward, 0.0);
        assert_eq!(q.fault_count(fp, 38), 1);
        assert!(!q.is_quarantined(fp, 38));

        env.reset_to(9022);
        assert_eq!(env.step(38).reward, 0.0);
        assert!(q.is_quarantined(fp, 38), "second fault crosses threshold");
        assert_eq!(env.masked_passes(), vec![38]);

        // Masked now: the pass is not even attempted (no poll, no fault),
        // and the step is a guaranteed no-op.
        env.reset_to(9023);
        let r = env.step(38);
        assert_eq!(r.reward, 0.0);
        assert_eq!(q.fault_count(fp, 38), 2, "masked steps record no fault");
        assert_eq!(plan.fired(), 2);
        fault::clear_plan();
    }

    #[test]
    fn organic_fuel_fault_feeds_quarantine_and_skips_the_memo() {
        use crate::quarantine::Quarantine;
        use autophase_passes::fault;
        let _g = fault::test_guard();
        fault::clear_plan();
        let cfg = EnvConfig {
            // Any changing pass now overflows the budget: an *organic*
            // fault through the normal (non-injected) checked path.
            fuel: autophase_passes::FuelBudget {
                max_insts: 1,
                ..autophase_passes::FuelBudget::default()
            },
            ..EnvConfig::default()
        };
        let cache = Arc::new(EvalCache::new(64));
        let q = Arc::new(Quarantine::new(2));
        let mut env = PhaseOrderEnv::with_cache(vec![small_program()], cfg, Arc::clone(&cache));
        env.set_quarantine(Arc::clone(&q));
        let fp = crate::eval_cache::fingerprint_module(&small_program());

        // Faulted transitions must not be memoized, or the second episode
        // would hit the memo and the repeat offense would go uncounted.
        env.reset();
        assert_eq!(env.step(38).reward, 0.0);
        assert_eq!(q.fault_count(fp, 38), 1);
        env.reset();
        assert_eq!(env.step(38).reward, 0.0);
        assert_eq!(q.fault_count(fp, 38), 2);
        assert!(q.is_quarantined(fp, 38));
    }

    #[test]
    fn fault_isolation_off_reproduces_the_unchecked_path() {
        use autophase_passes::fault;
        let _g = fault::test_guard();
        fault::clear_plan();
        let unchecked_cfg = EnvConfig {
            fault_isolation: false,
            ..EnvConfig::default()
        };
        let mut checked = PhaseOrderEnv::single(small_program(), EnvConfig::default());
        let mut unchecked = PhaseOrderEnv::single(small_program(), unchecked_cfg);
        let o1 = checked.reset();
        let o2 = unchecked.reset();
        assert_eq!(o1, o2);
        for &a in &[38usize, 23, 31, 30, 7, 28] {
            let r1 = checked.step(a);
            let r2 = unchecked.step(a);
            assert_eq!(r1.reward, r2.reward, "pass {a}");
            assert_eq!(r1.observation, r2.observation, "pass {a}");
        }
    }

    #[test]
    fn incremental_env_bit_identical_to_full_recompute() {
        // Same actions, same program: the incremental env must produce
        // exactly the observations/rewards of the full-recompute baseline,
        // across episode boundaries (templates, memo reuse).
        let for_cfg = |incremental: bool| {
            let cfg = EnvConfig {
                episode_len: 8,
                incremental,
                ..EnvConfig::default()
            };
            let mut env = PhaseOrderEnv::single(small_program(), cfg);
            let mut log: Vec<(Vec<f64>, f64)> = Vec::new();
            for _ in 0..2 {
                let obs = env.reset();
                log.push((obs, f64::NAN));
                for &a in &[38usize, 23, 33, 30, 31, 25, 44, 28] {
                    let r = env.step(a);
                    log.push((r.observation, r.reward));
                }
                log.push((Vec::new(), env.cycles() as f64));
            }
            log
        };
        let inc = for_cfg(true);
        let full = for_cfg(false);
        assert_eq!(inc.len(), full.len());
        for (i, (a, b)) in inc.iter().zip(&full).enumerate() {
            assert_eq!(a.0, b.0, "observation diverged at entry {i}");
            assert!(
                a.1 == b.1 || (a.1.is_nan() && b.1.is_nan()),
                "reward diverged at entry {i}: {} vs {}",
                a.1,
                b.1
            );
        }
    }

    #[test]
    fn profile_memo_serves_repeat_states_without_sampling() {
        let mut env = PhaseOrderEnv::single(small_program(), EnvConfig::default());
        env.reset();
        let after_first_reset = env.samples();
        assert!(after_first_reset > 0);
        // Second episode on the same program: the reset-state profile is a
        // content-fingerprint memo hit, not a new profiler run.
        env.reset();
        assert_eq!(
            env.samples(),
            after_first_reset,
            "pristine-state re-profile must be a memo hit"
        );
        // And a step that revisits a previously profiled post-pass state
        // (same pass, fresh episode) is also free.
        let r1 = env.step(38);
        let after_first_step = env.samples();
        env.reset();
        let r2 = env.step(38);
        assert_eq!(env.samples(), after_first_step);
        assert_eq!(r1.reward, r2.reward);
        assert_eq!(r1.observation, r2.observation);
    }

    #[test]
    fn snapshot_memo_serves_repeat_sequences() {
        // Walking the same action sequence twice: episode two's applies
        // are all snapshot hits (the passes never run), and the episode
        // is bit-identical to the first.
        let cfg = EnvConfig {
            episode_len: 6,
            ..EnvConfig::default()
        };
        let mut env = PhaseOrderEnv::single(small_program(), cfg);
        let actions = [38usize, 23, 33, 30, 44, 31];
        let run = |env: &mut PhaseOrderEnv| {
            let mut log = vec![(env.reset(), 0.0)];
            for &a in &actions {
                let r = env.step(a);
                log.push((r.observation, r.reward));
            }
            log
        };
        let first = run(&mut env);
        let (h0, m0) = env.snapshot_stats();
        assert_eq!(h0, 0, "first walk has nothing to hit");
        assert_eq!(m0, actions.len() as u64);
        let second = run(&mut env);
        let (h1, m1) = env.snapshot_stats();
        assert_eq!(h1, actions.len() as u64, "second walk is all hits");
        assert_eq!(m1, m0, "second walk misses nothing");
        assert_eq!(first, second);
        // Diverging at the last step records exactly one new transition.
        env.reset();
        for &a in &actions[..actions.len() - 1] {
            env.step(a);
        }
        env.step(7);
        let (h2, m2) = env.snapshot_stats();
        assert_eq!(h2, h1 + (actions.len() - 1) as u64);
        assert_eq!(m2, m1 + 1);
    }

    #[test]
    fn apply_and_profile_matches_deep_clone_path() {
        // Regression for the COW routing: the shared-arena clone inside
        // `apply_and_profile` must be indistinguishable from the pre-COW
        // deep copy, and must leave the input program untouched.
        let p = small_program();
        let pristine = autophase_ir::printer::print_module(&p);
        let hls = HlsConfig::default();
        for seq in [
            vec![38usize, 23, 33, 30, 31],
            vec![44usize, 44, 44],
            vec![25usize, 31, 7, 28, 43, 38],
        ] {
            let (cow_m, cow_cycles) = apply_and_profile(&p, &seq, &hls);
            let mut deep = p.deep_clone();
            registry::apply_sequence(&mut deep, &seq);
            let deep_cycles = profile_module(&deep, &hls)
                .map(|r| r.cycles)
                .unwrap_or(u64::MAX / 4);
            assert_eq!(cow_cycles, deep_cycles, "seq {seq:?}");
            assert_eq!(
                autophase_ir::printer::print_module(&cow_m),
                autophase_ir::printer::print_module(&deep),
                "seq {seq:?}"
            );
            assert_eq!(
                autophase_ir::printer::print_module(&p),
                pristine,
                "input aliased by COW apply (seq {seq:?})"
            );
        }
    }

    #[test]
    fn sequence_cycles_matches_env_trajectory() {
        let p = small_program();
        let hls = HlsConfig::default();
        let seq = [38usize, 23, 31];
        let by_fn = sequence_cycles(&p, &seq, &hls);
        let mut env = PhaseOrderEnv::single(p, EnvConfig::default());
        env.reset();
        for &s in &seq {
            env.step(s);
        }
        let by_env = env.cycles();
        assert_eq!(by_fn, by_env);
    }
}
