//! One-call program tuning — the downstream-user entry point.
//!
//! Wraps the machinery of [`crate::algorithms`] behind a single function:
//! give it a program, get back the best pass ordering found, with the
//! baseline comparisons a user needs to judge it.

use crate::algorithms::{run_algorithm, Algorithm, Budget};
use crate::env::{o0_cycles, o3_cycles, sequence_cycles};
use autophase_hls::HlsConfig;
use autophase_ir::Module;
use autophase_search::{genetic, greedy, opentuner, Objective};

/// How much compile time to spend tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// A few hundred compilations (seconds).
    Quick,
    /// A few thousand compilations (paper-scale per-program search).
    Standard,
    /// An order more (squeezes the last percent).
    Thorough,
}

impl Effort {
    fn budget(self) -> (u64, usize) {
        // (total compilations across strategies, sequence length)
        match self {
            Effort::Quick => (400, 24),
            Effort::Standard => (3000, 45),
            Effort::Thorough => (12_000, 45),
        }
    }
}

/// The outcome of [`tune`].
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The best pass ordering found (Table-1 indices).
    pub sequence: Vec<usize>,
    /// Cycle estimate with that ordering.
    pub cycles: u64,
    /// Cycle estimate of the unoptimized program.
    pub o0_cycles: u64,
    /// Cycle estimate under the fixed `-O3` pipeline.
    pub o3_cycles: u64,
    /// Compilations spent.
    pub samples: u64,
}

impl TuneResult {
    /// Fractional improvement over `-O3` (positive = faster than `-O3`).
    pub fn improvement_over_o3(&self) -> f64 {
        (self.o3_cycles as f64 - self.cycles as f64) / self.o3_cycles as f64
    }

    /// Speedup over the unoptimized program.
    pub fn speedup_over_o0(&self) -> f64 {
        self.o0_cycles as f64 / self.cycles as f64
    }
}

/// Search for a good pass ordering for `program`.
///
/// Runs insertion greedy first (cheap, strong opening) and spends the rest
/// of the budget on the OpenTuner-style ensemble seeded alongside a
/// genetic refinement; returns whichever ordering was best, with the
/// `-O0`/`-O3` reference points. The `-O3` pipeline itself is always a
/// candidate, so the result is never worse than `-O3`.
pub fn tune(program: &Module, effort: Effort, seed: u64) -> TuneResult {
    let hls = HlsConfig::default();
    let (budget, seq_len) = effort.budget();
    let o0 = o0_cycles(program, &hls);
    let o3 = o3_cycles(program, &hls);

    let mut best_seq: Vec<usize> = autophase_passes::o3::O3_SEQUENCE.to_vec();
    let mut best_cycles = o3;
    let mut samples = 1u64;

    {
        let mut obj = Objective::new(|seq: &[usize]| sequence_cycles(program, seq, &hls) as f64);
        let r = greedy::search(
            &mut obj,
            autophase_passes::registry::NUM_PASSES,
            seq_len,
            budget / 3,
            None,
        );
        samples += r.samples;
        if (r.best_cost as u64) < best_cycles {
            best_cycles = r.best_cost as u64;
            best_seq = r.best_sequence;
        }
    }
    {
        let mut obj = Objective::new(|seq: &[usize]| sequence_cycles(program, seq, &hls) as f64);
        let r = opentuner::search(
            &mut obj,
            autophase_passes::registry::NUM_PASSES,
            seq_len,
            budget / 3,
            &opentuner::TunerConfig::default(),
            seed,
        );
        samples += r.samples;
        if (r.best_cost as u64) < best_cycles {
            best_cycles = r.best_cost as u64;
            best_seq = r.best_sequence;
        }
    }
    {
        let mut obj = Objective::new(|seq: &[usize]| sequence_cycles(program, seq, &hls) as f64);
        let r = genetic::search(
            &mut obj,
            autophase_passes::registry::NUM_PASSES,
            seq_len,
            budget / 3,
            &genetic::GaConfig::default(),
            seed ^ 0x6A,
        );
        samples += r.samples;
        if (r.best_cost as u64) < best_cycles {
            best_cycles = r.best_cost as u64;
            best_seq = r.best_sequence;
        }
    }

    TuneResult {
        sequence: best_seq,
        cycles: best_cycles,
        o0_cycles: o0,
        o3_cycles: o3,
        samples,
    }
}

/// Tune with a trained RL agent instead of search (one compilation): the
/// deployment mode §6.2 argues for. See
/// [`crate::experiment::train_generalist`] for obtaining the agent.
pub fn tune_with_agent(
    agent: &autophase_rl::ppo::PpoAgent,
    env_cfg: &crate::env::EnvConfig,
    program: &Module,
) -> TuneResult {
    let hls = HlsConfig::default();
    let (seq, cycles) = crate::experiment::infer_sequence(agent, env_cfg, program);
    TuneResult {
        sequence: seq,
        cycles,
        o0_cycles: o0_cycles(program, &hls),
        o3_cycles: o3_cycles(program, &hls),
        samples: 1,
    }
}

/// Re-exported for convenience beside [`tune`]: the per-algorithm runner.
pub fn run_named_algorithm(
    algorithm: Algorithm,
    program: &Module,
    budget: &Budget,
    seed: u64,
) -> crate::algorithms::AlgoResult {
    run_algorithm(algorithm, program, budget, &HlsConfig::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_benchmarks::suite;

    #[test]
    fn tune_never_loses_to_o3_and_beats_o0() {
        let p = suite()
            .into_iter()
            .find(|b| b.name == "gsm")
            .unwrap()
            .module;
        let r = tune(&p, Effort::Quick, 3);
        assert!(r.cycles <= r.o3_cycles);
        assert!(r.speedup_over_o0() > 1.0);
        assert!(r.improvement_over_o3() >= 0.0);
        assert!(r.samples > 100);
        // The sequence actually reproduces the reported cycles.
        let again = sequence_cycles(&p, &r.sequence, &HlsConfig::default());
        assert_eq!(again, r.cycles);
    }

    #[test]
    fn effort_scales_budget() {
        let (q, _) = Effort::Quick.budget();
        let (s, _) = Effort::Standard.budget();
        let (t, _) = Effort::Thorough.budget();
        assert!(q < s && s < t);
    }
}
