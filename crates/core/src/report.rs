//! Plain-text rendering of tables, bars, curves, and heat maps.

use crate::algorithms::Algorithm;
use crate::dataset::ImportanceAnalysis;
use crate::experiment::{Fig7Result, GeneralizationResult, LearningCurve};

/// Render Table 1 (the pass list).
pub fn table1() -> String {
    let mut out = String::from("Table 1. LLVM Transform Passes\n");
    for (i, name) in autophase_passes::registry::PASS_NAMES.iter().enumerate() {
        out.push_str(&format!("{i:>3}  {name}\n"));
    }
    out
}

/// Render Table 2 (the feature list).
pub fn table2() -> String {
    let mut out = String::from("Table 2. Program Features\n");
    for (i, name) in autophase_features::feature_names().iter().enumerate() {
        out.push_str(&format!("{i:>3}  {name}\n"));
    }
    out
}

/// Render Table 3 (algorithm ↔ observation/action spaces).
pub fn table3() -> String {
    let rows = [
        ("RL-PPO1", "PPO", "Program Features", "Single-Action"),
        ("RL-PPO2", "PPO", "Action History", "Single-Action"),
        (
            "RL-PPO3",
            "PPO",
            "Action History + Program Features",
            "Multiple-Action",
        ),
        ("RL-A3C", "A3C", "Program Features", "Single-Action"),
        ("RL-ES", "ES", "Program Features", "Single-Action"),
    ];
    let mut out =
        String::from("Table 3. Observation and action spaces of the deep RL algorithms\n");
    out.push_str(&format!(
        "{:<10} {:<6} {:<36} {}\n",
        "Name", "Algo", "Observation Space", "Action Space"
    ));
    for (n, a, o, s) in rows {
        out.push_str(&format!("{n:<10} {a:<6} {o:<36} {s}\n"));
    }
    out
}

/// Render Figure 7 as a text table (bars + sample line).
pub fn fig7_table(r: &Fig7Result) -> String {
    let means = r.mean_improvement();
    let samples = r.mean_samples();
    let mut out = String::from("Figure 7. Circuit speedup and sample size comparison\n");
    out.push_str(&format!(
        "{:<14} {:>12} {:>16}\n",
        "Algorithm", "vs -O3", "samples/program"
    ));
    for ((alg, imp), (_, s)) in means.iter().zip(&samples) {
        out.push_str(&format!(
            "{:<14} {:>11.1}% {:>16.0}  {}\n",
            alg.name(),
            imp * 100.0,
            s,
            bar(*imp)
        ));
    }
    out.push_str("\nPer-benchmark improvement over -O3 (%):\n");
    out.push_str(&format!("{:<12}", "benchmark"));
    for alg in Algorithm::ALL {
        out.push_str(&format!("{:>13}", alg.name()));
    }
    out.push('\n');
    for (name, results) in &r.per_benchmark {
        out.push_str(&format!("{name:<12}"));
        for res in results {
            out.push_str(&format!("{:>12.1}%", res.improvement_over_o3 * 100.0));
        }
        out.push('\n');
    }
    out
}

/// Render Figure 8 learning curves as aligned text series.
pub fn fig8_table(curves: &[LearningCurve]) -> String {
    let mut out = String::from("Figure 8. Episode reward mean vs. step\n");
    for c in curves {
        out.push_str(&format!(
            "\n{} (final level {:.3}):\n",
            c.label,
            c.final_level()
        ));
        for (s, r) in c.steps.iter().zip(&c.reward_mean) {
            out.push_str(&format!("  step {s:>8}  reward_mean {r:>10.3}\n"));
        }
    }
    out
}

/// Render Figure 9 as a text table.
pub fn fig9_table(results: &[GeneralizationResult]) -> String {
    let mut out = String::from("Figure 9. Generalization: one compilation per unseen program\n");
    out.push_str(&format!(
        "{:<20} {:>12} {:>16}\n",
        "Algorithm", "vs -O3", "samples/program"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<20} {:>11.1}% {:>16}  {}\n",
            r.label,
            r.mean_improvement * 100.0,
            r.samples_per_program,
            bar(r.mean_improvement)
        ));
    }
    out
}

/// Render an importance matrix as an ASCII heat map (Figures 5 and 6).
/// Rows = passes, columns = features (or previous passes).
pub fn heatmap(matrix: &[Vec<f64>], row_label: &str, col_label: &str) -> String {
    const SHADES: [char; 7] = [' ', '.', ':', '+', '*', '#', '@'];
    let mut out = format!("rows: {row_label}, cols: {col_label}\n");
    let max = matrix
        .iter()
        .flat_map(|r| r.iter())
        .copied()
        .fold(0.0f64, f64::max)
        .max(1e-12);
    for (i, row) in matrix.iter().enumerate() {
        out.push_str(&format!("{i:>3} |"));
        for &v in row {
            let idx = ((v / max) * (SHADES.len() - 1) as f64).round() as usize;
            out.push(SHADES[idx.min(SHADES.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

/// Render the full §4 analysis.
pub fn importance_report(a: &ImportanceAnalysis) -> String {
    let mut out = String::from("Figure 5. Feature importance per pass\n");
    out.push_str(&heatmap(&a.feature_importance, "pass", "feature"));
    out.push_str("\nFigure 6. Previously-applied-pass importance per pass\n");
    out.push_str(&heatmap(&a.history_importance, "pass", "previous pass"));
    out.push_str("\nMost impactful passes: ");
    for p in a.impactful_passes(16) {
        out.push_str(&format!("{} ", autophase_passes::registry::pass_name(p)));
    }
    out.push('\n');
    out
}

fn bar(improvement: f64) -> String {
    let n = (improvement * 100.0).round();
    if n >= 0.0 {
        "█".repeat((n as usize).min(60))
    } else {
        format!("-{}", "█".repeat((-n as usize).min(60)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::AlgoResult;

    fn fake_fig7() -> Fig7Result {
        let mk = |alg: Algorithm, imp: f64, samples: u64| AlgoResult {
            algorithm: alg,
            cycles: 1000,
            improvement_over_o3: imp,
            samples,
        };
        let results: Vec<AlgoResult> = Algorithm::ALL
            .iter()
            .enumerate()
            .map(|(i, &a)| mk(a, i as f64 / 100.0 - 0.02, (i as u64 + 1) * 10))
            .collect();
        Fig7Result {
            per_benchmark: vec![
                ("gsm".to_string(), results.clone()),
                ("aes".to_string(), results),
            ],
        }
    }

    #[test]
    fn fig7_table_renders_all_algorithms_and_benchmarks() {
        let text = fig7_table(&fake_fig7());
        for alg in Algorithm::ALL {
            assert!(text.contains(alg.name()), "missing {}", alg.name());
        }
        assert!(text.contains("gsm"));
        assert!(text.contains("aes"));
        assert!(text.contains("samples/program"));
    }

    #[test]
    fn fig9_table_renders() {
        let rs = vec![GeneralizationResult {
            label: "RL-filtered-norm2".to_string(),
            mean_improvement: 0.04,
            samples_per_program: 1,
        }];
        let text = fig9_table(&rs);
        assert!(text.contains("RL-filtered-norm2"));
        assert!(text.contains("4.0%"));
    }

    #[test]
    fn fig8_table_renders_curves() {
        let c = LearningCurve {
            label: "filtered-norm2",
            steps: vec![96, 192],
            reward_mean: vec![1.0, 2.0],
        };
        let text = fig8_table(&[c]);
        assert!(text.contains("filtered-norm2"));
        assert!(text.contains("step"));
    }

    #[test]
    fn tables_render() {
        let t1 = table1();
        assert!(t1.contains("-loop-rotate"));
        assert!(t1.contains(" 45  -terminate"));
        let t2 = table2();
        assert!(t2.contains("Number of critical edges"));
        let t3 = table3();
        assert!(t3.contains("Multiple-Action"));
    }

    #[test]
    fn heatmap_shades_scale() {
        let m = vec![vec![0.0, 0.5, 1.0], vec![1.0, 0.0, 0.0]];
        let h = heatmap(&m, "r", "c");
        assert!(h.contains('@'));
        assert!(h.lines().count() >= 3);
    }

    #[test]
    fn bar_direction() {
        assert!(bar(0.25).starts_with('█'));
        assert!(bar(-0.10).starts_with('-'));
    }
}
