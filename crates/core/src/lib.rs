//! The AutoPhase framework (§3): the phase-ordering environment tying the
//! compiler, HLS profiler, feature extractor, agents, and search baselines
//! together, plus the experiment runners that regenerate every table and
//! figure of the paper.
//!
//! * [`env`](mod@env) — the gym-like [`PhaseOrderEnv`]: actions are Table-1 passes,
//!   observations are Table-2 features and/or the applied-pass histogram,
//!   the reward is the drop in LegUp-estimated cycle count (§5.1);
//! * [`multi`] — the §5.2 multiple-passes-per-action formulation
//!   (RL-PPO3) and its factored-PPO trainer;
//! * [`eval_cache`] — the sharded, thread-safe memoization cache that
//!   deduplicates profiler runs across episodes and workers;
//! * [`incremental`](mod@incremental) — per-function fingerprint and
//!   feature memos plus a content-addressed profile memo, making each
//!   step's evaluation cost proportional to what the pass changed;
//! * [`quarantine`] — the shared repeat-offender table that masks
//!   `(program, pass)` pairs which keep faulting;
//! * [`dataset`] — feature–action–reward tuple collection for the §4
//!   random-forest importance analysis;
//! * [`algorithms`] — Table 3: every algorithm of Figure 7 behind one
//!   interface, each reporting speedup over `-O3` and samples used;
//! * [`experiment`] — the Figure 5–9 runners;
//! * [`report`] — plain-text table/figure rendering;
//! * [`tune`](mod@tune) — the one-call "find me a good ordering" API for
//!   downstream users.
#![warn(missing_docs)]

pub mod algorithms;
pub mod dataset;
pub mod env;
pub mod eval_cache;
pub mod experiment;
pub mod incremental;
pub mod multi;
pub mod quarantine;
pub mod report;
pub mod tune;

pub use env::{Objective, ObservationKind, PhaseOrderEnv, RewardKind};
pub use eval_cache::{CacheEntry, CacheKey, CacheStats, EvalCache, ModuleFingerprints, SeqHash};
pub use incremental::{IncrementalEval, ProfileMemo, SnapEntry, SnapshotMemo};
pub use quarantine::Quarantine;
pub use tune::{tune, Effort, TuneResult};
