//! Incremental evaluation state for the phase-ordering environment.
//!
//! The environment applies one pass per step, and a pass typically touches
//! one function out of many. This module keeps every derived quantity the
//! reward loop needs — per-function content fingerprints, the per-function
//! feature decomposition, and whole-module profile results — keyed or
//! maintained so that a step's cost is proportional to what the pass
//! actually changed:
//!
//! * [`IncrementalEval`] pairs the fingerprint memo
//!   ([`ModuleFingerprints`]) with the feature decomposition
//!   ([`IncrementalFeatures`]) and routes a pass's `ChangeSet` to both,
//!   re-hashing/re-extracting only dirty functions (falling back to a
//!   full rebuild on structural or signature changes);
//! * [`ProfileMemo`] memoizes whole-module [`HlsReport`]s by the
//!   *content* fingerprint of the module, so any pass sequence that
//!   reaches an already-profiled module state — every episode reset, a
//!   no-op-heavy tail, two orders that commute — skips the interpreter
//!   and scheduler entirely. Content addressing also makes it immune to
//!   transaction rollbacks: a rolled-back module is bit-identical to its
//!   pre-pass state, whose fingerprint was already memoized;
//! * [`SnapshotMemo`] memoizes whole *step transitions* — `(program,
//!   changing-pass sequence, pass) → post-pass module snapshot` — so
//!   re-walking a previously explored sequence (the steady state of a
//!   sharpened policy) skips pass execution itself, restoring the
//!   recorded copy-on-write snapshot instead of re-running analyses and
//!   rewrites.
//!
//! Both stores only ever change *when* work happens, never *what* the
//! results are: the differential suites assert bit-identical features and
//! cycle counts against the from-scratch paths.

use crate::eval_cache::ModuleFingerprints;
use autophase_features::IncrementalFeatures;
use autophase_hls::profile::HlsReport;
use autophase_ir::{FuncId, Module};
use autophase_passes::changeset::ChangeSet;
use autophase_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::Arc;

/// Fingerprints + feature decomposition synced to one module state.
///
/// Invariant: after [`IncrementalEval::new`] or any sequence of
/// [`IncrementalEval::apply`] calls (one per *successful, changing* pass
/// application, with the change set that application reported),
/// `module_fp()` equals `fingerprint_module(m)` and `features()` equals
/// `extract(m)` for the synced module `m`. Rolled-back (faulted) passes
/// must not call `apply` — the rollback restores the module the state is
/// already synced with.
#[derive(Debug, Clone)]
pub struct IncrementalEval {
    fps: ModuleFingerprints,
    feats: IncrementalFeatures,
}

impl IncrementalEval {
    /// Build both memos from scratch (one full hash + one full extract).
    pub fn new(m: &Module) -> IncrementalEval {
        IncrementalEval {
            fps: ModuleFingerprints::new(m),
            feats: IncrementalFeatures::new(m),
        }
    }

    /// Re-sync everything from scratch.
    pub fn rebuild(&mut self, m: &Module) {
        self.fps.rebuild(m);
        self.feats.rebuild(m);
    }

    /// Absorb one applied pass's change set. Dirty-only updates when the
    /// change was non-structural; full rebuilds otherwise. `m` must be the
    /// post-pass module.
    pub fn apply(&mut self, m: &Module, cs: &ChangeSet) {
        if cs.needs_full_rebuild() {
            self.fps.rebuild(m);
            self.feats.rebuild(m);
            return;
        }
        if cs.globals_changed() {
            // Function slots are intact but the globals fingerprint moved;
            // features don't read globals, so only the hash side rebuilds.
            self.fps.rebuild(m);
        } else {
            self.fps.update(m, &cs.dirty_funcs);
        }
        self.feats.update(m, &cs.dirty_funcs);
    }

    /// The combined module fingerprint (equals
    /// [`crate::eval_cache::fingerprint_module`] of the synced module).
    pub fn module_fp(&self) -> u64 {
        self.fps.value()
    }

    /// One function's content fingerprint (`None` for empty slots).
    pub fn func_fp(&self, fid: FuncId) -> Option<u64> {
        self.fps.func_fp(fid)
    }

    /// The module feature vector (equals `extract` of the synced module).
    pub fn features(&self) -> autophase_features::FeatureVector {
        self.feats.total()
    }
}

/// One memoized step transition: whether the pass changed the module,
/// and — for changing passes — the post-pass module and incremental
/// state.
///
/// The module snapshot is a copy-on-write clone: it shares every
/// function body `Arc` with the state it was taken from, so an entry
/// costs O(#functions) pointers, not a deep copy, and restoring it is
/// just as cheap.
#[derive(Debug)]
pub struct SnapEntry {
    changed: bool,
    state: Option<(Module, IncrementalEval)>,
}

impl SnapEntry {
    /// Entry for a pass that left the module untouched.
    pub fn noop() -> SnapEntry {
        SnapEntry {
            changed: false,
            state: None,
        }
    }

    /// Entry for a changing pass: the post-pass module (COW clone) and
    /// the incremental state synced to it.
    pub fn change(module: Module, eval: IncrementalEval) -> SnapEntry {
        SnapEntry {
            changed: true,
            state: Some((module, eval)),
        }
    }

    /// Whether the memoized application changed the module.
    pub fn changed(&self) -> bool {
        self.changed
    }

    /// COW clones of the post-pass module and incremental state
    /// (`None` for no-op entries — there is nothing to restore).
    pub fn state_clone(&self) -> Option<(Module, IncrementalEval)> {
        self.state.as_ref().map(|(m, e)| (m.clone(), e.clone()))
    }
}

/// LRU memo of step transitions keyed by the *exact* identity of a state
/// and the pass applied to it: `(program index, changing-pass sequence
/// so far, pass)`.
///
/// Passes are deterministic, and a state is fully determined by its
/// pristine program and the ordered changing passes applied to it — so a
/// hit can replace the entire pass execution (analysis, rewriting,
/// verification) with a copy-on-write restore of the recorded result,
/// bit-identical by construction. Keys are compared exactly (no
/// hashing-to-u64), so a hit can never be a collision. Faulted applies
/// are never recorded.
#[derive(Debug)]
pub struct SnapshotMemo {
    map: HashMap<(usize, Vec<u16>), (u64, Arc<SnapEntry>)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Default capacity. Entries share function-body `Arc`s with each other
/// and with the live module, so memory scales with *distinct* function
/// versions, not entries.
pub const DEFAULT_SNAPSHOT_MEMO_CAPACITY: usize = 32_768;

impl SnapshotMemo {
    /// An empty memo holding at most `capacity` transitions.
    pub fn new(capacity: usize) -> SnapshotMemo {
        SnapshotMemo {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up the transition for applying the last element of `seq`
    /// after its prefix, on `program`.
    pub fn get(&mut self, program: usize, seq: Vec<u16>) -> Option<Arc<SnapEntry>> {
        self.tick += 1;
        match self.map.get_mut(&(program, seq)) {
            Some((stamp, entry)) => {
                *stamp = self.tick;
                self.hits += 1;
                if telemetry::enabled() {
                    telemetry::incr("core.snap_memo", "hit", 1);
                }
                Some(Arc::clone(entry))
            }
            None => {
                self.misses += 1;
                if telemetry::enabled() {
                    telemetry::incr("core.snap_memo", "miss", 1);
                }
                None
            }
        }
    }

    /// Record a (non-faulted) transition, evicting the least-recently-
    /// used entry at capacity.
    pub fn insert(&mut self, program: usize, seq: Vec<u16>, entry: SnapEntry) {
        self.tick += 1;
        let key = (program, seq);
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(old) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&old);
                self.evictions += 1;
                if telemetry::enabled() {
                    telemetry::incr("core.snap_memo", "evict", 1);
                }
            }
        }
        self.map.insert(key, (self.tick, Arc::new(entry)));
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Entries evicted under capacity pressure since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of memoized transitions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Default for SnapshotMemo {
    fn default() -> SnapshotMemo {
        SnapshotMemo::new(DEFAULT_SNAPSHOT_MEMO_CAPACITY)
    }
}

/// LRU memo of whole-module profile results keyed by module *content*
/// fingerprint.
///
/// Unlike the shared [`EvalCache`](crate::eval_cache::EvalCache) — keyed
/// by `(pristine program, pass-sequence hash)` so workers can share
/// entries without ever materializing modules — this memo is env-local and
/// content-addressed: two different pass sequences that produce the same
/// module share one entry, and every episode's reset state hits after the
/// first episode. Failed profiles are never memoized.
#[derive(Debug)]
pub struct ProfileMemo {
    map: HashMap<u64, (u64, Arc<HlsReport>)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Default capacity. A report is ~100 bytes, so even full this is small.
pub const DEFAULT_PROFILE_MEMO_CAPACITY: usize = 65_536;

impl ProfileMemo {
    /// An empty memo holding at most `capacity` reports.
    pub fn new(capacity: usize) -> ProfileMemo {
        ProfileMemo {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up the report for module fingerprint `fp`.
    pub fn get(&mut self, fp: u64) -> Option<Arc<HlsReport>> {
        self.tick += 1;
        match self.map.get_mut(&fp) {
            Some((stamp, report)) => {
                *stamp = self.tick;
                self.hits += 1;
                if telemetry::enabled() {
                    telemetry::incr("core.profile_memo", "hit", 1);
                }
                Some(Arc::clone(report))
            }
            None => {
                self.misses += 1;
                if telemetry::enabled() {
                    telemetry::incr("core.profile_memo", "miss", 1);
                }
                None
            }
        }
    }

    /// Memoize a (successful) profile of the module with fingerprint `fp`,
    /// evicting the least-recently-used entry at capacity.
    pub fn insert(&mut self, fp: u64, report: Arc<HlsReport>) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&fp) {
            if let Some((&old, _)) = self.map.iter().min_by_key(|(_, (stamp, _))| *stamp) {
                self.map.remove(&old);
                self.evictions += 1;
                if telemetry::enabled() {
                    telemetry::incr("core.profile_memo", "evict", 1);
                }
            }
        }
        self.map.insert(fp, (self.tick, report));
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Entries evicted under capacity pressure since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of memoized reports.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Default for ProfileMemo {
    fn default() -> ProfileMemo {
        ProfileMemo::new(DEFAULT_PROFILE_MEMO_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval_cache::fingerprint_module;
    use autophase_features::extract;
    use autophase_passes::changeset::apply_traced;

    fn program() -> Module {
        autophase_benchmarks::suite()
            .into_iter()
            .find(|b| b.name == "dhrystone")
            .unwrap()
            .module
    }

    #[test]
    fn eval_tracks_pass_stream() {
        let mut m = program();
        let mut inc = IncrementalEval::new(&m);
        for pass in [38usize, 23, 33, 30, 31, 25, 9, 28, 7, 43] {
            let (changed, cs) = apply_traced(&mut m, pass);
            if changed {
                inc.apply(&m, &cs);
            }
            assert_eq!(inc.module_fp(), fingerprint_module(&m), "pass {pass}");
            assert_eq!(inc.features(), extract(&m), "pass {pass}");
        }
    }

    #[test]
    fn snapshot_memo_restores_exact_state() {
        let m0 = program();
        let mut memo = SnapshotMemo::new(16);
        // Record the transition for pass 38 on the pristine state.
        let mut m = m0.clone();
        let (changed, cs) = apply_traced(&mut m, 38);
        assert!(changed);
        let mut eval = IncrementalEval::new(&m0);
        eval.apply(&m, &cs);
        memo.insert(0, vec![38], SnapEntry::change(m.clone(), eval));
        memo.insert(0, vec![38, 24], SnapEntry::noop());
        // A hit restores a bit-identical module and synced eval.
        let entry = memo.get(0, vec![38]).expect("recorded");
        assert!(entry.changed());
        let (rm, re) = entry.state_clone().expect("changing entry has state");
        assert_eq!(
            autophase_ir::printer::print_module(&rm),
            autophase_ir::printer::print_module(&m)
        );
        assert_eq!(re.module_fp(), fingerprint_module(&m));
        assert_eq!(re.features(), extract(&m));
        // No-op entries carry no state.
        let noop = memo.get(0, vec![38, 24]).expect("recorded");
        assert!(!noop.changed());
        assert!(noop.state_clone().is_none());
        // Different program index or sequence: miss.
        assert!(memo.get(1, vec![38]).is_none());
        assert!(memo.get(0, vec![38, 23]).is_none());
        assert_eq!(memo.stats(), (2, 2));
    }

    #[test]
    fn memo_roundtrip_and_lru() {
        let mut memo = ProfileMemo::new(2);
        let r = |cycles| {
            Arc::new(HlsReport {
                cycles,
                total_states: 0,
                area: autophase_hls::area::AreaReport::default(),
                insts_executed: 0,
                return_value: None,
            })
        };
        assert!(memo.get(1).is_none());
        memo.insert(1, r(10));
        memo.insert(2, r(20));
        assert_eq!(memo.get(1).unwrap().cycles, 10); // refresh 1
        memo.insert(3, r(30)); // evicts 2
        assert_eq!(memo.len(), 2);
        assert!(memo.get(2).is_none());
        assert_eq!(memo.get(3).unwrap().cycles, 30);
        assert_eq!(memo.stats(), (2, 2));
    }
}
