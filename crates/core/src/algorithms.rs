//! Table 3 + Figure 7: every evaluated algorithm behind one interface.
//!
//! | Algorithm    | Kind            | Observation space                  | Action space  |
//! |--------------|-----------------|------------------------------------|---------------|
//! | RL-PPO1      | PPO (zero rwd)  | Program features                   | Single-action |
//! | RL-PPO2      | PPO             | Action history                     | Single-action |
//! | RL-PPO3      | PPO             | Action history + program features  | Multi-action  |
//! | RL-A3C       | A2C             | Program features                   | Single-action |
//! | RL-ES        | ES              | Program features                   | Single-action |
//! | Greedy / OpenTuner / Genetic-DEAP / random — black-box searches.    |

use crate::env::{
    o0_cycles, o3_cycles, sequence_cycles, EnvConfig, ObservationKind, PhaseOrderEnv, RewardKind,
};
use crate::multi::{MultiActionAgent, MultiConfig};
use autophase_hls::HlsConfig;
use autophase_ir::Module;
use autophase_rl::a2c::{A2cAgent, A2cConfig};
use autophase_rl::env::Environment;
use autophase_rl::es::{EsAgent, EsConfig};
use autophase_rl::ppo::{PpoAgent, PpoConfig};
use autophase_search::{genetic, greedy, opentuner, random, Objective};

/// The algorithms of Figure 7, in the paper's bar order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// No optimization.
    O0,
    /// The fixed reference pipeline.
    O3,
    /// PPO with program-feature observations and zeroed rewards (control).
    RlPpo1,
    /// PPO observing the applied-pass histogram.
    RlPpo2,
    /// Actor-critic observing program features.
    RlA3c,
    /// Insertion greedy (Huang et al., FCCM'13).
    Greedy,
    /// Multi-action PPO over a whole sequence (§5.2).
    RlPpo3,
    /// AUC-bandit ensemble of PSO and GA sub-techniques.
    OpenTuner,
    /// Evolution strategies over policy weights.
    RlEs,
    /// DEAP-style genetic algorithm.
    GeneticDeap,
    /// Uniform random whole-sequence sampling.
    Random,
}

impl Algorithm {
    /// All algorithms in Figure-7 order.
    pub const ALL: [Algorithm; 11] = [
        Algorithm::O0,
        Algorithm::O3,
        Algorithm::RlPpo1,
        Algorithm::RlPpo2,
        Algorithm::RlA3c,
        Algorithm::Greedy,
        Algorithm::RlPpo3,
        Algorithm::OpenTuner,
        Algorithm::RlEs,
        Algorithm::GeneticDeap,
        Algorithm::Random,
    ];

    /// Display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::O0 => "-O0",
            Algorithm::O3 => "-O3",
            Algorithm::RlPpo1 => "RL-PPO1",
            Algorithm::RlPpo2 => "RL-PPO2",
            Algorithm::RlA3c => "RL-A3C",
            Algorithm::Greedy => "Greedy",
            Algorithm::RlPpo3 => "RL-PPO3",
            Algorithm::OpenTuner => "OpenTuner",
            Algorithm::RlEs => "RL-ES",
            Algorithm::GeneticDeap => "Genetic-DEAP",
            Algorithm::Random => "random",
        }
    }
}

/// Per-algorithm effort settings, scaled down from the paper's sample
/// counts so a full Figure-7 run fits in CI; the *relative* budgets keep
/// the paper's ordering (RL ≪ greedy < OpenTuner/ES < GA < random).
#[derive(Debug, Clone)]
pub struct Budget {
    /// RL training iterations (PPO/A2C).
    pub rl_iterations: usize,
    /// Transitions per RL iteration.
    pub rl_horizon: usize,
    /// Episode length (sequence length for searches).
    pub episode_len: usize,
    /// ES generations.
    pub es_generations: usize,
    /// Greedy sample cap.
    pub greedy_budget: u64,
    /// OpenTuner sample budget.
    pub opentuner_budget: u64,
    /// GA sample budget.
    pub genetic_budget: u64,
    /// Random-search sample budget.
    pub random_budget: u64,
    /// RL-PPO3 training iterations.
    pub multi_iterations: usize,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            rl_iterations: 24,
            rl_horizon: 90,
            episode_len: 45,
            es_generations: 40,
            greedy_budget: 1200,
            opentuner_budget: 1500,
            genetic_budget: 2000,
            random_budget: 2500,
            multi_iterations: 24,
        }
    }
}

impl Budget {
    /// A tiny budget for unit tests.
    pub fn tiny() -> Budget {
        Budget {
            rl_iterations: 2,
            rl_horizon: 16,
            episode_len: 8,
            es_generations: 2,
            greedy_budget: 60,
            opentuner_budget: 60,
            genetic_budget: 60,
            random_budget: 60,
            multi_iterations: 2,
        }
    }
}

/// Outcome of running one algorithm on one program.
#[derive(Debug, Clone)]
pub struct AlgoResult {
    /// Which algorithm.
    pub algorithm: Algorithm,
    /// Best cycle count it achieved.
    pub cycles: u64,
    /// Fractional improvement over `-O3` (`(o3 − c)/o3`; positive = faster
    /// circuit than `-O3`).
    pub improvement_over_o3: f64,
    /// Objective evaluations / simulator calls used.
    pub samples: u64,
}

/// Run one algorithm on one program.
pub fn run_algorithm(
    algorithm: Algorithm,
    program: &Module,
    budget: &Budget,
    hls: &HlsConfig,
    seed: u64,
) -> AlgoResult {
    let o3 = o3_cycles(program, hls);
    let (cycles, samples) = match algorithm {
        Algorithm::O0 => (o0_cycles(program, hls), 1),
        Algorithm::O3 => (o3, 1),
        Algorithm::RlPpo1 => run_single_action_rl(
            program,
            budget,
            hls,
            seed,
            RlKind::Ppo {
                obs: ObservationKind::ProgramFeatures,
                reward: RewardKind::Zero,
            },
        ),
        Algorithm::RlPpo2 => run_single_action_rl(
            program,
            budget,
            hls,
            seed,
            RlKind::Ppo {
                obs: ObservationKind::ActionHistory,
                reward: RewardKind::Raw,
            },
        ),
        Algorithm::RlA3c => run_single_action_rl(program, budget, hls, seed, RlKind::A2c),
        Algorithm::RlEs => run_single_action_rl(program, budget, hls, seed, RlKind::Es),
        Algorithm::RlPpo3 => {
            let cfg = MultiConfig {
                seq_len: budget.episode_len.max(8),
                // Long episodes: every step perturbs the whole sequence by
                // ±1 per slot, so reachable sequences lie within episode_len
                // of the all-K/2 start — short episodes barely explore.
                episode_len: 24,
                episodes_per_iter: 3,
                ..MultiConfig::default()
            };
            let mut agent = MultiActionAgent::new(&cfg, seed);
            let (_, best) = agent.train(program, hls, budget.multi_iterations);
            (best, agent.samples())
        }
        Algorithm::Greedy => {
            let mut obj = Objective::new(|seq: &[usize]| sequence_cycles(program, seq, hls) as f64);
            let r = greedy::search(
                &mut obj,
                autophase_passes::registry::NUM_PASSES,
                budget.episode_len,
                budget.greedy_budget,
                None,
            );
            (r.best_cost as u64, r.samples)
        }
        Algorithm::OpenTuner => {
            let mut obj = Objective::new(|seq: &[usize]| sequence_cycles(program, seq, hls) as f64);
            let r = opentuner::search(
                &mut obj,
                autophase_passes::registry::NUM_PASSES,
                budget.episode_len,
                budget.opentuner_budget,
                &opentuner::TunerConfig::default(),
                seed,
            );
            (r.best_cost as u64, r.samples)
        }
        Algorithm::GeneticDeap => {
            let mut obj = Objective::new(|seq: &[usize]| sequence_cycles(program, seq, hls) as f64);
            let r = genetic::search(
                &mut obj,
                autophase_passes::registry::NUM_PASSES,
                budget.episode_len,
                budget.genetic_budget,
                &genetic::GaConfig::default(),
                seed,
            );
            (r.best_cost as u64, r.samples)
        }
        Algorithm::Random => {
            let mut obj = Objective::new(|seq: &[usize]| sequence_cycles(program, seq, hls) as f64);
            let r = random::search(
                &mut obj,
                autophase_passes::registry::NUM_PASSES,
                budget.episode_len,
                budget.random_budget,
                seed,
            );
            (r.best_cost as u64, r.samples)
        }
    };
    AlgoResult {
        algorithm,
        cycles,
        improvement_over_o3: (o3 as f64 - cycles as f64) / o3 as f64,
        samples,
    }
}

enum RlKind {
    Ppo {
        obs: ObservationKind,
        reward: RewardKind,
    },
    A2c,
    Es,
}

/// Train a single-action RL agent on one program, tracking the best state
/// ever profiled (the search result, analogous to the paper evaluating
/// the discovered ordering).
fn run_single_action_rl(
    program: &Module,
    budget: &Budget,
    hls: &HlsConfig,
    seed: u64,
    kind: RlKind,
) -> (u64, u64) {
    // The environment always profiles (Raw reward) so the best-visited
    // state is tracked with the paper's sample accounting; the RL-PPO1
    // control zeroes the reward in the wrapper instead, "to test if the
    // rewards are meaningful" (§6.1) without changing what gets compiled.
    let zero_rewards = matches!(
        kind,
        RlKind::Ppo {
            reward: RewardKind::Zero,
            ..
        }
    );
    let env_cfg = EnvConfig {
        observation: match &kind {
            RlKind::Ppo { obs, .. } => *obs,
            _ => ObservationKind::ProgramFeatures,
        },
        reward: RewardKind::Raw,
        episode_len: budget.episode_len,
        hls: hls.clone(),
        ..EnvConfig::default()
    };
    let mut env = BestTracking::new(
        PhaseOrderEnv::single(program.clone(), env_cfg),
        zero_rewards,
    );
    let obs_dim = env.observation_dim();
    let n_actions = env.num_actions();
    match kind {
        RlKind::Ppo { .. } => {
            let cfg = PpoConfig {
                hidden: vec![64, 64],
                horizon: budget.rl_horizon,
                minibatch: 32,
                max_episode_len: budget.episode_len,
                // Phase ordering rewards are sparse; keep exploration up.
                entropy_coef: 0.03,
                ..PpoConfig::default()
            };
            let mut agent = PpoAgent::new(obs_dim, n_actions, &cfg, seed);
            agent.train(&mut env, budget.rl_iterations);
        }
        RlKind::A2c => {
            let cfg = A2cConfig {
                hidden: vec![64, 64],
                horizon: budget.rl_horizon,
                max_episode_len: budget.episode_len,
                ..A2cConfig::default()
            };
            let mut agent = A2cAgent::new(obs_dim, n_actions, &cfg, seed);
            agent.train(&mut env, budget.rl_iterations);
        }
        RlKind::Es => {
            let cfg = EsConfig {
                hidden: vec![32, 32],
                population: 6,
                max_episode_len: budget.episode_len,
                ..EsConfig::default()
            };
            let mut agent = EsAgent::new(obs_dim, n_actions, &cfg, seed);
            agent.train(&mut env, budget.es_generations);
        }
    }
    (env.best_cycles, env.inner.samples())
}

/// Wraps the environment to remember the best cycle count ever reached,
/// optionally zeroing rewards (the RL-PPO1 control).
struct BestTracking {
    inner: PhaseOrderEnv,
    best_cycles: u64,
    cur_cycles: u64,
    zero_rewards: bool,
}

impl BestTracking {
    fn new(inner: PhaseOrderEnv, zero_rewards: bool) -> BestTracking {
        BestTracking {
            inner,
            best_cycles: u64::MAX,
            cur_cycles: u64::MAX,
            zero_rewards,
        }
    }
}

impl Environment for BestTracking {
    fn observation_dim(&self) -> usize {
        self.inner.observation_dim()
    }
    fn num_actions(&self) -> usize {
        self.inner.num_actions()
    }
    fn reset(&mut self) -> Vec<f64> {
        let o = self.inner.reset();
        self.cur_cycles = self.inner.last_cycles();
        self.best_cycles = self.best_cycles.min(self.cur_cycles);
        o
    }
    fn step(&mut self, action: usize) -> autophase_rl::env::StepResult {
        let mut r = self.inner.step(action);
        self.cur_cycles = self.inner.last_cycles();
        self.best_cycles = self.best_cycles.min(self.cur_cycles);
        if self.zero_rewards {
            r.reward = 0.0;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_benchmarks::suite;

    fn program() -> Module {
        suite()
            .into_iter()
            .find(|b| b.name == "gsm")
            .unwrap()
            .module
    }

    #[test]
    fn o0_and_o3_reference_points() {
        let hls = HlsConfig::default();
        let p = program();
        let o0 = run_algorithm(Algorithm::O0, &p, &Budget::tiny(), &hls, 1);
        let o3 = run_algorithm(Algorithm::O3, &p, &Budget::tiny(), &hls, 1);
        assert!(o0.improvement_over_o3 < 0.0, "O0 must be worse than O3");
        assert_eq!(o3.improvement_over_o3, 0.0);
        assert_eq!(o3.samples, 1);
    }

    #[test]
    fn searches_beat_o0_with_tiny_budget() {
        let hls = HlsConfig::default();
        let p = program();
        let o0 = o0_cycles(&p, &hls);
        for alg in [Algorithm::Greedy, Algorithm::Random, Algorithm::GeneticDeap] {
            let r = run_algorithm(alg, &p, &Budget::tiny(), &hls, 3);
            assert!(r.cycles < o0, "{} did not beat O0", alg.name());
            assert!(r.samples > 0);
        }
    }

    #[test]
    fn rl_ppo2_improves_program() {
        let hls = HlsConfig::default();
        let p = program();
        let o0 = o0_cycles(&p, &hls);
        let r = run_algorithm(Algorithm::RlPpo2, &p, &Budget::tiny(), &hls, 5);
        assert!(
            r.cycles < o0,
            "RL-PPO2 found nothing: {} vs {}",
            r.cycles,
            o0
        );
    }

    #[test]
    fn names_match_figure_labels() {
        assert_eq!(Algorithm::ALL.len(), 11);
        assert_eq!(Algorithm::GeneticDeap.name(), "Genetic-DEAP");
        assert_eq!(Algorithm::RlPpo3.name(), "RL-PPO3");
    }
}
