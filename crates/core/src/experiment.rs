//! Experiment runners for every figure in the paper's evaluation.
//!
//! Each runner is parameterized by a scale so unit tests can run miniature
//! versions while the `autophase-bench` binaries run paper-scale ones.

use crate::algorithms::{run_algorithm, AlgoResult, Algorithm, Budget};
use crate::dataset::{analyze, collect_tuples, CollectConfig, ImportanceAnalysis};
use crate::env::{
    o3_cycles, sequence_cycles, EnvConfig, FeatureNorm, ObservationKind, PhaseOrderEnv, RewardKind,
};
use crate::eval_cache::EvalCache;
use autophase_forest::ForestConfig;
use autophase_hls::HlsConfig;
use autophase_ir::Module;
use autophase_progen::{program_batch, GenConfig};
use autophase_rl::env::Environment;
use autophase_rl::ppo::{PpoAgent, PpoConfig};
use autophase_search::{genetic, greedy, opentuner, Objective};
use std::sync::Arc;

// ---------------------------------------------------------------- Fig 5/6

/// Run the §4 importance analysis on `n_programs` random programs
/// (Figures 5 and 6).
pub fn fig5_fig6(n_programs: usize, seed: u64) -> ImportanceAnalysis {
    let programs = program_batch(&GenConfig::default(), seed, n_programs);
    let tuples = collect_tuples(&programs, &CollectConfig::default(), seed);
    analyze(&tuples, &ForestConfig::default(), seed)
}

// ------------------------------------------------------------------ Fig 7

/// Figure 7: all algorithms on all nine benchmarks.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// `(benchmark name, per-algorithm results in Algorithm::ALL order)`.
    pub per_benchmark: Vec<(String, Vec<AlgoResult>)>,
}

impl Fig7Result {
    /// Mean improvement over `-O3` per algorithm (the bar heights).
    pub fn mean_improvement(&self) -> Vec<(Algorithm, f64)> {
        Algorithm::ALL
            .iter()
            .enumerate()
            .map(|(i, &alg)| {
                let mean = self
                    .per_benchmark
                    .iter()
                    .map(|(_, rs)| rs[i].improvement_over_o3)
                    .sum::<f64>()
                    / self.per_benchmark.len() as f64;
                (alg, mean)
            })
            .collect()
    }

    /// Mean samples per program per algorithm (the blue line).
    pub fn mean_samples(&self) -> Vec<(Algorithm, f64)> {
        Algorithm::ALL
            .iter()
            .enumerate()
            .map(|(i, &alg)| {
                let mean = self
                    .per_benchmark
                    .iter()
                    .map(|(_, rs)| rs[i].samples as f64)
                    .sum::<f64>()
                    / self.per_benchmark.len() as f64;
                (alg, mean)
            })
            .collect()
    }
}

/// Run Figure 7 over the given benchmarks (pass `autophase_benchmarks::
/// suite()` programs for the paper's nine).
pub fn fig7(benchmarks: &[(String, Module)], budget: &Budget, seed: u64) -> Fig7Result {
    let hls = HlsConfig::default();
    let mut per_benchmark = Vec::new();
    for (name, program) in benchmarks {
        let results: Vec<AlgoResult> = Algorithm::ALL
            .iter()
            .map(|&alg| run_algorithm(alg, program, budget, &hls, seed))
            .collect();
        per_benchmark.push((name.clone(), results));
    }
    Fig7Result { per_benchmark }
}

// ------------------------------------------------------------------ Fig 8

/// One learning curve of Figure 8.
#[derive(Debug, Clone)]
pub struct LearningCurve {
    /// Configuration label (`filtered-norm1`, `filtered-norm2`,
    /// `original-norm2`).
    pub label: &'static str,
    /// Environment steps at each point.
    pub steps: Vec<u64>,
    /// Episode reward mean at each point.
    pub reward_mean: Vec<f64>,
}

impl LearningCurve {
    /// Mean reward over the last quarter of training (convergence level).
    pub fn final_level(&self) -> f64 {
        let n = self.reward_mean.len();
        if n == 0 {
            return 0.0;
        }
        let tail = &self.reward_mean[n - (n / 4).max(1)..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// First step index at which the curve reaches `frac` of its final
    /// level (convergence speed).
    pub fn steps_to_reach(&self, frac: f64) -> Option<u64> {
        let target = self.final_level() * frac;
        self.reward_mean
            .iter()
            .position(|&r| r >= target)
            .map(|i| self.steps[i])
    }
}

/// The three Figure-8 configurations.
fn fig8_configs() -> Vec<(&'static str, EnvConfig)> {
    let base = EnvConfig {
        observation: ObservationKind::Combined,
        reward: RewardKind::Log,
        episode_len: 12,
        ..EnvConfig::default()
    };
    vec![
        (
            "filtered-norm1",
            EnvConfig {
                feature_norm: FeatureNorm::Log,
                filtered_features: true,
                filtered_passes: true,
                ..base.clone()
            },
        ),
        (
            "filtered-norm2",
            EnvConfig {
                feature_norm: FeatureNorm::InstCount,
                filtered_features: true,
                filtered_passes: true,
                ..base.clone()
            },
        ),
        (
            "original-norm2",
            EnvConfig {
                feature_norm: FeatureNorm::InstCount,
                filtered_features: false,
                filtered_passes: false,
                ..base
            },
        ),
    ]
}

/// Figure 8: episode-reward-mean curves for the three normalization /
/// filtering configurations, trained on `n_programs` random programs.
pub fn fig8(n_programs: usize, iterations: usize, seed: u64) -> Vec<LearningCurve> {
    let programs = program_batch(&GenConfig::default(), seed, n_programs);
    fig8_on(&programs, iterations, seed)
}

/// Figure 8 on a caller-provided training set.
pub fn fig8_on(programs: &[Module], iterations: usize, seed: u64) -> Vec<LearningCurve> {
    let ppo = PpoConfig {
        hidden: vec![256, 256],
        horizon: 96,
        minibatch: 32,
        max_episode_len: 12,
        ..PpoConfig::default()
    };
    fig8_configs()
        .into_iter()
        .map(|(label, env_cfg)| {
            let mut env = PhaseOrderEnv::new(programs.to_vec(), env_cfg);
            let mut agent = PpoAgent::new(env.observation_dim(), env.num_actions(), &ppo, seed);
            let rewards = agent.train(&mut env, iterations);
            let steps: Vec<u64> = (1..=rewards.len() as u64)
                .map(|i| i * ppo.horizon as u64)
                .collect();
            LearningCurve {
                label,
                steps,
                reward_mean: rewards,
            }
        })
        .collect()
}

/// Like [`fig8_on`], but every curve's environment shares `cache`, so a
/// `(program, pass-sequence)` state profiled while training one curve is
/// a cache hit for the others. Cache entries are configuration-independent
/// — keys are absolute pass ids and values are raw profiler outputs, while
/// normalization/filtering happen downstream in the environment — so the
/// curves are bit-identical to the uncached [`fig8_on`].
pub fn fig8_on_cached(
    programs: &[Module],
    iterations: usize,
    seed: u64,
    cache: &Arc<EvalCache>,
) -> Vec<LearningCurve> {
    let ppo = PpoConfig {
        hidden: vec![256, 256],
        horizon: 96,
        minibatch: 32,
        max_episode_len: 12,
        ..PpoConfig::default()
    };
    fig8_configs()
        .into_iter()
        .map(|(label, env_cfg)| {
            let mut env = PhaseOrderEnv::with_cache(programs.to_vec(), env_cfg, Arc::clone(cache));
            let mut agent = PpoAgent::new(env.observation_dim(), env.num_actions(), &ppo, seed);
            let rewards = agent.train(&mut env, iterations);
            let steps: Vec<u64> = (1..=rewards.len() as u64)
                .map(|i| i * ppo.horizon as u64)
                .collect();
            LearningCurve {
                label,
                steps,
                reward_mean: rewards,
            }
        })
        .collect()
}

// ------------------------------------------------------------------ Fig 9

/// A generalization result: one algorithm applied to unseen programs with
/// a single compilation each.
#[derive(Debug, Clone)]
pub struct GeneralizationResult {
    /// Algorithm label (Figure 9's bar names).
    pub label: String,
    /// Mean fractional improvement over `-O3` across the test programs.
    pub mean_improvement: f64,
    /// Samples per program at inference (1 for everything in Figure 9).
    pub samples_per_program: u64,
}

/// Episode / sequence length used throughout the generalization
/// experiments (both the RL episodes and the fixed sequences the black-box
/// searches optimize, so the comparison stays fair).
pub const GENERALIZATION_EPISODE_LEN: usize = 24;

/// Train a PPO agent for generalization (the §6.2 setup: combined
/// observation, 256×256 network, log reward) and return it with its env
/// config.
pub fn train_generalist(
    programs: &[Module],
    norm: FeatureNorm,
    filtered: bool,
    iterations: usize,
    seed: u64,
) -> (PpoAgent, EnvConfig) {
    let env_cfg = EnvConfig {
        observation: ObservationKind::Combined,
        feature_norm: norm,
        reward: RewardKind::Log,
        episode_len: GENERALIZATION_EPISODE_LEN,
        filtered_features: filtered,
        filtered_passes: filtered,
        ..EnvConfig::default()
    };
    let ppo = PpoConfig {
        hidden: vec![256, 256],
        horizon: 96,
        minibatch: 32,
        max_episode_len: GENERALIZATION_EPISODE_LEN,
        entropy_coef: 0.02,
        ..PpoConfig::default()
    };
    let mut env = PhaseOrderEnv::new(programs.to_vec(), env_cfg.clone());
    let mut agent = PpoAgent::new(env.observation_dim(), env.num_actions(), &ppo, seed);
    agent.train(&mut env, iterations);
    (agent, env_cfg)
}

/// [`train_generalist`] on the parallel rollout engine: `workers`
/// environments collect episodes concurrently, all sharing `cache` so a
/// state profiled by one worker is a hit for every other.
///
/// Collection is episode-indexed (see
/// [`autophase_rl::rollout::collect_episodes_parallel`]), so the trained
/// agent is bit-identical for any `workers >= 1`. The RNG stream differs
/// from the serial [`train_generalist`] (episode-indexed vs
/// horizon-driven collection), so the two functions produce different —
/// equally valid — agents.
pub fn train_generalist_parallel(
    programs: &[Module],
    norm: FeatureNorm,
    filtered: bool,
    iterations: usize,
    seed: u64,
    workers: usize,
    cache: &Arc<EvalCache>,
) -> (PpoAgent, EnvConfig) {
    let env_cfg = EnvConfig {
        observation: ObservationKind::Combined,
        feature_norm: norm,
        reward: RewardKind::Log,
        episode_len: GENERALIZATION_EPISODE_LEN,
        filtered_features: filtered,
        filtered_passes: filtered,
        ..EnvConfig::default()
    };
    let ppo = PpoConfig {
        hidden: vec![256, 256],
        horizon: 96,
        minibatch: 32,
        max_episode_len: GENERALIZATION_EPISODE_LEN,
        entropy_coef: 0.02,
        ..PpoConfig::default()
    };
    // Same transition budget per iteration as the serial path's horizon.
    let episodes_per_iter = (ppo.horizon / GENERALIZATION_EPISODE_LEN).max(1);
    let mut envs: Vec<Box<dyn Environment + Send>> = (0..workers.max(1))
        .map(|_| {
            Box::new(PhaseOrderEnv::with_cache(
                programs.to_vec(),
                env_cfg.clone(),
                Arc::clone(cache),
            )) as Box<dyn Environment + Send>
        })
        .collect();
    let mut agent = PpoAgent::new(envs[0].observation_dim(), envs[0].num_actions(), &ppo, seed);
    agent.train_parallel(&mut envs, episodes_per_iter, iterations);
    (agent, env_cfg)
}

/// One-shot inference: roll the trained policy greedily over a fresh copy
/// of `program` and return the final cycle count. At most one "sample"
/// (the final compilation) is charged, as in Figure 9.
pub fn infer_sequence(
    agent: &PpoAgent,
    env_cfg: &EnvConfig,
    program: &Module,
) -> (Vec<usize>, u64) {
    // Inference needs no rewards, so the environment never profiles
    // intermediate states; the single final profile is the one "sample".
    let infer_cfg = EnvConfig {
        reward: RewardKind::Zero,
        ..env_cfg.clone()
    };
    let mut env = PhaseOrderEnv::single(program.clone(), infer_cfg);
    let mut obs = env.reset();
    let samples_at_start = env.samples();
    let mut seq = Vec::new();
    let passes = env.action_passes();
    for _ in 0..env_cfg.episode_len {
        let a = agent.act_greedy(&obs);
        seq.push(passes[a]);
        let r = env.step(a);
        obs = r.observation;
        if r.done {
            break;
        }
    }
    let cycles = env.cycles();
    // At most one sample: the final compilation. The content-addressed
    // profile memo can even serve it for free when the rolled sequence
    // turns out to be all no-ops (final state == reset state).
    debug_assert!(env.samples() <= samples_at_start + 1);
    (seq, cycles)
}

/// Figure 9: train deep-RL generalists on random programs; search fixed
/// sequences with the black-box baselines on the same training set; apply
/// everything to the unseen test programs with one compilation each.
pub fn fig9(
    train: &[Module],
    test: &[(String, Module)],
    train_iterations: usize,
    search_budget: u64,
    seed: u64,
) -> Vec<GeneralizationResult> {
    let hls = HlsConfig::default();
    let seq_len = GENERALIZATION_EPISODE_LEN;

    // Aggregate objective on the training set: total cycles normalized per
    // program (so no single program dominates).
    let baselines: Vec<f64> = train
        .iter()
        .map(|p| o3_cycles(p, &hls).max(1) as f64)
        .collect();
    let aggregate = |seq: &[usize]| -> f64 {
        train
            .iter()
            .zip(&baselines)
            .map(|(p, b)| sequence_cycles(p, seq, &hls) as f64 / b)
            .sum()
    };

    let mut results = Vec::new();
    let evaluate_fixed = |label: &str, seq: &[usize]| -> GeneralizationResult {
        let mean = test
            .iter()
            .map(|(_, p)| {
                let o3 = o3_cycles(p, &hls);
                let c = sequence_cycles(p, seq, &hls);
                (o3 as f64 - c as f64) / o3 as f64
            })
            .sum::<f64>()
            / test.len() as f64;
        GeneralizationResult {
            label: label.to_string(),
            mean_improvement: mean,
            samples_per_program: 1,
        }
    };

    // Black-box baselines: overfit a fixed sequence to the training set.
    {
        let mut obj = Objective::new(aggregate);
        let r = genetic::search(
            &mut obj,
            autophase_passes::registry::NUM_PASSES,
            seq_len,
            search_budget,
            &genetic::GaConfig::default(),
            seed,
        );
        results.push(evaluate_fixed("Genetic-DEAP", &r.best_sequence));
    }
    {
        let mut obj = Objective::new(aggregate);
        let r = opentuner::search(
            &mut obj,
            autophase_passes::registry::NUM_PASSES,
            seq_len,
            search_budget,
            &opentuner::TunerConfig::default(),
            seed,
        );
        results.push(evaluate_fixed("OpenTuner", &r.best_sequence));
    }
    {
        let mut obj = Objective::new(aggregate);
        let r = greedy::search(
            &mut obj,
            autophase_passes::registry::NUM_PASSES,
            seq_len,
            search_budget,
            None,
        );
        results.push(evaluate_fixed("Greedy", &r.best_sequence));
    }

    // Deep RL: per-program adaptive inference.
    for (label, norm) in [
        ("RL-filtered-norm1", FeatureNorm::Log),
        ("RL-filtered-norm2", FeatureNorm::InstCount),
    ] {
        let (agent, env_cfg) = train_generalist(train, norm, true, train_iterations, seed);
        let mean = test
            .iter()
            .map(|(_, p)| {
                let o3 = o3_cycles(p, &hls);
                let (_, c) = infer_sequence(&agent, &env_cfg, p);
                (o3 as f64 - c as f64) / o3 as f64
            })
            .sum::<f64>()
            / test.len() as f64;
        results.push(GeneralizationResult {
            label: label.to_string(),
            mean_improvement: mean,
            samples_per_program: 1,
        });
    }
    results
}

/// §6.2's closing experiment: the trained `filtered-norm2` generalist
/// applied to `n_test` *random* unseen programs; returns the mean
/// improvement over `-O3` (the paper reports 6% on 12,874 programs).
pub fn generalize_random(
    train: &[Module],
    n_test: usize,
    train_iterations: usize,
    seed: u64,
) -> f64 {
    let hls = HlsConfig::default();
    let (agent, env_cfg) =
        train_generalist(train, FeatureNorm::InstCount, true, train_iterations, seed);
    let test = program_batch(&GenConfig::default(), seed ^ 0xBEEF, n_test);
    test.iter()
        .map(|p| {
            let o3 = o3_cycles(p, &hls);
            let (_, c) = infer_sequence(&agent, &env_cfg, p);
            (o3 as f64 - c as f64) / o3 as f64
        })
        .sum::<f64>()
        / n_test as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_benchmarks::suite;

    fn two_benchmarks() -> Vec<(String, Module)> {
        suite()
            .into_iter()
            .filter(|b| b.name == "gsm" || b.name == "matmul")
            .map(|b| (b.name.to_string(), b.module))
            .collect()
    }

    #[test]
    fn fig7_miniature_has_expected_shape() {
        let r = fig7(&two_benchmarks(), &Budget::tiny(), 3);
        assert_eq!(r.per_benchmark.len(), 2);
        let means = r.mean_improvement();
        assert_eq!(means.len(), Algorithm::ALL.len());
        // O0 strictly worse than O3; O3 exactly zero.
        let get = |a: Algorithm| means.iter().find(|(x, _)| *x == a).unwrap().1;
        assert!(get(Algorithm::O0) < 0.0);
        assert_eq!(get(Algorithm::O3), 0.0);
        // Searches find something better than doing nothing (O0).
        assert!(get(Algorithm::Greedy) > get(Algorithm::O0));
        let samples = r.mean_samples();
        assert!(samples.iter().all(|(_, s)| *s >= 1.0));
    }

    #[test]
    fn fig8_miniature_curves() {
        let curves = fig8(3, 3, 7);
        assert_eq!(curves.len(), 3);
        for c in &curves {
            assert_eq!(c.steps.len(), 3);
            assert_eq!(c.reward_mean.len(), 3);
            assert!(c.steps[1] > c.steps[0]);
        }
        let labels: Vec<&str> = curves.iter().map(|c| c.label).collect();
        assert_eq!(
            labels,
            vec!["filtered-norm1", "filtered-norm2", "original-norm2"]
        );
    }

    #[test]
    fn fig8_cached_matches_uncached() {
        let programs = program_batch(&GenConfig::default(), 7, 2);
        let plain = fig8_on(&programs, 2, 7);
        let cache = Arc::new(EvalCache::default());
        let cached = fig8_on_cached(&programs, 2, 7, &cache);
        for (a, b) in plain.iter().zip(&cached) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.reward_mean, b.reward_mean);
        }
        // Later curves re-visit states the first curve profiled.
        assert!(cache.hits() > 0, "shared cache saw no hits");
    }

    #[test]
    fn train_generalist_parallel_is_worker_count_invariant() {
        let train = program_batch(&GenConfig::default(), 13, 2);
        let run = |workers: usize| {
            let cache = Arc::new(EvalCache::default());
            let (agent, _) = train_generalist_parallel(
                &train,
                FeatureNorm::InstCount,
                true,
                1,
                9,
                workers,
                &cache,
            );
            agent.policy.parameters()
        };
        assert_eq!(run(1), run(2));
    }

    #[test]
    fn fig9_miniature_runs() {
        let train = program_batch(&GenConfig::default(), 42, 3);
        let results = fig9(&train, &two_benchmarks(), 2, 40, 11);
        assert_eq!(results.len(), 5);
        for r in &results {
            assert_eq!(r.samples_per_program, 1);
            assert!(r.mean_improvement.is_finite());
        }
    }

    #[test]
    fn infer_sequence_returns_passes() {
        let train = program_batch(&GenConfig::default(), 50, 2);
        let (agent, cfg) = train_generalist(&train, FeatureNorm::InstCount, true, 1, 2);
        let p = two_benchmarks().remove(0).1;
        let (seq, cycles) = infer_sequence(&agent, &cfg, &p);
        assert!(!seq.is_empty());
        assert!(seq
            .iter()
            .all(|&s| s < autophase_passes::registry::NUM_PASSES));
        assert!(cycles > 0);
    }
}
