//! Feature–action–reward tuple collection and the §4 random-forest
//! importance analysis (Figures 5 and 6).
//!
//! Following §4: "To gather the training data for the forests, we run PPO
//! with high exploration parameter on 100 randomly generated programs to
//! generate feature–action–reward tuples." For each pass, two forests are
//! trained to predict *whether applying it improves the circuit*: one from
//! Table-2 program features, one from the applied-pass histogram.

use crate::env::{EnvConfig, PhaseOrderEnv};
use autophase_features::NUM_FEATURES;
use autophase_forest::{Dataset, ForestConfig, RandomForest};
use autophase_ir::Module;
use autophase_passes::registry::NUM_PASSES;
use autophase_rl::env::Environment;
use autophase_rl::ppo::{PpoAgent, PpoConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One collected sample.
#[derive(Debug, Clone)]
pub struct Tuple {
    /// Table-2 features before the pass.
    pub features: Vec<f64>,
    /// Applied-pass histogram before the pass.
    pub histogram: Vec<f64>,
    /// The pass applied (Table-1 index).
    pub action: usize,
    /// Cycle improvement it produced.
    pub reward: f64,
}

/// Collection settings.
#[derive(Debug, Clone)]
pub struct CollectConfig {
    /// Episode length while collecting.
    pub episode_len: usize,
    /// Episodes per program.
    pub episodes_per_program: usize,
    /// Probability of acting uniformly at random instead of by policy
    /// (the "high exploration parameter").
    pub exploration: f64,
    /// PPO settings for the exploring agent.
    pub ppo: PpoConfig,
}

impl Default for CollectConfig {
    fn default() -> CollectConfig {
        CollectConfig {
            episode_len: 16,
            episodes_per_program: 4,
            exploration: 0.75,
            ppo: PpoConfig::small(),
        }
    }
}

/// Run a high-exploration PPO over `programs`, recording a tuple per step.
pub fn collect_tuples(programs: &[Module], cfg: &CollectConfig, seed: u64) -> Vec<Tuple> {
    let env_cfg = EnvConfig {
        episode_len: cfg.episode_len,
        ..EnvConfig::default()
    };
    let mut env = PhaseOrderEnv::new(programs.to_vec(), env_cfg);
    let mut agent = PpoAgent::new(env.observation_dim(), env.num_actions(), &cfg.ppo, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A);
    let mut tuples = Vec::new();

    let episodes = programs.len() * cfg.episodes_per_program;
    for _ in 0..episodes {
        let mut obs = env.reset();
        let mut histogram = vec![0.0; env.num_actions()];
        for _ in 0..cfg.episode_len {
            let action = if rng.gen_bool(cfg.exploration) {
                rng.gen_range(0..env.num_actions())
            } else {
                agent.act_sample(&obs)
            };
            let step = env.step(action);
            tuples.push(Tuple {
                features: obs.clone(),
                histogram: histogram.clone(),
                action,
                reward: step.reward,
            });
            histogram[action] += 1.0;
            obs = step.observation;
            if step.done {
                break;
            }
        }
    }
    tuples
}

/// Importance matrices for the Figure 5/6 heat maps.
#[derive(Debug, Clone)]
pub struct ImportanceAnalysis {
    /// `feature_importance[pass][feature]` — Figure 5 rows (pass) ×
    /// columns (Table-2 feature). Rows sum to 1 (or are all zero when a
    /// pass never fired).
    pub feature_importance: Vec<Vec<f64>>,
    /// `history_importance[pass][prev_pass]` — Figure 6.
    pub history_importance: Vec<Vec<f64>>,
    /// Per-pass forest accuracy on its training set (diagnostic).
    pub accuracy: Vec<f64>,
}

impl ImportanceAnalysis {
    /// Passes ranked by how much total importance any feature assigns
    /// them (used to justify the §6.2 filtered pass set).
    pub fn impactful_passes(&self, top_k: usize) -> Vec<usize> {
        let mut scored: Vec<(usize, f64)> = self
            .feature_importance
            .iter()
            .enumerate()
            .map(|(p, row)| (p, row.iter().sum()))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        scored.into_iter().take(top_k).map(|(p, _)| p).collect()
    }

    /// Features ranked by total importance across all passes (the basis of
    /// the filtered feature subset).
    pub fn impactful_features(&self, top_k: usize) -> Vec<usize> {
        let nf = self
            .feature_importance
            .first()
            .map(Vec::len)
            .unwrap_or(NUM_FEATURES);
        let mut total = vec![0.0; nf];
        for row in &self.feature_importance {
            for (i, v) in row.iter().enumerate() {
                total[i] += v;
            }
        }
        let mut idx: Vec<usize> = (0..nf).collect();
        idx.sort_by(|&a, &b| total[b].partial_cmp(&total[a]).expect("finite"));
        idx.truncate(top_k);
        idx
    }
}

/// Train per-pass forests and extract the heat-map matrices.
pub fn analyze(tuples: &[Tuple], forest_cfg: &ForestConfig, seed: u64) -> ImportanceAnalysis {
    let mut feature_importance = vec![vec![0.0; NUM_FEATURES]; NUM_PASSES];
    let mut history_importance = vec![vec![0.0; NUM_PASSES]; NUM_PASSES];
    let mut accuracy = vec![0.0; NUM_PASSES];

    for pass in 0..NUM_PASSES {
        let rows: Vec<&Tuple> = tuples.iter().filter(|t| t.action == pass).collect();
        if rows.len() < 10 {
            continue;
        }
        let labels: Vec<bool> = rows.iter().map(|t| t.reward > 0.0).collect();
        // Degenerate labels leave the forests importance-less; skip.
        let pos = labels.iter().filter(|&&l| l).count();
        if pos == 0 || pos == labels.len() {
            continue;
        }
        let fx: Vec<Vec<f64>> = rows.iter().map(|t| t.features.clone()).collect();
        if let Ok(data) = Dataset::new(fx, labels.clone()) {
            let forest = RandomForest::fit(&data, forest_cfg, seed ^ pass as u64);
            feature_importance[pass] = forest.feature_importance();
            accuracy[pass] = forest.accuracy(&data);
        }
        let hx: Vec<Vec<f64>> = rows.iter().map(|t| t.histogram.clone()).collect();
        if let Ok(data) = Dataset::new(hx, labels) {
            let forest = RandomForest::fit(&data, forest_cfg, seed ^ (pass as u64) << 8);
            history_importance[pass] = forest.feature_importance();
        }
    }

    ImportanceAnalysis {
        feature_importance,
        history_importance,
        accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_progen::{program_batch, GenConfig};

    fn small_collect() -> Vec<Tuple> {
        let programs = program_batch(&GenConfig::default(), 500, 4);
        let cfg = CollectConfig {
            episode_len: 12,
            episodes_per_program: 10,
            ..CollectConfig::default()
        };
        collect_tuples(&programs, &cfg, 1)
    }

    #[test]
    fn tuples_have_consistent_shapes() {
        let tuples = small_collect();
        assert!(tuples.len() >= 100);
        for t in &tuples {
            assert_eq!(t.features.len(), NUM_FEATURES);
            assert_eq!(t.histogram.len(), NUM_PASSES);
            assert!(t.action < NUM_PASSES);
        }
        // Exploration covers a healthy slice of the action space.
        let mut seen: Vec<usize> = tuples.iter().map(|t| t.action).collect();
        seen.sort_unstable();
        seen.dedup();
        assert!(seen.len() > 20, "only {} distinct actions", seen.len());
    }

    #[test]
    fn some_rewards_are_positive() {
        let tuples = small_collect();
        let pos = tuples.iter().filter(|t| t.reward > 0.0).count();
        assert!(pos > 5, "only {pos} improving steps observed");
    }

    #[test]
    fn analysis_rows_normalized() {
        let tuples = small_collect();
        let analysis = analyze(&tuples, &ForestConfig::default(), 3);
        let mut nonzero_rows = 0;
        for row in &analysis.feature_importance {
            let s: f64 = row.iter().sum();
            assert!(s < 1.0 + 1e-6);
            if s > 0.5 {
                nonzero_rows += 1;
            }
        }
        assert!(
            nonzero_rows >= 3,
            "too few informative passes: {nonzero_rows}"
        );
        let top = analysis.impactful_passes(10);
        assert_eq!(top.len(), 10);
        let feats = analysis.impactful_features(12);
        assert_eq!(feats.len(), 12);
    }
}
