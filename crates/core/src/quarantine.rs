//! Quarantine of repeat-offender (program, pass) pairs.
//!
//! A pass that faults once on a program (panic, verifier break, fuel
//! exhaustion) is rolled back and costs one wasted apply; a pass that
//! faults *every time* on that program wastes an apply per episode,
//! forever. The quarantine table counts faults per `(program fingerprint,
//! pass id)` key and, past a threshold, masks the pass out of the action
//! space for that program — the environment reports a reduced action set
//! and treats the masked action as a no-op.
//!
//! The table is shared across worker environments (like the evaluation
//! cache) and is deliberately *monotone*: pairs are only ever added, so
//! sharing it between workers can change which actions are masked
//! mid-batch but never un-mask one. Runs that must be bit-identical
//! across worker counts (the determinism suite) simply run without a
//! shared quarantine attached.

use autophase_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// How many recorded faults of one `(program, pass)` pair quarantine it.
pub const DEFAULT_QUARANTINE_THRESHOLD: u32 = 2;

/// Shared fault ledger and mask (see module docs).
#[derive(Debug)]
pub struct Quarantine {
    threshold: u32,
    /// `(program fingerprint, pass id)` → fault count.
    faults: Mutex<HashMap<(u64, usize), u32>>,
}

fn lock_table(m: &Mutex<HashMap<(u64, usize), u32>>) -> MutexGuard<'_, HashMap<(u64, usize), u32>> {
    // Fault recording happens on worker threads that may die mid-episode;
    // the map is always valid (single-operation updates), so recover.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Default for Quarantine {
    fn default() -> Quarantine {
        Quarantine::new(DEFAULT_QUARANTINE_THRESHOLD)
    }
}

impl Quarantine {
    /// A table that masks a pair after `threshold` recorded faults.
    /// `threshold` is clamped to ≥1 (0 would mask everything untried).
    pub fn new(threshold: u32) -> Quarantine {
        Quarantine {
            threshold: threshold.max(1),
            faults: Mutex::new(HashMap::new()),
        }
    }

    /// Record one fault of `pass` on `program`. Returns `true` when this
    /// record crossed the threshold (the pair is *newly* quarantined).
    pub fn record_fault(&self, program: u64, pass: usize) -> bool {
        let newly = {
            let mut map = lock_table(&self.faults);
            let count = map.entry((program, pass)).or_insert(0);
            *count += 1;
            *count == self.threshold
        };
        if newly {
            telemetry::set_gauge("quarantine_size", "", self.len() as f64);
        }
        newly
    }

    /// Is `pass` masked from `program`'s action space?
    pub fn is_quarantined(&self, program: u64, pass: usize) -> bool {
        lock_table(&self.faults)
            .get(&(program, pass))
            .is_some_and(|&c| c >= self.threshold)
    }

    /// Recorded fault count for a pair (0 when never seen).
    pub fn fault_count(&self, program: u64, pass: usize) -> u32 {
        lock_table(&self.faults)
            .get(&(program, pass))
            .copied()
            .unwrap_or(0)
    }

    /// Number of quarantined (masked) pairs.
    pub fn len(&self) -> usize {
        lock_table(&self.faults)
            .values()
            .filter(|&&c| c >= self.threshold)
            .count()
    }

    /// True when nothing is quarantined.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The masked pass ids for `program`, sorted.
    pub fn masked_passes(&self, program: u64) -> Vec<usize> {
        let mut out: Vec<usize> = lock_table(&self.faults)
            .iter()
            .filter(|(&(p, _), &c)| p == program && c >= self.threshold)
            .map(|(&(_, pass), _)| pass)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_after_threshold_and_counts_pairs() {
        let q = Quarantine::new(2);
        assert!(!q.record_fault(10, 5)); // 1st fault: below threshold
        assert!(!q.is_quarantined(10, 5));
        assert!(q.record_fault(10, 5)); // 2nd: newly quarantined
        assert!(q.is_quarantined(10, 5));
        assert!(!q.record_fault(10, 5)); // already quarantined, not "newly"
        assert_eq!(q.fault_count(10, 5), 3);
        assert_eq!(q.len(), 1);
        // Other programs and passes are unaffected.
        assert!(!q.is_quarantined(11, 5));
        assert!(!q.is_quarantined(10, 6));
        assert_eq!(q.masked_passes(10), vec![5]);
        assert!(q.masked_passes(11).is_empty());
    }

    #[test]
    fn threshold_is_clamped_to_one() {
        let q = Quarantine::new(0);
        assert!(q.record_fault(1, 1));
        assert!(q.is_quarantined(1, 1));
    }

    #[test]
    fn survives_a_poisoned_lock() {
        let q = std::sync::Arc::new(Quarantine::new(1));
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || {
            let _guard = lock_table(&q2.faults);
            panic!("poison on purpose");
        });
        assert!(t.join().is_err());
        assert!(q.record_fault(7, 7));
        assert!(q.is_quarantined(7, 7));
        assert_eq!(q.len(), 1);
    }
}
