//! Memoized evaluation cache for the HLS profiler.
//!
//! Profiling a module (interpret + schedule + area) dominates the cost of
//! every environment step, and RL training revisits the same
//! `(program, pass prefix)` states constantly — every episode re-profiles
//! the pristine program, and a sharpening policy replays near-identical
//! pass sequences. This cache memoizes one full evaluation per reached
//! module state so each state is profiled at most once per process.
//!
//! # Key derivation
//!
//! A cache key is `(program fingerprint, sequence hash)`:
//!
//! * the **program fingerprint** is an FNV-1a hash of the pristine
//!   module's printed IR (stable across clones, order-independent of how
//!   the module was built);
//! * the **sequence hash** is an order-sensitive rolling hash over the
//!   Table-1 pass ids applied so far. [`PhaseOrderEnv`](crate::env::
//!   PhaseOrderEnv) pushes a pass id only when the pass reported a
//!   change, so all no-op-padded variants of one effective sequence share
//!   one key — and since no-op passes don't alter the module, every key
//!   still maps to exactly one module state. Full-sequence evaluators
//!   (e.g. the §5.2 multi-action agent) hash the raw sequence instead;
//!   the two key families agree because inserting no-ops anywhere in a
//!   stream never changes the resulting module.
//!
//! # Sharding and eviction
//!
//! Entries live in `2^k` independently locked shards selected by the
//! mixed key, so concurrent workers rarely contend. Each shard holds at
//! most `capacity / shards` entries; inserting into a full shard evicts
//! its least-recently-used entry (a monotone stamp updated on every hit).
//! Hits, misses, and evictions are tracked with per-shard atomic counters
//! — [`EvalCache::stats`] aggregates them, [`EvalCache::shard_stats`]
//! exposes the per-shard breakdown (how evenly keys spread), and when
//! telemetry is enabled every lookup also feeds the global
//! `evalcache.lookups{hit|miss}` / `evalcache.evictions` counters.

use autophase_features::FeatureVector;
use autophase_hls::area::AreaReport;
use autophase_hls::profile::HlsReport;
use autophase_ir::fingerprint::mix64 as mix;
use autophase_ir::Module;
use autophase_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Lock a shard, recovering from poisoning. A thread that panics while
/// holding a shard lock (e.g. an injected fault inside a compute callback)
/// leaves the map intact — every mutation below is a single HashMap
/// operation that either completes or doesn't — so the poison flag carries
/// no information and the shard must stay usable.
fn lock_shard<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Fingerprint of a module's current state: an order-sensitive combine of
/// its name, per-slot global fingerprints, and per-slot function
/// fingerprints (see [`autophase_ir::fingerprint`]). Because the value is
/// composed from per-slot hashes, an incremental maintainer
/// ([`ModuleFingerprints`]) can re-hash only dirty slots and arrive at
/// exactly this value.
pub fn fingerprint_module(m: &Module) -> u64 {
    autophase_ir::fingerprint::fingerprint_module(m)
}

/// Incrementally maintained per-slot function fingerprints plus the
/// combined module value.
///
/// [`ModuleFingerprints::update`] re-hashes only the functions a pass
/// dirtied (per the pass layer's `ChangeSet`); structural or global
/// changes route through [`ModuleFingerprints::rebuild`]. The combined
/// value always equals [`fingerprint_module`] of the synced module, so
/// content-addressed caches keyed either way agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleFingerprints {
    name_fp: u64,
    globals_fp: u64,
    per_func: Vec<Option<u64>>,
}

impl ModuleFingerprints {
    /// Hash everything from scratch.
    pub fn new(m: &Module) -> ModuleFingerprints {
        let mut fps = ModuleFingerprints {
            name_fp: 0,
            globals_fp: 0,
            per_func: Vec::new(),
        };
        fps.rebuild(m);
        fps
    }

    /// Re-hash the whole module (structural changes, global mutations,
    /// or first sync).
    pub fn rebuild(&mut self, m: &Module) {
        use autophase_ir::fingerprint::{
            combine_slots, fingerprint_function, fingerprint_global, fnv1a,
        };
        self.name_fp = fnv1a(m.name.as_bytes());
        self.globals_fp = combine_slots(
            0x610B_A150_610B_A150,
            (0..m.global_capacity()).map(|i| {
                m.global_arc(autophase_ir::GlobalId::from_index(i))
                    .map(|g| fingerprint_global(g))
            }),
        );
        self.per_func.clear();
        self.per_func.resize(m.func_capacity(), None);
        for fid in m.func_ids() {
            self.per_func[fid.index()] = Some(fingerprint_function(m.func(fid)));
        }
    }

    /// Re-hash only `dirty` functions. Sound only for non-structural
    /// changes that left globals untouched (the caller falls back to
    /// [`ModuleFingerprints::rebuild`] otherwise).
    pub fn update(&mut self, m: &Module, dirty: &[autophase_ir::FuncId]) {
        use autophase_ir::fingerprint::fingerprint_function;
        for &fid in dirty {
            self.per_func[fid.index()] = Some(fingerprint_function(m.func(fid)));
        }
    }

    /// The fingerprint of one function slot (`None` for empty slots).
    pub fn func_fp(&self, fid: autophase_ir::FuncId) -> Option<u64> {
        self.per_func.get(fid.index()).copied().flatten()
    }

    /// The combined module fingerprint — equal to [`fingerprint_module`]
    /// of the module this state is synced with.
    pub fn value(&self) -> u64 {
        use autophase_ir::fingerprint::combine_slots;
        let funcs_fp = combine_slots(0xF07C_F07C_F07C_F07C, self.per_func.iter().copied());
        mix(self.name_fp ^ mix(self.globals_fp ^ mix(funcs_fp)))
    }
}

/// Order-sensitive rolling hash over an applied pass-id stream.
///
/// `push(a); push(b)` and `push(b); push(a)` yield different values (the
/// state is passed through a non-commutative mix at every step), so
/// `[a, b]` and `[b, a]` never share a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqHash {
    state: u64,
}

impl SeqHash {
    /// The hash of the empty sequence.
    pub fn new() -> SeqHash {
        SeqHash {
            state: 0x5151_5151_5151_5151,
        }
    }

    /// Absorb one applied pass id.
    pub fn push(&mut self, pass_id: usize) {
        self.state = mix(self.state ^ (pass_id as u64).wrapping_add(1));
    }

    /// The current hash value.
    pub fn value(&self) -> u64 {
        self.state
    }

    /// Hash a whole sequence in one call.
    pub fn of(seq: &[usize]) -> u64 {
        let mut h = SeqHash::new();
        for &p in seq {
            h.push(p);
        }
        h.value()
    }
}

impl Default for SeqHash {
    fn default() -> SeqHash {
        SeqHash::new()
    }
}

/// A cache key: which program, and which (effective) pass prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`fingerprint_module`] of the pristine program.
    pub program: u64,
    /// [`SeqHash`] value of the applied pass stream.
    pub seq: u64,
}

/// Everything one profiler run learns about a module state.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// [`fingerprint_module`] of the post-pass module.
    pub module_fingerprint: u64,
    /// Table-2 features of the post-pass module.
    pub features: FeatureVector,
    /// Estimated clock cycles.
    pub cycles: u64,
    /// Resource estimate.
    pub area: AreaReport,
    /// Total FSM states.
    pub total_states: u64,
    /// Dynamic instructions executed while profiling.
    pub insts_executed: u64,
    /// Observable result of the profiled run.
    pub return_value: Option<i64>,
}

impl CacheEntry {
    /// Build an entry from a profiled module and its report.
    pub fn from_report(m: &Module, report: &HlsReport) -> CacheEntry {
        CacheEntry {
            module_fingerprint: fingerprint_module(m),
            features: autophase_features::extract(m),
            cycles: report.cycles,
            area: report.area.clone(),
            total_states: report.total_states,
            insts_executed: report.insts_executed,
            return_value: report.return_value,
        }
    }

    /// Build an entry from incrementally maintained state — no module
    /// walk at all. `fingerprint` and `features` must be synced with the
    /// module the report was produced from (the incremental evaluator's
    /// invariant, enforced by the differential suite).
    pub fn from_parts(fingerprint: u64, features: FeatureVector, report: &HlsReport) -> CacheEntry {
        CacheEntry {
            module_fingerprint: fingerprint,
            features,
            cycles: report.cycles,
            area: report.area.clone(),
            total_states: report.total_states,
            insts_executed: report.insts_executed,
            return_value: report.return_value,
        }
    }
}

/// Counter snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Shard {
    map: Mutex<HashMap<CacheKey, (u64, CacheEntry)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: lock_shard(&self.map).len(),
        }
    }
}

/// Process-wide telemetry handles for cache traffic, cached so the lookup
/// path never takes the registry lock.
struct CacheInstruments {
    hits: Arc<telemetry::Counter>,
    misses: Arc<telemetry::Counter>,
    evictions: Arc<telemetry::Counter>,
}

fn cache_instruments() -> &'static CacheInstruments {
    static CELL: OnceLock<CacheInstruments> = OnceLock::new();
    CELL.get_or_init(|| CacheInstruments {
        hits: telemetry::counter("evalcache.lookups", "hit"),
        misses: telemetry::counter("evalcache.lookups", "miss"),
        evictions: telemetry::counter("evalcache.evictions", ""),
    })
}

/// A shard of the transition memo: `(state key, pass id)` → did the pass
/// report a change? Entries are a couple of words each, so the memo gets
/// a larger per-shard budget than the entry map.
struct TransShard {
    map: Mutex<HashMap<(CacheKey, u16), (u64, bool)>>,
}

/// Sharded, thread-safe memoization cache for profiler results.
pub struct EvalCache {
    shards: Vec<Shard>,
    trans_shards: Vec<TransShard>,
    shard_mask: usize,
    per_shard_cap: usize,
    stamp: AtomicU64,
}

/// Default total capacity (entries).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Default shard count (power of two).
pub const DEFAULT_SHARDS: usize = 16;

impl Default for EvalCache {
    fn default() -> EvalCache {
        EvalCache::new(DEFAULT_CAPACITY)
    }
}

impl EvalCache {
    /// A cache holding at most `capacity` entries across the default
    /// shard count.
    pub fn new(capacity: usize) -> EvalCache {
        EvalCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (rounded up to a power of
    /// two).
    pub fn with_shards(capacity: usize, shards: usize) -> EvalCache {
        let shards = shards.max(1).next_power_of_two();
        let per_shard_cap = (capacity / shards).max(1);
        EvalCache {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            trans_shards: (0..shards)
                .map(|_| TransShard {
                    map: Mutex::new(HashMap::new()),
                })
                .collect(),
            shard_mask: shards - 1,
            per_shard_cap,
            stamp: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Shard {
        let i = mix(key.program ^ mix(key.seq)) as usize & self.shard_mask;
        &self.shards[i]
    }

    fn trans_shard(&self, key: &CacheKey) -> &TransShard {
        let i = mix(key.program ^ mix(key.seq)) as usize & self.shard_mask;
        &self.trans_shards[i]
    }

    fn next_stamp(&self) -> u64 {
        self.stamp.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up a key, counting a hit or a miss.
    pub fn get(&self, key: &CacheKey) -> Option<CacheEntry> {
        let shard = self.shard(key);
        let found = {
            let mut map = lock_shard(&shard.map);
            map.get_mut(key).map(|slot| {
                slot.0 = self.stamp.fetch_add(1, Ordering::Relaxed);
                slot.1.clone()
            })
        };
        if found.is_some() {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            if telemetry::enabled() {
                cache_instruments().hits.add(1);
            }
        } else {
            shard.misses.fetch_add(1, Ordering::Relaxed);
            if telemetry::enabled() {
                cache_instruments().misses.add(1);
            }
        }
        found
    }

    /// Look up a key *without* touching the hit/miss counters (the LRU
    /// stamp is still refreshed). For secondary consumers — e.g. serving
    /// an observation's feature vector off an entry the profiler query
    /// just produced — so the counters keep meaning "profiler-query
    /// outcomes" and the bench's hit rate stays interpretable.
    pub fn peek(&self, key: &CacheKey) -> Option<CacheEntry> {
        let mut map = lock_shard(&self.shard(key).map);
        map.get_mut(key).map(|slot| {
            slot.0 = self.stamp.fetch_add(1, Ordering::Relaxed);
            slot.1.clone()
        })
    }

    /// Insert (or refresh) an entry, evicting the shard's LRU entry when
    /// the shard is full.
    pub fn insert(&self, key: CacheKey, entry: CacheEntry) {
        let stamp = self.next_stamp();
        let shard = self.shard(&key);
        let mut map = lock_shard(&shard.map);
        if map.len() >= self.per_shard_cap && !map.contains_key(&key) {
            if let Some(oldest) = map.iter().min_by_key(|(_, (s, _))| *s).map(|(k, _)| *k) {
                map.remove(&oldest);
                shard.evictions.fetch_add(1, Ordering::Relaxed);
                if telemetry::enabled() {
                    cache_instruments().evictions.add(1);
                }
            }
        }
        map.insert(key, (stamp, entry));
    }

    /// Fetch `key`, computing and inserting the entry on a miss. The
    /// computation runs *outside* the shard lock, so a slow profile never
    /// blocks other shard traffic; two racing threads may both compute,
    /// in which case both results are (by determinism of the profiler)
    /// identical and the second insert is a no-op refresh.
    pub fn get_or_insert_with(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> CacheEntry,
    ) -> CacheEntry {
        if let Some(e) = self.get(&key) {
            return e;
        }
        let entry = compute();
        self.insert(key, entry.clone());
        entry
    }

    /// Look up the transition memo: did applying `pass` in the state
    /// named by `key` report a change? `None` means the transition has
    /// never been observed. Passes are deterministic, so a recorded
    /// answer is exact — the environment uses it to skip re-running the
    /// pass on cache-warm steps (lazy module materialization).
    ///
    /// Like [`EvalCache::peek`], this does not touch the hit/miss
    /// counters.
    pub fn transition(&self, key: &CacheKey, pass: usize) -> Option<bool> {
        let tkey = (*key, pass as u16);
        let mut map = lock_shard(&self.trans_shard(key).map);
        map.get_mut(&tkey).map(|slot| {
            slot.0 = self.stamp.fetch_add(1, Ordering::Relaxed);
            slot.1
        })
    }

    /// Record a transition observation (see [`EvalCache::transition`]).
    pub fn record_transition(&self, key: CacheKey, pass: usize, changed: bool) {
        let stamp = self.next_stamp();
        let shard = self.trans_shard(&key);
        let mut map = lock_shard(&shard.map);
        // The memo rides on the entry map's per-shard budget scaled by 8:
        // its entries are ~50x smaller, and evicting one only costs a
        // future pass re-run, never correctness.
        let cap = self.per_shard_cap.saturating_mul(8);
        let tkey = (key, pass as u16);
        if map.len() >= cap && !map.contains_key(&tkey) {
            if let Some(oldest) = map.iter().min_by_key(|(_, (s, _))| *s).map(|(k, _)| *k) {
                map.remove(&oldest);
            }
        }
        map.insert(tkey, (stamp, changed));
    }

    /// Resident entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(&s.map).len()).sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.misses.load(Ordering::Relaxed))
            .sum()
    }

    /// Entries displaced by capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.evictions.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot all counters, aggregated across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            len: 0,
        };
        for s in self.shard_stats() {
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.len += s.len;
        }
        total
    }

    /// Per-shard counter snapshots, in shard-index order. Shows how evenly
    /// the key mix spreads load (a hot shard means lock contention).
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(Shard::stats).collect()
    }

    /// Export the aggregate counters as telemetry gauges
    /// (`evalcache.hits` / `misses` / `evictions` / `len` /
    /// `hit_rate`). No-op when telemetry is disabled. Call at a run
    /// boundary (end of a bench round, end of training) — the live
    /// `evalcache.lookups{hit|miss}` counters cover the streaming view.
    pub fn publish_telemetry(&self) {
        if !telemetry::enabled() {
            return;
        }
        let s = self.stats();
        telemetry::set_gauge("evalcache.hits", "", s.hits as f64);
        telemetry::set_gauge("evalcache.misses", "", s.misses as f64);
        telemetry::set_gauge("evalcache.evictions", "", s.evictions as f64);
        telemetry::set_gauge("evalcache.len", "", s.len as f64);
        telemetry::set_gauge("evalcache.hit_rate", "", s.hit_rate());
    }

    /// Drop every entry and transition memo (counters are kept).
    pub fn clear(&self) {
        for s in &self.shards {
            lock_shard(&s.map).clear();
        }
        for s in &self.trans_shards {
            lock_shard(&s.map).clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(v: u64) -> CacheEntry {
        CacheEntry {
            module_fingerprint: v,
            features: [0; autophase_features::NUM_FEATURES],
            cycles: v,
            area: AreaReport::default(),
            total_states: 0,
            insts_executed: 0,
            return_value: None,
        }
    }

    #[test]
    fn incremental_fingerprints_match_full() {
        use autophase_passes::changeset::apply_traced;
        let mut m = autophase_benchmarks::suite()
            .into_iter()
            .find(|b| b.name == "gsm")
            .unwrap()
            .module;
        let mut fps = ModuleFingerprints::new(&m);
        assert_eq!(fps.value(), fingerprint_module(&m));
        for pass in [38usize, 23, 33, 30, 31, 25, 9, 28] {
            let (changed, cs) = apply_traced(&mut m, pass);
            if !changed {
                continue;
            }
            if cs.needs_full_rebuild() || cs.globals_changed() {
                fps.rebuild(&m);
            } else {
                fps.update(&m, &cs.dirty_funcs);
            }
            assert_eq!(
                fps.value(),
                fingerprint_module(&m),
                "divergence after pass {pass}"
            );
        }
    }

    #[test]
    fn seq_hash_is_order_sensitive() {
        assert_ne!(SeqHash::of(&[1, 2]), SeqHash::of(&[2, 1]));
        assert_ne!(SeqHash::of(&[1]), SeqHash::of(&[1, 1]));
        assert_ne!(SeqHash::of(&[]), SeqHash::of(&[0]));
        assert_eq!(SeqHash::of(&[3, 4, 5]), SeqHash::of(&[3, 4, 5]));
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let c = EvalCache::new(64);
        let k = CacheKey { program: 1, seq: 2 };
        assert!(c.get(&k).is_none());
        c.insert(k, entry(7));
        assert_eq!(c.get(&k).unwrap().cycles, 7);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn get_or_insert_computes_once() {
        let c = EvalCache::new(64);
        let k = CacheKey { program: 9, seq: 9 };
        let mut calls = 0;
        for _ in 0..3 {
            let e = c.get_or_insert_with(k, || {
                calls += 1;
                entry(5)
            });
            assert_eq!(e.cycles, 5);
        }
        assert_eq!(calls, 1);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn eviction_bounds_size_and_counts() {
        let c = EvalCache::with_shards(8, 1);
        for i in 0..50u64 {
            c.insert(CacheKey { program: i, seq: i }, entry(i));
        }
        assert!(c.len() <= 8);
        assert_eq!(c.evictions(), 50 - c.len() as u64);
        // Whatever survives must still map key → its own value.
        for i in 0..50u64 {
            if let Some(e) = c.get(&CacheKey { program: i, seq: i }) {
                assert_eq!(e.cycles, i);
            }
        }
    }

    #[test]
    fn hit_rate_is_zero_not_nan_with_no_lookups() {
        let c = EvalCache::new(64);
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 0);
        assert_eq!(s.hit_rate(), 0.0);
        assert!(!s.hit_rate().is_nan());
    }

    #[test]
    fn shard_stats_sum_to_aggregate() {
        let c = EvalCache::with_shards(64, 4);
        for i in 0..40u64 {
            let k = CacheKey {
                program: i,
                seq: i * 3,
            };
            c.get(&k); // miss
            c.insert(k, entry(i));
            c.get(&k); // hit
        }
        let per_shard = c.shard_stats();
        assert_eq!(per_shard.len(), 4);
        let agg = c.stats();
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), agg.hits);
        assert_eq!(per_shard.iter().map(|s| s.misses).sum::<u64>(), agg.misses);
        assert_eq!(
            per_shard.iter().map(|s| s.evictions).sum::<u64>(),
            agg.evictions
        );
        assert_eq!(per_shard.iter().map(|s| s.len).sum::<usize>(), agg.len);
        assert_eq!(agg.hits, 40);
        assert_eq!(agg.misses, 40);
    }

    #[test]
    fn panic_mid_insert_does_not_wedge_the_shard() {
        // Single shard so the poisoned lock is the one every later call
        // takes. Panic while holding the shard's map lock — the worst
        // possible interleaving a panicking compute/worker can produce.
        let c = std::sync::Arc::new(EvalCache::with_shards(64, 1));
        let k = CacheKey { program: 3, seq: 4 };
        c.insert(k, entry(11));
        let c2 = std::sync::Arc::clone(&c);
        let t = std::thread::spawn(move || {
            let _guard = lock_shard(&c2.shards[0].map);
            panic!("poison the shard on purpose");
        });
        assert!(t.join().is_err());
        // Every operation must still go through, with the data intact.
        assert_eq!(c.get(&k).unwrap().cycles, 11);
        let k2 = CacheKey { program: 5, seq: 6 };
        c.insert(k2, entry(12));
        assert_eq!(c.peek(&k2).unwrap().cycles, 12);
        assert_eq!(c.len(), 2);
        c.record_transition(k, 7, true);
        assert_eq!(c.transition(&k, 7), Some(true));
        let s = c.stats();
        assert_eq!(s.len, 2);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn lru_keeps_recently_used() {
        let c = EvalCache::with_shards(2, 1);
        let a = CacheKey { program: 1, seq: 0 };
        let b = CacheKey { program: 2, seq: 0 };
        c.insert(a, entry(1));
        c.insert(b, entry(2));
        c.get(&a); // a is now most recent
        c.insert(CacheKey { program: 3, seq: 0 }, entry(3)); // evicts b
        assert!(c.get(&a).is_some());
        assert!(c.get(&b).is_none());
    }
}
