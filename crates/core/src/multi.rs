//! The multiple-passes-per-action formulation (§5.2, RL-PPO3).
//!
//! The agent maintains a whole candidate sequence `p ∈ Z^N`, initialized
//! to `K/2` everywhere. Each RL step predicts an update vector
//! `a ∈ {-1, 0, +1}^N`; the sequence becomes `p + a`, is compiled in one
//! shot, and the reward is the cycle improvement over the previous
//! sequence. A factored-categorical PPO (N independent 3-way heads over a
//! shared trunk) trains the policy; the joint log-probability is the sum
//! of the per-slot log-probabilities.

use crate::env::{apply_and_profile, evaluate_sequence_cached};
use crate::eval_cache::{fingerprint_module, EvalCache};
use autophase_features::{normalize_to_inst_count, FeatureVector, NUM_FEATURES};
use autophase_hls::HlsConfig;
use autophase_ir::Module;
use autophase_nn::{softmax, Activation, Mlp};
use autophase_passes::registry::NUM_PASSES;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the multi-action agent.
#[derive(Debug, Clone)]
pub struct MultiConfig {
    /// Sequence length N.
    pub seq_len: usize,
    /// Hidden layers of the shared trunk.
    pub hidden: Vec<usize>,
    /// PPO clip ε.
    pub clip: f64,
    /// Learning rate.
    pub lr: f64,
    /// Steps per episode.
    pub episode_len: usize,
    /// Episodes per training iteration.
    pub episodes_per_iter: usize,
    /// Optimization epochs per batch.
    pub epochs: usize,
}

impl Default for MultiConfig {
    fn default() -> MultiConfig {
        MultiConfig {
            seq_len: 24,
            hidden: vec![64, 64],
            clip: 0.2,
            lr: 3e-4,
            episode_len: 10,
            episodes_per_iter: 4,
            epochs: 3,
        }
    }
}

/// The RL-PPO3 agent.
pub struct MultiActionAgent {
    policy: Mlp,
    value: Mlp,
    cfg: MultiConfig,
    rng: StdRng,
    samples: u64,
}

struct MultiTransition {
    obs: Vec<f64>,
    subactions: Vec<usize>, // each in 0..3 (−1, 0, +1)
    logp: f64,
    reward: f64,
    value: f64,
}

impl MultiActionAgent {
    /// Create an agent for sequences of `cfg.seq_len` passes.
    pub fn new(cfg: &MultiConfig, seed: u64) -> MultiActionAgent {
        // Observation (Table 3 for RL-PPO3: "Action History + Program
        // Features"): the normalized current sequence — the multi-action
        // analogue of the action history — concatenated with the Table-2
        // features of the program compiled under it.
        let obs_dim = cfg.seq_len + NUM_FEATURES;
        let mut psizes = vec![obs_dim];
        psizes.extend(&cfg.hidden);
        psizes.push(cfg.seq_len * 3);
        let mut vsizes = vec![obs_dim];
        vsizes.extend(&cfg.hidden);
        vsizes.push(1);
        MultiActionAgent {
            policy: Mlp::new(&psizes, Activation::Tanh, seed),
            value: Mlp::new(&vsizes, Activation::Tanh, seed ^ 0xFACE),
            cfg: cfg.clone(),
            rng: StdRng::seed_from_u64(seed ^ 0x3333),
            samples: 0,
        }
    }

    /// Compiler invocations used so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    fn observe(seq: &[usize], compiled: &Module) -> Vec<f64> {
        Self::observe_features(seq, &autophase_features::extract(compiled))
    }

    fn observe_features(seq: &[usize], features: &FeatureVector) -> Vec<f64> {
        let mut obs: Vec<f64> = seq
            .iter()
            .map(|&p| p as f64 / NUM_PASSES as f64 - 0.5)
            .collect();
        obs.extend(normalize_to_inst_count(features));
        obs
    }

    fn sample_subactions(&mut self, logits: &[f64]) -> (Vec<usize>, f64) {
        let n = self.cfg.seq_len;
        let mut actions = Vec::with_capacity(n);
        let mut logp = 0.0;
        for slot in 0..n {
            let sl = &logits[slot * 3..slot * 3 + 3];
            let probs = softmax(sl);
            let r: f64 = self.rng.gen();
            let mut cum = 0.0;
            let mut chosen = 2;
            for (i, &p) in probs.iter().enumerate() {
                cum += p;
                if r <= cum {
                    chosen = i;
                    break;
                }
            }
            logp += probs[chosen].max(1e-12).ln();
            actions.push(chosen);
        }
        (actions, logp)
    }

    fn apply_subactions(seq: &[usize], sub: &[usize]) -> Vec<usize> {
        seq.iter()
            .zip(sub)
            .map(|(&p, &a)| {
                let delta: i64 = a as i64 - 1; // 0,1,2 → −1,0,+1
                (p as i64 + delta).rem_euclid(NUM_PASSES as i64) as usize
            })
            .collect()
    }

    /// Train on one program; returns `(best sequence, best cycles)`.
    pub fn train(
        &mut self,
        program: &Module,
        hls: &HlsConfig,
        iterations: usize,
    ) -> (Vec<usize>, u64) {
        let mut best_seq: Vec<usize> = vec![NUM_PASSES / 2; self.cfg.seq_len];
        let (_, mut best_cycles) = {
            self.samples += 1;
            apply_and_profile(program, &best_seq, hls)
        };
        for _ in 0..iterations {
            let mut batch: Vec<MultiTransition> = Vec::new();
            for _ in 0..self.cfg.episodes_per_iter {
                // Episode: start from the canonical K/2 sequence (§5.2).
                let mut seq: Vec<usize> = vec![NUM_PASSES / 2; self.cfg.seq_len];
                self.samples += 1;
                let (mut compiled, mut prev) = apply_and_profile(program, &seq, hls);
                for _ in 0..self.cfg.episode_len {
                    let obs = Self::observe(&seq, &compiled);
                    let logits = self.policy.forward(&obs);
                    let (sub, logp) = self.sample_subactions(&logits);
                    let v = self.value.forward(&obs)[0];
                    let next = Self::apply_subactions(&seq, &sub);
                    self.samples += 1;
                    let (next_compiled, cycles) = apply_and_profile(program, &next, hls);
                    let reward = prev as f64 - cycles as f64;
                    if cycles < best_cycles {
                        best_cycles = cycles;
                        best_seq = next.clone();
                    }
                    batch.push(MultiTransition {
                        obs,
                        subactions: sub,
                        logp,
                        reward,
                        value: v,
                    });
                    seq = next;
                    compiled = next_compiled;
                    prev = cycles;
                }
            }
            self.update(&batch);
        }
        (best_seq, best_cycles)
    }

    /// [`MultiActionAgent::train`] with a memoized compiler: every
    /// candidate sequence is compiled and profiled at most once per cache
    /// lifetime, and [`MultiActionAgent::samples`] counts only real
    /// compilations. Training is bit-identical to the uncached path (same
    /// RNG stream, same rewards, same result) — the determinism tests
    /// assert exact equality.
    pub fn train_cached(
        &mut self,
        program: &Module,
        hls: &HlsConfig,
        iterations: usize,
        cache: &EvalCache,
    ) -> (Vec<usize>, u64) {
        let fp = fingerprint_module(program);
        let eval = |samples: &mut u64, seq: &[usize]| {
            let e = evaluate_sequence_cached(program, fp, seq, hls, cache);
            if !e.cache_hit {
                *samples += 1;
            }
            e
        };
        let mut best_seq: Vec<usize> = vec![NUM_PASSES / 2; self.cfg.seq_len];
        let mut best_cycles = eval(&mut self.samples, &best_seq).cycles;
        for _ in 0..iterations {
            let mut batch: Vec<MultiTransition> = Vec::new();
            for _ in 0..self.cfg.episodes_per_iter {
                let mut seq: Vec<usize> = vec![NUM_PASSES / 2; self.cfg.seq_len];
                let start = eval(&mut self.samples, &seq);
                let mut features = start.features;
                let mut prev = start.cycles;
                for _ in 0..self.cfg.episode_len {
                    let obs = Self::observe_features(&seq, &features);
                    let logits = self.policy.forward(&obs);
                    let (sub, logp) = self.sample_subactions(&logits);
                    let v = self.value.forward(&obs)[0];
                    let next = Self::apply_subactions(&seq, &sub);
                    let next_eval = eval(&mut self.samples, &next);
                    let reward = prev as f64 - next_eval.cycles as f64;
                    if next_eval.cycles < best_cycles {
                        best_cycles = next_eval.cycles;
                        best_seq = next.clone();
                    }
                    batch.push(MultiTransition {
                        obs,
                        subactions: sub,
                        logp,
                        reward,
                        value: v,
                    });
                    seq = next;
                    features = next_eval.features;
                    prev = next_eval.cycles;
                }
            }
            self.update(&batch);
        }
        (best_seq, best_cycles)
    }

    fn update(&mut self, batch: &[MultiTransition]) {
        // Monte-Carlo advantage per step (episodes are short).
        let mut adv: Vec<f64> = batch.iter().map(|t| t.reward - t.value).collect();
        autophase_rl::rollout::normalize(&mut adv);
        for _ in 0..self.cfg.epochs {
            for (i, t) in batch.iter().enumerate() {
                let logits = self.policy.forward(&t.obs);
                // Joint new log-prob.
                let mut logp_new = 0.0;
                let mut per_slot_probs: Vec<Vec<f64>> = Vec::with_capacity(self.cfg.seq_len);
                for slot in 0..self.cfg.seq_len {
                    let probs = softmax(&logits[slot * 3..slot * 3 + 3]);
                    logp_new += probs[t.subactions[slot]].max(1e-12).ln();
                    per_slot_probs.push(probs);
                }
                let ratio = (logp_new - t.logp).exp();
                let a = adv[i];
                let unclipped = ratio * a;
                let clipped = ratio.clamp(1.0 - self.cfg.clip, 1.0 + self.cfg.clip) * a;
                let mut grad = vec![0.0; self.cfg.seq_len * 3];
                if unclipped <= clipped + 1e-12 {
                    for slot in 0..self.cfg.seq_len {
                        let probs = &per_slot_probs[slot];
                        for j in 0..3 {
                            let ind = if j == t.subactions[slot] { 1.0 } else { 0.0 };
                            grad[slot * 3 + j] = -a * ratio * (ind - probs[j]);
                        }
                    }
                }
                self.policy.backward(&t.obs, &grad);
                let v = self.value.forward(&t.obs)[0];
                self.value.backward(&t.obs, &[v - t.reward]);
            }
            self.policy.step(self.cfg.lr);
            self.value.step(self.cfg.lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::sequence_cycles;
    use autophase_benchmarks::suite;

    #[test]
    fn subaction_arithmetic() {
        let seq = vec![0, 22, 44];
        let next = MultiActionAgent::apply_subactions(&seq, &[0, 1, 2]);
        assert_eq!(next, vec![44, 22, 0]); // −1 wraps, 0 holds, +1 wraps
    }

    #[test]
    fn observation_is_sequence_plus_features() {
        let program = suite()
            .into_iter()
            .find(|b| b.name == "gsm")
            .unwrap()
            .module;
        let obs = MultiActionAgent::observe(&[0, 22, 44], &program);
        assert_eq!(obs.len(), 3 + NUM_FEATURES);
        assert!(obs[0] < obs[1] && obs[1] < obs[2]);
        assert!(obs[..3].iter().all(|v| (-0.6..=0.6).contains(v)));
    }

    #[test]
    fn samples_counted_per_compilation() {
        let program = suite()
            .into_iter()
            .find(|b| b.name == "gsm")
            .unwrap()
            .module;
        let hls = HlsConfig::default();
        let cfg = MultiConfig {
            seq_len: 6,
            episode_len: 3,
            episodes_per_iter: 1,
            ..MultiConfig::default()
        };
        let mut agent = MultiActionAgent::new(&cfg, 1);
        agent.train(&program, &hls, 2);
        // 1 (global init) + per iteration: 1 episode × (1 reset + 3 steps).
        assert_eq!(agent.samples(), 1 + 2 * (1 + 3));
    }

    #[test]
    fn deterministic_training() {
        let program = suite()
            .into_iter()
            .find(|b| b.name == "matmul")
            .unwrap()
            .module;
        let hls = HlsConfig::default();
        let cfg = MultiConfig {
            seq_len: 6,
            episode_len: 3,
            episodes_per_iter: 1,
            ..MultiConfig::default()
        };
        let a = MultiActionAgent::new(&cfg, 9).train(&program, &hls, 2);
        let b = MultiActionAgent::new(&cfg, 9).train(&program, &hls, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn cached_training_matches_uncached_and_saves_compiles() {
        let program = suite()
            .into_iter()
            .find(|b| b.name == "gsm")
            .unwrap()
            .module;
        let hls = HlsConfig::default();
        let cfg = MultiConfig {
            seq_len: 6,
            episode_len: 3,
            episodes_per_iter: 2,
            ..MultiConfig::default()
        };
        let mut plain = MultiActionAgent::new(&cfg, 9);
        let uncached = plain.train(&program, &hls, 2);

        let cache = EvalCache::default();
        let mut memo = MultiActionAgent::new(&cfg, 9);
        let cached = memo.train_cached(&program, &hls, 2, &cache);

        assert_eq!(uncached, cached);
        // Every episode recompiles the canonical start sequence — those
        // are hits after the first, so the cached agent compiles less.
        assert!(memo.samples() < plain.samples());
        assert_eq!(
            memo.samples() + cache.hits(),
            plain.samples(),
            "every skipped compile must be a cache hit"
        );
    }

    #[test]
    fn improves_over_initial_sequence() {
        let program = suite()
            .into_iter()
            .find(|b| b.name == "gsm")
            .unwrap()
            .module;
        let hls = HlsConfig::default();
        let cfg = MultiConfig {
            seq_len: 12,
            episode_len: 6,
            episodes_per_iter: 2,
            ..MultiConfig::default()
        };
        let mut agent = MultiActionAgent::new(&cfg, 5);
        let init: Vec<usize> = vec![NUM_PASSES / 2; 12];
        let init_cycles = sequence_cycles(&program, &init, &hls);
        let (best_seq, best_cycles) = agent.train(&program, &hls, 4);
        assert!(best_cycles <= init_cycles);
        assert_eq!(best_seq.len(), 12);
        assert!(agent.samples() > 10);
    }
}
