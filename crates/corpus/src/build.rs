//! Parallel deduped corpus construction.

use autophase_ir::fingerprint::{fingerprint_module, fnv1a};
use autophase_ir::printer::print_module;
use autophase_ir::Module;
use autophase_progen::{generate_valid, GenConfig};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Seed stride between candidate indices — the same stride
/// [`autophase_progen::program_batch`] uses, so candidate `i` of a corpus
/// is exactly program `i` of the equivalent serial batch.
pub const SEED_STRIDE: u64 = 7919;

/// Corpus pipeline configuration.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Generator knobs (pinned in the manifest).
    pub gen: GenConfig,
    /// Base seed; candidate `i` uses `base_seed + i·SEED_STRIDE`.
    pub base_seed: u64,
    /// Number of *distinct* programs to materialize.
    pub target: usize,
    /// Worker threads. Any value yields the identical corpus; this only
    /// trades wall clock for cores.
    pub workers: usize,
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig {
            gen: GenConfig::default(),
            base_seed: 0xC0_2B05,
            target: 200,
            workers: 1,
        }
    }
}

/// One materialized corpus program plus its manifest identity.
#[derive(Debug, Clone)]
pub struct CorpusProgram {
    /// Candidate index (position in the serial generation order).
    pub index: u64,
    /// The progen seed that regenerates this exact program.
    pub seed: u64,
    /// The program.
    pub module: Module,
    /// Structural fingerprint ([`fingerprint_module`]) — the dedup key.
    pub fingerprint: u64,
    /// Total instruction count.
    pub insts: u64,
    /// Function count.
    pub funcs: u64,
    /// `fnv1a` of the printed module text — catches printer/regeneration
    /// drift that a structural fingerprint collision could mask.
    pub checksum: u64,
}

/// A built corpus: `programs` holds the first [`CorpusConfig::target`]
/// distinct candidates in candidate-index order.
#[derive(Debug)]
pub struct Corpus {
    /// The configuration that built it.
    pub cfg: CorpusConfig,
    /// Distinct programs, ascending candidate index.
    pub programs: Vec<CorpusProgram>,
    /// Candidates generated before dedup (for the dedup-rate report).
    pub generated: u64,
}

fn describe(index: u64, seed: u64, module: Module) -> CorpusProgram {
    let fingerprint = fingerprint_module(&module);
    let insts: u64 = module
        .func_ids()
        .map(|f| module.func(f).num_insts() as u64)
        .sum();
    let funcs = module.func_ids().count() as u64;
    let checksum = fnv1a(print_module(&module).as_bytes());
    CorpusProgram {
        index,
        seed,
        module,
        fingerprint,
        insts,
        funcs,
        checksum,
    }
}

/// Build a deduped corpus of `cfg.target` distinct verified programs.
///
/// Candidates are generated in rounds over a contiguous index range.
/// Workers claim indices from an atomic counter (so the *set* of indices
/// each round covers is fixed regardless of which worker generates
/// which), results are sorted by index, and dedup keeps the
/// lowest-index program per fingerprint. The stop condition is evaluated
/// only at round boundaries, making the kept set a pure function of
/// `(gen, base_seed, target)` — `workers` never changes the output, a
/// property pinned by the seed-stability tests.
pub fn build_corpus(cfg: &CorpusConfig) -> Corpus {
    let chunk = cfg.target.max(32) as u64;
    let mut candidates: Vec<CorpusProgram> = Vec::new();
    let mut next_index = 0u64;

    loop {
        let round_end = next_index + chunk;
        let counter = AtomicU64::new(next_index);
        let sink: Mutex<Vec<CorpusProgram>> = Mutex::new(Vec::new());
        let workers = cfg.workers.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = counter.fetch_add(1, Ordering::Relaxed);
                    if idx >= round_end {
                        return;
                    }
                    let seed = cfg.base_seed.wrapping_add(idx.wrapping_mul(SEED_STRIDE));
                    let module = generate_valid(&cfg.gen, seed);
                    let program = describe(idx, seed, module);
                    sink.lock().unwrap().push(program);
                });
            }
        });
        let mut round = sink.into_inner().unwrap();
        autophase_telemetry::incr("corpus.gen.generated", "", round.len() as u64);
        candidates.append(&mut round);
        next_index = round_end;

        // Round boundary: count distinct fingerprints in index order.
        candidates.sort_by_key(|p| p.index);
        let mut seen = HashSet::new();
        let distinct = candidates
            .iter()
            .filter(|p| seen.insert(p.fingerprint))
            .count();
        if distinct >= cfg.target {
            break;
        }
    }

    let generated = candidates.len() as u64;
    let mut seen = HashSet::new();
    let mut programs: Vec<CorpusProgram> = candidates
        .into_iter()
        .filter(|p| seen.insert(p.fingerprint))
        .collect();
    programs.truncate(cfg.target);
    autophase_telemetry::incr(
        "corpus.gen.duplicate",
        "",
        generated - programs.len() as u64,
    );
    autophase_telemetry::incr("corpus.gen.kept", "", programs.len() as u64);

    Corpus {
        cfg: cfg.clone(),
        programs,
        generated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(workers: usize) -> CorpusConfig {
        CorpusConfig {
            target: 12,
            workers,
            ..CorpusConfig::default()
        }
    }

    #[test]
    fn builds_target_distinct_programs_in_index_order() {
        let corpus = build_corpus(&small_cfg(1));
        assert_eq!(corpus.programs.len(), 12);
        let mut fps = HashSet::new();
        for w in corpus.programs.windows(2) {
            assert!(w[0].index < w[1].index, "ascending candidate index");
        }
        for p in &corpus.programs {
            assert!(fps.insert(p.fingerprint), "distinct fingerprints");
            assert_eq!(
                p.seed,
                corpus
                    .cfg
                    .base_seed
                    .wrapping_add(p.index.wrapping_mul(SEED_STRIDE))
            );
            assert!(p.insts > 0);
            assert!(p.funcs >= 1);
            autophase_ir::verify::verify_module(&p.module).unwrap();
        }
    }

    #[test]
    fn worker_count_does_not_change_the_corpus() {
        let one = build_corpus(&small_cfg(1));
        let four = build_corpus(&small_cfg(4));
        assert_eq!(one.programs.len(), four.programs.len());
        for (a, b) in one.programs.iter().zip(&four.programs) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(a.checksum, b.checksum);
            assert_eq!(
                print_module(&a.module),
                print_module(&b.module),
                "bit-identical programs regardless of worker count"
            );
        }
    }

    #[test]
    fn checksum_is_printed_text_fnv1a() {
        let corpus = build_corpus(&CorpusConfig {
            target: 3,
            ..CorpusConfig::default()
        });
        for p in &corpus.programs {
            assert_eq!(p.checksum, fnv1a(print_module(&p.module).as_bytes()));
        }
    }
}
