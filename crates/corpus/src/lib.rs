//! Corpus-scale program generation (the paper's §6.2 substrate).
//!
//! The paper validates generalization on 12,874 random programs; this
//! crate materializes that kind of corpus reproducibly. [`build_corpus`]
//! drives [`autophase_progen`] across worker threads, fingerprints every
//! candidate, and dedups to the first `target` *distinct* verified
//! programs — with a result that is bit-identical for any worker count,
//! because candidates are claimed from a shared index counter and the
//! dedup keeps the lowest candidate index per fingerprint, both of which
//! are worker-schedule-independent.
//!
//! The corpus is committed as a **manifest, not IR blobs**: the
//! [`manifest`] module defines the versioned `CORPUS1` text format
//! (base seed, generator parameters, and per-program
//! seed/fingerprint/size/checksum records). Because `progen` is
//! deterministic in the seed (a property pinned by
//! `crates/progen/tests/seed_stability.rs`), the manifest alone
//! regenerates every program bit-identically; the fingerprint and
//! checksum fields make any drift loud instead of silent.
//!
//! Telemetry: the pipeline counts `corpus.gen.generated`,
//! `corpus.gen.duplicate`, and `corpus.gen.kept` so a `--telemetry` bench
//! run shows the dedup rate at scale.
#![warn(missing_docs)]

pub mod build;
pub mod manifest;

pub use build::{build_corpus, Corpus, CorpusConfig, CorpusProgram};
pub use manifest::{
    parse_manifest, regenerate_entry, write_manifest, Manifest, ManifestEntry, MANIFEST_MAGIC,
};
