//! The versioned `CORPUS1` manifest format.
//!
//! A corpus is committed as text, not IR blobs:
//!
//! ```text
//! CORPUS1 base_seed=<u64> n=<count>
//! G <GenConfig key=value pairs>
//! P idx=<u64> seed=<u64> fp=<16-hex> insts=<u64> funcs=<u64> sum=<16-hex>
//! ...
//! ```
//!
//! `fp` is the structural module fingerprint (the dedup key), `sum` the
//! fnv1a of the printed module text. Because generation is deterministic
//! in the seed, [`regenerate_entry`] rebuilds each program from its
//! record alone and verifies both hashes plus the size counts — a
//! manifest either regenerates bit-identically or fails loudly.

use crate::build::{Corpus, CorpusProgram};
use autophase_ir::fingerprint::{fingerprint_module, fnv1a};
use autophase_ir::printer::print_module;
use autophase_ir::Module;
use autophase_progen::{generate_valid, GenConfig};
use std::fmt::Write as _;

/// First token of a valid manifest; bump on any format change.
pub const MANIFEST_MAGIC: &str = "CORPUS1";

/// One program record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Candidate index in the generation order.
    pub index: u64,
    /// The progen seed.
    pub seed: u64,
    /// Structural module fingerprint.
    pub fingerprint: u64,
    /// Total instruction count.
    pub insts: u64,
    /// Function count.
    pub funcs: u64,
    /// fnv1a of the printed module text.
    pub checksum: u64,
}

/// A parsed manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Base seed of the corpus.
    pub base_seed: u64,
    /// Generator parameters.
    pub gen: GenConfig,
    /// Program records, ascending candidate index.
    pub entries: Vec<ManifestEntry>,
}

/// Serialize a corpus to `CORPUS1` text.
pub fn write_manifest(corpus: &Corpus) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{MANIFEST_MAGIC} base_seed={} n={}",
        corpus.cfg.base_seed,
        corpus.programs.len()
    );
    let _ = writeln!(out, "G {}", corpus.cfg.gen.to_kv());
    for p in &corpus.programs {
        let _ = writeln!(
            out,
            "P idx={} seed={} fp={:016x} insts={} funcs={} sum={:016x}",
            p.index, p.seed, p.fingerprint, p.insts, p.funcs, p.checksum
        );
    }
    out
}

fn field<'a>(token: &'a str, key: &str, line: &str) -> Result<&'a str, String> {
    match token.split_once('=') {
        Some((k, v)) if k == key => Ok(v),
        _ => Err(format!("expected {key}=... in {line:?}")),
    }
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse().map_err(|e| format!("{what}: {e}"))
}

fn parse_hex(s: &str, what: &str) -> Result<u64, String> {
    u64::from_str_radix(s, 16).map_err(|e| format!("{what}: {e}"))
}

/// Parse `CORPUS1` text.
///
/// # Errors
///
/// A message naming the malformed line: wrong magic, bad generator
/// parameters, malformed record, record-count mismatch, or indices out
/// of order.
pub fn parse_manifest(text: &str) -> Result<Manifest, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty manifest")?;
    let mut toks = header.split_whitespace();
    if toks.next() != Some(MANIFEST_MAGIC) {
        return Err(format!("bad magic in {header:?} (want {MANIFEST_MAGIC})"));
    }
    let base_seed = parse_u64(
        field(toks.next().ok_or("truncated header")?, "base_seed", header)?,
        "base_seed",
    )?;
    let n = parse_u64(
        field(toks.next().ok_or("truncated header")?, "n", header)?,
        "n",
    )? as usize;

    let gen_line = lines.next().ok_or("missing generator-parameters line")?;
    let gen_kv = gen_line
        .strip_prefix("G ")
        .ok_or_else(|| format!("expected generator line, got {gen_line:?}"))?;
    let gen = GenConfig::from_kv(gen_kv)?;

    let mut entries = Vec::with_capacity(n);
    for line in lines {
        let rest = line
            .strip_prefix("P ")
            .ok_or_else(|| format!("expected program record, got {line:?}"))?;
        let mut toks = rest.split_whitespace();
        let mut next = |key: &str| -> Result<&str, String> {
            field(
                toks.next()
                    .ok_or_else(|| format!("truncated record {line:?}"))?,
                key,
                line,
            )
        };
        let entry = ManifestEntry {
            index: parse_u64(next("idx")?, "idx")?,
            seed: parse_u64(next("seed")?, "seed")?,
            fingerprint: parse_hex(next("fp")?, "fp")?,
            insts: parse_u64(next("insts")?, "insts")?,
            funcs: parse_u64(next("funcs")?, "funcs")?,
            checksum: parse_hex(next("sum")?, "sum")?,
        };
        if let Some(prev) = entries.last() {
            let prev: &ManifestEntry = prev;
            if entry.index <= prev.index {
                return Err(format!(
                    "record indices out of order: {} after {}",
                    entry.index, prev.index
                ));
            }
        }
        entries.push(entry);
    }
    if entries.len() != n {
        return Err(format!(
            "header promises {n} records, found {}",
            entries.len()
        ));
    }
    Ok(Manifest {
        base_seed,
        gen,
        entries,
    })
}

/// Regenerate one program from its manifest record and verify its
/// identity: fingerprint, instruction/function counts, and printed-text
/// checksum must all match what the manifest pinned.
///
/// # Errors
///
/// A message naming the first mismatched field — any drift between the
/// generator that wrote the manifest and the one replaying it is loud.
pub fn regenerate_entry(gen: &GenConfig, entry: &ManifestEntry) -> Result<Module, String> {
    let module = generate_valid(gen, entry.seed);
    let fp = fingerprint_module(&module);
    if fp != entry.fingerprint {
        return Err(format!(
            "seed {}: fingerprint {:016x} != manifest {:016x}",
            entry.seed, fp, entry.fingerprint
        ));
    }
    let insts: u64 = module
        .func_ids()
        .map(|f| module.func(f).num_insts() as u64)
        .sum();
    if insts != entry.insts {
        return Err(format!(
            "seed {}: {} insts != manifest {}",
            entry.seed, insts, entry.insts
        ));
    }
    let funcs = module.func_ids().count() as u64;
    if funcs != entry.funcs {
        return Err(format!(
            "seed {}: {} funcs != manifest {}",
            entry.seed, funcs, entry.funcs
        ));
    }
    let sum = fnv1a(print_module(&module).as_bytes());
    if sum != entry.checksum {
        return Err(format!(
            "seed {}: checksum {:016x} != manifest {:016x}",
            entry.seed, sum, entry.checksum
        ));
    }
    Ok(module)
}

impl Manifest {
    /// Regenerate and verify every program.
    ///
    /// # Errors
    ///
    /// The first [`regenerate_entry`] failure.
    pub fn regenerate(&self) -> Result<Vec<Module>, String> {
        self.entries
            .iter()
            .map(|e| regenerate_entry(&self.gen, e))
            .collect()
    }
}

impl Corpus {
    /// The manifest view of a built corpus.
    pub fn manifest(&self) -> Manifest {
        Manifest {
            base_seed: self.cfg.base_seed,
            gen: self.cfg.gen.clone(),
            entries: self.programs.iter().map(CorpusProgram::entry).collect(),
        }
    }
}

impl CorpusProgram {
    /// The manifest record of this program.
    pub fn entry(&self) -> ManifestEntry {
        ManifestEntry {
            index: self.index,
            seed: self.seed,
            fingerprint: self.fingerprint,
            insts: self.insts,
            funcs: self.funcs,
            checksum: self.checksum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_corpus, CorpusConfig};

    fn tiny() -> Corpus {
        build_corpus(&CorpusConfig {
            target: 5,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn manifest_round_trips_through_text() {
        let corpus = tiny();
        let text = write_manifest(&corpus);
        assert!(text.starts_with("CORPUS1 "));
        let parsed = parse_manifest(&text).unwrap();
        assert_eq!(parsed, corpus.manifest());
        // Idempotent: writing the parsed form reproduces the text.
        let again = {
            let c2 = Corpus {
                cfg: corpus.cfg.clone(),
                programs: corpus.programs.clone(),
                generated: corpus.generated,
            };
            write_manifest(&c2)
        };
        assert_eq!(text, again);
    }

    #[test]
    fn regeneration_is_bit_identical() {
        let corpus = tiny();
        let manifest = parse_manifest(&write_manifest(&corpus)).unwrap();
        let programs = manifest.regenerate().unwrap();
        assert_eq!(programs.len(), corpus.programs.len());
        for (orig, regen) in corpus.programs.iter().zip(&programs) {
            assert_eq!(
                print_module(&orig.module),
                print_module(regen),
                "manifest must regenerate the exact program"
            );
        }
    }

    #[test]
    fn tampered_manifests_fail_loudly() {
        let corpus = tiny();
        let text = write_manifest(&corpus);

        let bad_magic = text.replace("CORPUS1", "CORPUS9");
        assert!(parse_manifest(&bad_magic).unwrap_err().contains("magic"));

        // Flip a checksum digit: parse succeeds, regeneration refuses.
        let entry = &corpus.programs[0];
        let sum = format!("sum={:016x}", entry.checksum);
        let flipped = format!("sum={:016x}", entry.checksum ^ 1);
        let tampered = text.replace(&sum, &flipped);
        let manifest = parse_manifest(&tampered).unwrap();
        let err = regenerate_entry(&manifest.gen, &manifest.entries[0]).unwrap_err();
        assert!(err.contains("checksum"), "{err}");

        // Wrong seed for a pinned fingerprint: refused.
        let mut wrong = corpus.programs[1].entry();
        wrong.seed = wrong.seed.wrapping_add(1);
        let err = regenerate_entry(&corpus.cfg.gen, &wrong).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");

        // Record-count mismatch.
        let truncated: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(parse_manifest(&truncated).unwrap_err().contains("promises"));
    }
}
