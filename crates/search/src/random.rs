//! Uniform random search: sample whole sequences at once (the paper's
//! `random` baseline "randomly generates a sequence of 45 passes at once
//! instead of sampling them one-by-one").

use crate::{Objective, SearchResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run random search with `budget` samples of length-`seq_len` sequences
/// over `num_actions` passes.
pub fn search(
    obj: &mut Objective<'_>,
    num_actions: usize,
    seq_len: usize,
    budget: u64,
    seed: u64,
) -> SearchResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best_sequence: Vec<usize> = Vec::new();
    let mut best_cost = f64::INFINITY;
    for _ in 0..budget {
        let seq: Vec<usize> = (0..seq_len)
            .map(|_| rng.gen_range(0..num_actions))
            .collect();
        let c = obj.cost(&seq);
        if c < best_cost {
            best_cost = c;
            best_sequence = seq;
        }
    }
    SearchResult {
        best_sequence,
        best_cost,
        samples: obj.samples(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy objective: cost = number of entries ≠ 3.
    fn toy(seq: &[usize]) -> f64 {
        seq.iter().filter(|&&p| p != 3).count() as f64
    }

    #[test]
    fn finds_improvements_and_counts_samples() {
        let mut obj = Objective::new(toy);
        let r = search(&mut obj, 5, 4, 200, 1);
        assert_eq!(r.samples, 200);
        assert!(r.best_cost <= 2.0, "best {}", r.best_cost);
        assert_eq!(r.best_sequence.len(), 4);
    }

    #[test]
    fn deterministic() {
        let a = search(&mut Objective::new(toy), 5, 4, 50, 9);
        let b = search(&mut Objective::new(toy), 5, 4, 50, 9);
        assert_eq!(a.best_sequence, b.best_sequence);
        assert_eq!(a.best_cost, b.best_cost);
    }
}
