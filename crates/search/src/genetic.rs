//! A DEAP-style genetic algorithm (the paper's `Genetic-DEAP` baseline).

use crate::{Objective, SearchResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Crossover operators (OpenTuner's ensemble uses the same three settings
/// for its GA sub-techniques).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Crossover {
    /// Single cut point.
    OnePoint,
    /// Two cut points.
    TwoPoint,
    /// Independent per-gene coin flips.
    Uniform,
}

/// GA hyperparameters.
#[derive(Debug, Clone)]
pub struct GaConfig {
    /// Population size.
    pub population: usize,
    /// Tournament size for selection.
    pub tournament: usize,
    /// Per-gene mutation probability.
    pub mutation_prob: f64,
    /// Crossover operator.
    pub crossover: Crossover,
    /// Fraction of elites copied unchanged.
    pub elitism: f64,
}

impl Default for GaConfig {
    fn default() -> GaConfig {
        GaConfig {
            population: 24,
            tournament: 3,
            mutation_prob: 0.08,
            crossover: Crossover::TwoPoint,
            elitism: 0.1,
        }
    }
}

/// Run the GA until `budget` objective evaluations are spent.
pub fn search(
    obj: &mut Objective<'_>,
    num_actions: usize,
    seq_len: usize,
    budget: u64,
    cfg: &GaConfig,
    seed: u64,
) -> SearchResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pop: Vec<(Vec<usize>, f64)> = (0..cfg.population)
        .map(|_| {
            let g: Vec<usize> = (0..seq_len)
                .map(|_| rng.gen_range(0..num_actions))
                .collect();
            (g, f64::INFINITY)
        })
        .collect();
    for ind in &mut pop {
        if obj.samples() >= budget {
            break;
        }
        ind.1 = obj.cost(&ind.0);
    }
    let mut best = pop
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
        .cloned()
        .expect("nonempty population");

    while obj.samples() < budget {
        let n_elite = ((cfg.population as f64 * cfg.elitism).ceil() as usize).max(1);
        let mut sorted = pop.clone();
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
        let mut next: Vec<(Vec<usize>, f64)> = sorted[..n_elite].to_vec();

        while next.len() < cfg.population && obj.samples() < budget {
            let p1 = tournament(&pop, cfg.tournament, &mut rng);
            let p2 = tournament(&pop, cfg.tournament, &mut rng);
            let mut child = crossover(&pop[p1].0, &pop[p2].0, cfg.crossover, &mut rng);
            for g in &mut child {
                if rng.gen_bool(cfg.mutation_prob) {
                    *g = rng.gen_range(0..num_actions);
                }
            }
            let c = obj.cost(&child);
            if c < best.1 {
                best = (child.clone(), c);
            }
            next.push((child, c));
        }
        pop = next;
    }

    SearchResult {
        best_sequence: best.0,
        best_cost: best.1,
        samples: obj.samples(),
    }
}

fn tournament(pop: &[(Vec<usize>, f64)], k: usize, rng: &mut StdRng) -> usize {
    let mut best = rng.gen_range(0..pop.len());
    for _ in 1..k {
        let cand = rng.gen_range(0..pop.len());
        if pop[cand].1 < pop[best].1 {
            best = cand;
        }
    }
    best
}

/// Combine two parents.
pub fn crossover(a: &[usize], b: &[usize], op: Crossover, rng: &mut StdRng) -> Vec<usize> {
    let n = a.len();
    match op {
        Crossover::OnePoint => {
            let cut = rng.gen_range(0..=n);
            a[..cut].iter().chain(b[cut..].iter()).copied().collect()
        }
        Crossover::TwoPoint => {
            let mut c1 = rng.gen_range(0..=n);
            let mut c2 = rng.gen_range(0..=n);
            if c1 > c2 {
                std::mem::swap(&mut c1, &mut c2);
            }
            let mut out = a.to_vec();
            out[c1..c2].copy_from_slice(&b[c1..c2]);
            out
        }
        Crossover::Uniform => a
            .iter()
            .zip(b)
            .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cost = Hamming distance to a target sequence.
    fn target_obj(target: Vec<usize>) -> impl FnMut(&[usize]) -> f64 {
        move |seq: &[usize]| seq.iter().zip(&target).filter(|(a, b)| a != b).count() as f64
    }

    #[test]
    fn converges_to_target() {
        let target = vec![1, 3, 0, 2, 1, 0];
        let mut obj = Objective::new(target_obj(target.clone()));
        let r = search(&mut obj, 4, 6, 3000, &GaConfig::default(), 5);
        assert!(r.best_cost <= 1.0, "cost {}", r.best_cost);
    }

    #[test]
    fn all_crossovers_preserve_length_and_genes() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = vec![0, 0, 0, 0, 0];
        let b = vec![1, 1, 1, 1, 1];
        for op in [Crossover::OnePoint, Crossover::TwoPoint, Crossover::Uniform] {
            let c = crossover(&a, &b, op, &mut rng);
            assert_eq!(c.len(), 5);
            assert!(c.iter().all(|&g| g <= 1));
        }
    }

    #[test]
    fn budget_respected_and_deterministic() {
        let t = vec![2, 2, 2, 2];
        let a = search(
            &mut Objective::new(target_obj(t.clone())),
            3,
            4,
            200,
            &GaConfig::default(),
            8,
        );
        let b = search(
            &mut Objective::new(target_obj(t)),
            3,
            4,
            200,
            &GaConfig::default(),
            8,
        );
        assert!(a.samples <= 200 + 24);
        assert_eq!(a.best_sequence, b.best_sequence);
    }
}
