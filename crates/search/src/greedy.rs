//! Insertion greedy (Huang et al., FCCM'13; the paper's `Greedy`):
//! "always inserts the pass that achieves the highest speedup at the best
//! position (out of all possible positions it can be inserted to) in the
//! current sequence."

use crate::{Objective, SearchResult};

/// Run insertion greedy until the sequence reaches `max_len`, no insertion
/// improves the objective, or `budget` samples are exhausted.
pub fn search(
    obj: &mut Objective<'_>,
    num_actions: usize,
    max_len: usize,
    budget: u64,
    candidate_passes: Option<&[usize]>,
) -> SearchResult {
    let default_candidates: Vec<usize> = (0..num_actions).collect();
    let candidates = candidate_passes.unwrap_or(&default_candidates);

    let mut seq: Vec<usize> = Vec::new();
    let mut best_cost = obj.cost(&seq);

    while seq.len() < max_len && obj.samples() < budget {
        let mut best_insert: Option<(usize, usize, f64)> = None; // (pass, pos, cost)
        'outer: for &pass in candidates {
            for pos in 0..=seq.len() {
                if obj.samples() >= budget {
                    break 'outer;
                }
                let mut cand = seq.clone();
                cand.insert(pos, pass);
                let c = obj.cost(&cand);
                if best_insert.map(|(_, _, bc)| c < bc).unwrap_or(true) {
                    best_insert = Some((pass, pos, c));
                }
            }
        }
        match best_insert {
            Some((pass, pos, c)) if c < best_cost => {
                seq.insert(pos, pass);
                best_cost = c;
            }
            _ => break, // no improving insertion: greedy is done
        }
    }

    SearchResult {
        best_sequence: seq,
        best_cost,
        samples: obj.samples(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Objective where order matters: pass 1 then pass 2 is best.
    /// cost = 10 - 3·(has 1 before 2) - (count of 1s, capped 2)
    fn ordered(seq: &[usize]) -> f64 {
        let pos1 = seq.iter().position(|&p| p == 1);
        let pos2 = seq.iter().position(|&p| p == 2);
        let ordered_bonus = match (pos1, pos2) {
            (Some(a), Some(b)) if a < b => 3.0,
            _ => 0.0,
        };
        let ones = seq.iter().filter(|&&p| p == 1).count().min(2) as f64;
        10.0 - ordered_bonus - ones
    }

    #[test]
    fn finds_ordered_pair() {
        let mut obj = Objective::new(ordered);
        let r = search(&mut obj, 4, 6, 10_000, None);
        assert!(r.best_cost <= 5.0, "cost {}", r.best_cost);
        let pos1 = r.best_sequence.iter().position(|&p| p == 1).unwrap();
        let pos2 = r.best_sequence.iter().position(|&p| p == 2).unwrap();
        assert!(pos1 < pos2);
    }

    #[test]
    fn stops_when_no_improvement() {
        // Constant objective: greedy should quit after one round.
        let mut obj = Objective::new(|_s: &[usize]| 1.0);
        let r = search(&mut obj, 5, 10, 10_000, None);
        assert!(r.best_sequence.is_empty());
        // 1 (empty) + 5 passes × 1 position.
        assert_eq!(r.samples, 6);
    }

    #[test]
    fn respects_budget() {
        let mut obj = Objective::new(|s: &[usize]| -(s.len() as f64));
        let r = search(&mut obj, 10, 50, 100, None);
        assert!(r.samples <= 100 + 10);
    }

    #[test]
    fn candidate_restriction_honored() {
        let mut obj = Objective::new(ordered);
        let r = search(&mut obj, 4, 6, 10_000, Some(&[0, 3]));
        assert!(r.best_sequence.iter().all(|&p| p == 0 || p == 3));
    }
}
