//! Exhaustive enumeration for tiny spaces — the oracle that greedy and the
//! heuristics are validated against in tests (the paper's "brute-force
//! search" reference, feasible only for toy sub-spaces of the 2^247 whole).

use crate::{Objective, SearchResult};

/// Enumerate every sequence of length `0..=max_len` over `passes` and
/// return the best. The space has `Σ |passes|^k` points — keep it tiny.
pub fn search(obj: &mut Objective<'_>, passes: &[usize], max_len: usize) -> SearchResult {
    let mut best_sequence: Vec<usize> = Vec::new();
    let mut best_cost = obj.cost(&[]);
    let mut current = Vec::with_capacity(max_len);
    enumerate(
        obj,
        passes,
        max_len,
        &mut current,
        &mut best_sequence,
        &mut best_cost,
    );
    SearchResult {
        best_sequence,
        best_cost,
        samples: obj.samples(),
    }
}

fn enumerate(
    obj: &mut Objective<'_>,
    passes: &[usize],
    remaining: usize,
    current: &mut Vec<usize>,
    best_sequence: &mut Vec<usize>,
    best_cost: &mut f64,
) {
    if remaining == 0 {
        return;
    }
    for &p in passes {
        current.push(p);
        let c = obj.cost(current);
        if c < *best_cost {
            *best_cost = c;
            *best_sequence = current.clone();
        }
        enumerate(
            obj,
            passes,
            remaining - 1,
            current,
            best_sequence,
            best_cost,
        );
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Optimal is exactly [2, 0].
    fn toy(seq: &[usize]) -> f64 {
        match seq {
            [2, 0] => 0.0,
            [2] => 1.0,
            s => 5.0 + s.len() as f64,
        }
    }

    #[test]
    fn finds_global_optimum() {
        let mut obj = Objective::new(toy);
        let r = search(&mut obj, &[0, 1, 2], 2);
        assert_eq!(r.best_sequence, vec![2, 0]);
        assert_eq!(r.best_cost, 0.0);
        // 1 empty + 3 + 9 sequences.
        assert_eq!(r.samples, 13);
    }

    #[test]
    fn empty_sequence_can_win() {
        let mut obj = Objective::new(|s: &[usize]| s.len() as f64);
        let r = search(&mut obj, &[0, 1], 3);
        assert!(r.best_sequence.is_empty());
        assert_eq!(r.best_cost, 0.0);
    }
}
