//! An OpenTuner-style autotuner (Ansel et al., PACT'14; the paper's
//! `OpenTuner` baseline).
//!
//! OpenTuner runs an *ensemble* of search techniques — "two families of
//! algorithms: particle swarm optimization and GA, each with three
//! different crossover settings" (§6.1) — coordinated by an AUC-bandit
//! meta-technique that allocates evaluations to whichever technique has
//! recently produced improvements.

use crate::genetic::{crossover, Crossover};
use crate::{Objective, SearchResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Tuner parameters.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Sliding-window length for the bandit's credit history.
    pub window: usize,
    /// Bandit exploration constant.
    pub exploration: f64,
    /// Shared population size per technique.
    pub population: usize,
}

impl Default for TunerConfig {
    fn default() -> TunerConfig {
        TunerConfig {
            window: 50,
            exploration: 1.4,
            population: 10,
        }
    }
}

/// Per-particle PSO state: (position, velocity, best position, best cost).
type Particle = (Vec<f64>, Vec<f64>, Vec<f64>, f64);

/// One sub-technique of the ensemble.
enum Technique {
    Pso {
        inertia: f64,
        particles: Vec<Particle>,
        crossover: Crossover,
        cursor: usize,
    },
    Ga {
        crossover: Crossover,
        population: Vec<(Vec<usize>, f64)>,
        mutation: f64,
    },
}

/// Run the ensemble tuner for `budget` evaluations.
pub fn search(
    obj: &mut Objective<'_>,
    num_actions: usize,
    seq_len: usize,
    budget: u64,
    cfg: &TunerConfig,
    seed: u64,
) -> SearchResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: (Vec<usize>, f64) = (
        (0..seq_len)
            .map(|_| rng.gen_range(0..num_actions))
            .collect(),
        f64::INFINITY,
    );
    best.1 = obj.cost(&best.0);

    // The six techniques: PSO ×3 crossover settings + GA ×3.
    let xs = [Crossover::OnePoint, Crossover::TwoPoint, Crossover::Uniform];
    let mut techniques: Vec<Technique> = Vec::new();
    for &cx in &xs {
        let particles = (0..cfg.population)
            .map(|_| {
                let pos: Vec<f64> = (0..seq_len)
                    .map(|_| rng.gen_range(0.0..num_actions as f64))
                    .collect();
                let vel: Vec<f64> = (0..seq_len).map(|_| rng.gen_range(-1.0..1.0)).collect();
                (pos.clone(), vel, pos, f64::INFINITY)
            })
            .collect();
        techniques.push(Technique::Pso {
            inertia: 0.6,
            particles,
            crossover: cx,
            cursor: 0,
        });
    }
    for &cx in &xs {
        let population = (0..cfg.population)
            .map(|_| {
                let g: Vec<usize> = (0..seq_len)
                    .map(|_| rng.gen_range(0..num_actions))
                    .collect();
                (g, f64::INFINITY)
            })
            .collect();
        techniques.push(Technique::Ga {
            crossover: cx,
            population,
            mutation: 0.08,
        });
    }

    // AUC bandit state: recent success history per technique.
    let mut history: Vec<VecDeque<bool>> = vec![VecDeque::new(); techniques.len()];
    let mut uses: Vec<u64> = vec![0; techniques.len()];
    let mut total_uses: u64 = 1;

    while obj.samples() < budget {
        // Pick the technique with the best AUC + exploration bonus.
        let pick = (0..techniques.len())
            .max_by(|&a, &b| {
                let sa = bandit_score(&history[a], uses[a], total_uses, cfg);
                let sb = bandit_score(&history[b], uses[b], total_uses, cfg);
                sa.partial_cmp(&sb).expect("finite scores")
            })
            .expect("nonempty ensemble");
        uses[pick] += 1;
        total_uses += 1;

        let candidate = propose(
            &mut techniques[pick],
            &best.0,
            num_actions,
            seq_len,
            &mut rng,
        );
        let c = obj.cost(&candidate);
        let improved = c < best.1;
        record(&mut techniques[pick], &candidate, c, num_actions);
        if improved {
            best = (candidate, c);
        }
        let h = &mut history[pick];
        h.push_back(improved);
        if h.len() > cfg.window {
            h.pop_front();
        }
    }

    SearchResult {
        best_sequence: best.0,
        best_cost: best.1,
        samples: obj.samples(),
    }
}

/// AUC score: recency-weighted success rate (newer successes weigh more —
/// OpenTuner's "area under the curve" credit), plus a UCB exploration term.
fn bandit_score(h: &VecDeque<bool>, uses: u64, total: u64, cfg: &TunerConfig) -> f64 {
    let auc = if h.is_empty() {
        0.5
    } else {
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &s) in h.iter().enumerate() {
            let w = (i + 1) as f64;
            den += w;
            if s {
                num += w;
            }
        }
        num / den
    };
    auc + cfg.exploration * ((total as f64).ln() / (uses.max(1) as f64)).sqrt()
}

fn propose(
    t: &mut Technique,
    global_best: &[usize],
    num_actions: usize,
    seq_len: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    match t {
        Technique::Pso {
            inertia,
            particles,
            crossover: cx,
            cursor,
        } => {
            let i = *cursor % particles.len();
            *cursor += 1;
            let (pos, vel, pbest, _) = &mut particles[i];
            // Velocity update toward personal and global best.
            for j in 0..seq_len {
                let r1: f64 = rng.gen();
                let r2: f64 = rng.gen();
                vel[j] = *inertia * vel[j]
                    + 1.5 * r1 * (pbest[j] - pos[j])
                    + 1.5 * r2 * (global_best[j] as f64 - pos[j]);
                pos[j] = (pos[j] + vel[j]).clamp(0.0, num_actions as f64 - 1e-9);
            }
            let rounded: Vec<usize> = pos.iter().map(|&p| p as usize).collect();
            // Crossover setting: mix the rounded position with the global
            // best (OpenTuner's PSO variants differ exactly here).
            crossover(&rounded, global_best, *cx, rng)
        }
        Technique::Ga {
            crossover: cx,
            population,
            mutation,
        } => {
            let pick2 = |rng: &mut StdRng| {
                let a = rng.gen_range(0..population.len());
                let b = rng.gen_range(0..population.len());
                if population[a].1 <= population[b].1 {
                    a
                } else {
                    b
                }
            };
            let p1 = pick2(rng);
            let p2 = pick2(rng);
            let mut child = crossover(&population[p1].0, &population[p2].0, *cx, rng);
            for g in &mut child {
                if rng.gen_bool(*mutation) {
                    *g = rng.gen_range(0..num_actions);
                }
            }
            child
        }
    }
}

fn record(t: &mut Technique, candidate: &[usize], cost: f64, _num_actions: usize) {
    match t {
        Technique::Pso {
            particles, cursor, ..
        } => {
            let i = (*cursor + particles.len() - 1) % particles.len();
            let (_, _, pbest, pcost) = &mut particles[i];
            if cost < *pcost {
                *pcost = cost;
                *pbest = candidate.iter().map(|&c| c as f64).collect();
            }
        }
        Technique::Ga { population, .. } => {
            // Replace the worst member if the child beats it.
            if let Some((wi, _)) = population
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("finite costs"))
            {
                if cost < population[wi].1 {
                    population[wi] = (candidate.to_vec(), cost);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target_obj(target: Vec<usize>) -> impl FnMut(&[usize]) -> f64 {
        move |seq: &[usize]| seq.iter().zip(&target).filter(|(a, b)| a != b).count() as f64
    }

    #[test]
    fn converges_on_simple_target() {
        let target = vec![2, 0, 1, 3, 2];
        let mut obj = Objective::new(target_obj(target));
        let r = search(&mut obj, 4, 5, 4000, &TunerConfig::default(), 3);
        assert!(r.best_cost <= 1.0, "cost {}", r.best_cost);
        assert_eq!(r.samples, 4000);
    }

    #[test]
    fn deterministic() {
        let t = vec![1, 1, 0];
        let a = search(
            &mut Objective::new(target_obj(t.clone())),
            2,
            3,
            300,
            &TunerConfig::default(),
            12,
        );
        let b = search(
            &mut Objective::new(target_obj(t)),
            2,
            3,
            300,
            &TunerConfig::default(),
            12,
        );
        assert_eq!(a.best_sequence, b.best_sequence);
    }

    #[test]
    fn bandit_prefers_recent_success() {
        let cfg = TunerConfig {
            exploration: 0.0,
            ..TunerConfig::default()
        };
        let mut good = VecDeque::new();
        let mut bad = VecDeque::new();
        for i in 0..10 {
            good.push_back(i >= 5); // recent successes
            bad.push_back(i < 5); // old successes
        }
        assert!(bandit_score(&good, 10, 20, &cfg) > bandit_score(&bad, 10, 20, &cfg));
    }
}
