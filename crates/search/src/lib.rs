//! Black-box pass-sequence search baselines (§6.1's non-RL competitors).
//!
//! Every searcher optimizes an opaque objective `eval(&[usize]) -> f64`
//! (lower is better — circuit cycles in the experiments) over fixed-length
//! pass sequences, mirroring how the paper drives external tools:
//!
//! * [`random`] — uniform random 45-pass sequences (`random`);
//! * [`greedy`] — the insertion greedy of Huang et al. FCCM'13 (`Greedy`):
//!   repeatedly insert the best pass at the best position;
//! * [`genetic`] — a DEAP-style genetic algorithm (`Genetic-DEAP`);
//! * [`opentuner`] — an AUC-bandit meta-technique over an ensemble of
//!   particle-swarm and genetic sub-techniques with three crossover
//!   settings each, OpenTuner's architecture (Ansel et al., PACT'14).
//!
//! [`exhaustive`] enumerates tiny sub-spaces exactly and serves as the
//! oracle the heuristics are validated against.
//!
//! Searchers report how many objective evaluations ("samples" in Figure 7)
//! they spent.
#![warn(missing_docs)]

pub mod exhaustive;
pub mod genetic;
pub mod greedy;
pub mod opentuner;
pub mod random;

/// The outcome of a search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best sequence found.
    pub best_sequence: Vec<usize>,
    /// Its objective value.
    pub best_cost: f64,
    /// Number of objective evaluations used.
    pub samples: u64,
}

/// A boxed sequence-cost function.
type EvalFn<'a> = Box<dyn FnMut(&[usize]) -> f64 + 'a>;

/// A counting wrapper around the objective, shared by all searchers.
pub struct Objective<'a> {
    eval: EvalFn<'a>,
    samples: u64,
}

impl<'a> Objective<'a> {
    /// Wrap an evaluation function.
    pub fn new(eval: impl FnMut(&[usize]) -> f64 + 'a) -> Objective<'a> {
        Objective {
            eval: Box::new(eval),
            samples: 0,
        }
    }

    /// Evaluate a sequence, counting the sample.
    pub fn cost(&mut self, seq: &[usize]) -> f64 {
        self.samples += 1;
        (self.eval)(seq)
    }

    /// Samples spent so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}
