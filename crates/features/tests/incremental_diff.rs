//! Differential testing of the incremental evaluation paths (tier 1).
//!
//! `tests/pass_semantics_diff.rs` (workspace root) proves every Table-1
//! pass preserves semantics and reports its change flag honestly. This
//! suite proves the *incremental* evaluation built on top of those passes
//! is invisible: for every `(program, state, pass)` triple,
//!
//! * the per-function feature decomposition
//!   ([`IncrementalFeatures`]) updated with the pass's derived
//!   `ChangeSet` must equal a from-scratch [`extract`] of the mutated
//!   module, bit for bit;
//! * profiling through the content-addressed per-function schedule cache
//!   ([`ScheduleCache`]) must reproduce the uncached profile exactly —
//!   cycles, FSM states, area, executed instructions, and return value.
//!
//! The corpus is the full benchmark suite plus generated programs (the
//! same seeds as the pass-semantics suite), each in a pristine and a
//! warmed state, crossed with all 45 passes. Any divergence names the
//! program, state, and pass that produced it.

use autophase_features::{extract, IncrementalFeatures};
use autophase_hls::profile::{profile_with_trace, profile_with_trace_cached};
use autophase_hls::{HlsConfig, ScheduleCache};
use autophase_ir::fingerprint::fingerprint_function;
use autophase_ir::interp::run_main;
use autophase_ir::Module;
use autophase_passes::changeset::{apply_traced, ChangeSet};
use autophase_passes::registry::{self, NUM_PASSES};
use autophase_progen::{generate_valid, GenConfig};

const FUEL: u64 = 4_000_000;

/// Generated-program seeds, matching `tests/pass_semantics_diff.rs`.
const CORPUS_SEEDS: [u64; 5] = [11, 94, 233, 1042, 4711];

/// The canonicalizing prefix of the pass-semantics suite's warmed state.
const WARM_PREFIX: [usize; 3] = [23, 33, 10];

/// Benchmark suite + generated corpus, each pristine and warmed.
fn corpus() -> Vec<(String, Module)> {
    let mut corpus: Vec<(String, Module)> = autophase_benchmarks::suite()
        .into_iter()
        .map(|b| (b.name.to_string(), b.module))
        .collect();
    let cfg = GenConfig::default();
    for &s in &CORPUS_SEEDS {
        corpus.push((format!("gen{s}"), generate_valid(&cfg, s)));
    }
    let warmed: Vec<(String, Module)> = corpus
        .iter()
        .map(|(name, m)| {
            let mut w = m.clone();
            for &p in &WARM_PREFIX {
                registry::apply(&mut w, p);
            }
            (format!("{name}+warm"), w)
        })
        .collect();
    corpus.extend(warmed);
    corpus
}

/// Fold one traced pass application into an [`IncrementalFeatures`],
/// routing structural/signature changes to a rebuild — exactly the
/// dispatch the phase-ordering environment performs.
fn sync_features(inc: &mut IncrementalFeatures, m: &Module, cs: &ChangeSet) {
    if cs.needs_full_rebuild() {
        inc.rebuild(m);
    } else {
        inc.update(m, &cs.dirty_funcs);
    }
}

#[test]
fn incremental_features_match_full_extract_for_every_pass() {
    for (label, m0) in corpus() {
        for pass in 0..NUM_PASSES {
            let mut m = m0.clone();
            let mut inc = IncrementalFeatures::new(&m);
            let (changed, cs) = apply_traced(&mut m, pass);
            if changed {
                sync_features(&mut inc, &m, &cs);
            } else {
                assert!(
                    cs.is_empty(),
                    "{label}: {} reported no change but a non-empty change set",
                    registry::pass_name(pass)
                );
            }
            assert_eq!(
                inc.total(),
                extract(&m),
                "{label}: incremental features diverged after {}",
                registry::pass_name(pass)
            );
        }
    }
}

#[test]
fn cached_cycles_match_full_profile_for_every_pass() {
    let cfg = HlsConfig::default();
    // One shared cache across the whole sweep: entries produced for one
    // program/pass must never leak wrong results into another (content
    // addressing is what guarantees that).
    let mut cache = ScheduleCache::default();
    for (label, m0) in corpus() {
        for pass in 0..NUM_PASSES {
            let mut m = m0.clone();
            registry::apply(&mut m, pass);
            let trace = run_main(&m, FUEL)
                .unwrap_or_else(|e| panic!("{label}: execution failed after pass {pass}: {e}"));
            let full = profile_with_trace(&m, &cfg, &trace);
            let cached = profile_with_trace_cached(&m, &cfg, &trace, &mut cache, |fid| {
                fingerprint_function(m.func(fid))
            });
            assert_eq!(
                full.cycles,
                cached.cycles,
                "{label}: cycles diverged after {}",
                registry::pass_name(pass)
            );
            assert_eq!(
                full.total_states, cached.total_states,
                "{label} pass {pass}"
            );
            assert_eq!(full.area, cached.area, "{label} pass {pass}");
            assert_eq!(
                full.insts_executed, cached.insts_executed,
                "{label} pass {pass}"
            );
            assert_eq!(
                full.return_value, cached.return_value,
                "{label} pass {pass}"
            );
        }
    }
    let (hits, _misses) = cache.stats();
    assert!(hits > 0, "the sweep must reuse schedules across passes");
}

#[test]
fn incremental_features_track_whole_episodes() {
    // Episode-length pass streams (not single passes) keep one
    // decomposition alive across many updates — the accumulated-error
    // shape of bug the single-pass sweep can't catch. Includes structural
    // passes (-inline 25, -partial-inliner 24, -deadargelim 9) to force
    // mid-episode rebuild routing.
    let sequences: [&[usize]; 3] = [
        &[38, 23, 33, 30, 31, 25, 9, 28, 7, 43, 24, 31],
        &[25, 24, 25, 9, 38, 30, 31, 33, 23, 7],
        &[44, 38, 44, 23, 44, 33, 44, 30, 44, 31],
    ];
    for (label, m0) in corpus() {
        for (i, seq) in sequences.iter().enumerate() {
            let mut m = m0.clone();
            let mut inc = IncrementalFeatures::new(&m);
            for &pass in seq.iter() {
                let (changed, cs) = apply_traced(&mut m, pass);
                if changed {
                    sync_features(&mut inc, &m, &cs);
                }
            }
            assert_eq!(
                inc.total(),
                extract(&m),
                "{label}: decomposition drifted over sequence #{i}"
            );
        }
    }
}
