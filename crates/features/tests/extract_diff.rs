//! Differential suite for the vectorized (tally-based) extractors.
//!
//! `extract_function` was rewritten from per-instruction match dispatch
//! to chunked opcode-class tallies, and `extract_structural`'s loop
//! metrics from O(loops × blocks) membership scans to a dense per-block
//! containment-count pass. Both are integer counting — the results must
//! be **exactly** equal to the original implementations on every
//! function of every corpus program, pristine and after every pass.
//!
//! The Table-2 reference is the original extractor kept verbatim as
//! [`autophase_features::extract::extract_function_reference`]; the
//! structural reference is re-implemented here from the public loop API
//! in the original membership-scan form.

use autophase_features::extract::extract_function_reference;
use autophase_features::{extract_function, extract_structural, NUM_STRUCTURAL_FEATURES};
use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::loops::find_loops;
use autophase_ir::Module;
use autophase_passes::registry::{self, NUM_PASSES};
use autophase_progen::{generate_valid, GenConfig};

/// Generated-program seeds, matching `tests/pass_semantics_diff.rs`.
const CORPUS_SEEDS: [u64; 5] = [11, 94, 233, 1042, 4711];

/// The canonicalizing prefix of the pass-semantics suite's warmed state.
const WARM_PREFIX: [usize; 3] = [23, 33, 10];

fn corpus() -> Vec<(String, Module)> {
    let mut corpus: Vec<(String, Module)> = autophase_benchmarks::suite()
        .into_iter()
        .map(|b| (b.name.to_string(), b.module))
        .collect();
    let cfg = GenConfig::default();
    for &s in &CORPUS_SEEDS {
        corpus.push((format!("gen{s}"), generate_valid(&cfg, s)));
    }
    let warmed: Vec<(String, Module)> = corpus
        .iter()
        .map(|(name, m)| {
            let mut w = m.clone();
            for &p in &WARM_PREFIX {
                registry::apply(&mut w, p);
            }
            (format!("{name}+warm"), w)
        })
        .collect();
    corpus.extend(warmed);
    corpus
}

/// The original membership-scan loop metrics (structural features 0–8),
/// preserved as the reference for the containment-count rewrite.
fn loop_metrics_reference(m: &Module) -> [i64; 9] {
    let mut f = [0i64; 9];
    for fid in m.func_ids() {
        let func = m.func(fid);
        let cfg = Cfg::new(func);
        let dt = DomTree::new(func, &cfg);
        let loops = find_loops(func, &cfg, &dt);
        let mut blocks_in_loops = 0i64;
        for bb in func.block_ids() {
            if loops.iter().any(|l| l.contains(bb)) {
                blocks_in_loops += 1;
            }
        }
        f[0] += loops.len() as i64;
        for l in &loops {
            let depth = loops.iter().filter(|o| o.contains(l.header)).count() as i64;
            match depth {
                1 => f[1] += 1,
                2 => f[2] += 1,
                _ => f[3] += 1,
            }
            f[4] = f[4].max(depth);
            f[6] += l.exits.len() as i64;
            f[7] += l.latches.len() as i64;
            if l.latches.len() > 1 {
                f[8] += 1;
            }
        }
        f[5] += blocks_in_loops;
    }
    f
}

#[test]
fn tally_extractor_matches_reference_on_corpus_and_after_every_pass() {
    for (label, m0) in corpus() {
        for pass in 0..NUM_PASSES {
            let mut m = m0.clone();
            registry::apply(&mut m, pass);
            for fid in m.func_ids() {
                assert_eq!(
                    extract_function(&m, fid),
                    extract_function_reference(&m, fid),
                    "{label}: tally extractor diverged on function {fid:?} after {}",
                    registry::pass_name(pass)
                );
            }
        }
    }
}

#[test]
fn structural_loop_metrics_match_reference_on_corpus_and_after_every_pass() {
    for (label, m0) in corpus() {
        for pass in 0..NUM_PASSES {
            let mut m = m0.clone();
            registry::apply(&mut m, pass);
            let got = extract_structural(&m);
            assert_eq!(got.len(), NUM_STRUCTURAL_FEATURES);
            let want = loop_metrics_reference(&m);
            assert_eq!(
                &got[..9],
                &want[..],
                "{label}: loop metrics diverged after {}",
                registry::pass_name(pass)
            );
        }
    }
}
