//! Structure-aware features beyond Table 2's 56 counts.
//!
//! Table 2 is almost entirely *count*-shaped: how many blocks, how many
//! instructions of each class, how many φs. Two programs with very
//! different optimization headroom can share a Table-2 vector — a single
//! triply-nested loop and three disjoint flat loops have the same block
//! and branch counts, but respond very differently to `-loop-unroll`,
//! `-licm`-style motion, or `-loop-rotate`. DAPO (PAPERS.md) argues that
//! exactly this kind of *graph-shape* information is what closes the
//! unseen-program gap for learned HLS pass ordering.
//!
//! This module extracts [`NUM_STRUCTURAL_FEATURES`] shape features from
//! the CFG, the natural-loop forest, and the dominator tree:
//!
//! * a **loop-nest depth histogram** (loops at depth 1 / 2 / ≥3, plus the
//!   maximum nest depth) — unroll/rotate/LICM material;
//! * **loop anatomy** (blocks inside loops, exit and latch counts,
//!   multi-latch loops) — how canonical the loops already are;
//! * **branch fanout** (maximum successor count, blocks with ≥3
//!   successors) — switch-heaviness that `-simplifycfg`/`-jump-threading`
//!   act on;
//! * **dominator-tree shape** (height, leaf count, maximum branching
//!   factor) — how deep and how wide control dependence runs.
//!
//! Aggregation over functions is documented per feature: counts sum,
//! maxima take the module-wide max. [`FeatureSet`] selects between the
//! plain Table-2 vector and Table 2 + this extension; the RL environment
//! widens its observation accordingly (observation width is config-driven,
//! not hard-coded to 56).

use crate::extract::{extract, FeatureVector, NUM_FEATURES};
use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::loops::find_loops;
use autophase_ir::Module;

/// Number of structural features (indices 0–13 of the extension block).
pub const NUM_STRUCTURAL_FEATURES: usize = 14;

/// Human-readable names of the structural features, in index order.
pub fn structural_feature_names() -> [&'static str; NUM_STRUCTURAL_FEATURES] {
    [
        "Number of natural loops",                   // sum
        "Number of loops at nest depth 1",           // sum
        "Number of loops at nest depth 2",           // sum
        "Number of loops at nest depth >= 3",        // sum
        "Maximum loop nest depth",                   // max
        "Number of blocks inside at least one loop", // sum
        "Total loop exit edges",                     // sum
        "Total back edges (loop latches)",           // sum
        "Number of loops with more than one latch",  // sum
        "Maximum successor count of any block",      // max
        "Number of blocks with >= 3 successors",     // sum
        "Dominator tree height",                     // max
        "Number of dominator tree leaves",           // sum
        "Maximum dominator tree branching factor",   // max
    ]
}

/// Whether a structural feature aggregates across functions by summing
/// (true) or by taking the module-wide maximum (false). Index order
/// matches [`structural_feature_names`].
pub const STRUCTURAL_SUMMED: [bool; NUM_STRUCTURAL_FEATURES] = [
    true, true, true, true, false, true, true, true, true, false, true, false, true, false,
];

/// Extract the structural feature block from a module.
///
/// Deterministic in the module: every underlying analysis (CFG
/// successor/predecessor lists, RPO, the loop list sorted by header RPO
/// index, dominator-tree walks over RPO) iterates in block order, never
/// over a `HashMap`.
pub fn extract_structural(m: &Module) -> [i64; NUM_STRUCTURAL_FEATURES] {
    let mut f = [0i64; NUM_STRUCTURAL_FEATURES];
    for fid in m.func_ids() {
        let func = m.func(fid);
        let cfg = Cfg::new(func);
        let dt = DomTree::new(func, &cfg);
        let loops = find_loops(func, &cfg, &dt);

        // ---- Loop-nest depth histogram. A loop's depth is the number of
        // loops (itself included) whose block set contains its header;
        // nested loops appear as separate entries with overlapping block
        // sets, so containment counting recovers the nesting level.
        //
        // One pass over every loop's block list builds a dense per-block
        // containment-count tally, replacing the former
        // O(loops × blocks) membership scans (each of which re-walked
        // `Loop::blocks` per query): depth(l) = contain[l.header], and a
        // block is inside a loop iff its count is nonzero.
        let mut contain = vec![0i64; func.block_capacity()];
        for l in &loops {
            for &bb in &l.blocks {
                contain[bb.index()] += 1;
            }
        }
        let mut blocks_in_loops = 0i64;
        for bb in func.block_ids() {
            if contain[bb.index()] != 0 {
                blocks_in_loops += 1;
            }
        }
        f[0] += loops.len() as i64;
        for l in &loops {
            let depth = contain[l.header.index()];
            match depth {
                1 => f[1] += 1,
                2 => f[2] += 1,
                _ => f[3] += 1,
            }
            f[4] = f[4].max(depth);
            f[6] += l.exits.len() as i64;
            f[7] += l.latches.len() as i64;
            if l.latches.len() > 1 {
                f[8] += 1;
            }
        }
        f[5] += blocks_in_loops;

        // ---- Branch fanout.
        for bb in func.block_ids() {
            let succs = cfg.succs(bb).len() as i64;
            f[9] = f[9].max(succs);
            if succs >= 3 {
                f[10] += 1;
            }
        }

        // ---- Dominator-tree shape. Depth of a block = edges from the
        // entry along idom links; leaves are reachable blocks that
        // immediately dominate nothing.
        let mut max_children = 0i64;
        let mut height = 0i64;
        let mut leaves = 0i64;
        for bb in func.block_ids() {
            if !dt.is_reachable(bb) {
                continue;
            }
            let mut depth = 0i64;
            let mut cur = bb;
            while let Some(up) = dt.idom(cur) {
                depth += 1;
                cur = up;
            }
            height = height.max(depth);
            let kids = dt.children(bb).len() as i64;
            max_children = max_children.max(kids);
            if kids == 0 {
                leaves += 1;
            }
        }
        f[11] = f[11].max(height);
        f[12] += leaves;
        f[13] = f[13].max(max_children);
    }
    f
}

/// Which feature vector the observation carries.
///
/// `Table2` is the paper's exact 56-feature vector; `Structural` appends
/// the [`NUM_STRUCTURAL_FEATURES`] graph-shape features of this module.
/// The corpus benchmark ablates the two to measure whether structural
/// features shrink the unseen-program generalization gap (DAPO-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeatureSet {
    /// The 56 Table-2 counts only.
    #[default]
    Table2,
    /// Table 2 plus the structural extension block.
    Structural,
}

impl FeatureSet {
    /// Total feature count of the set.
    pub fn len(self) -> usize {
        match self {
            FeatureSet::Table2 => NUM_FEATURES,
            FeatureSet::Structural => NUM_FEATURES + NUM_STRUCTURAL_FEATURES,
        }
    }

    /// Never empty (mirrors the `len`/`is_empty` convention).
    pub fn is_empty(self) -> bool {
        false
    }

    /// Parse a command-line name (`table2` | `structural`).
    pub fn parse(s: &str) -> Option<FeatureSet> {
        match s {
            "table2" => Some(FeatureSet::Table2),
            "structural" => Some(FeatureSet::Structural),
            _ => None,
        }
    }

    /// The command-line name.
    pub fn name(self) -> &'static str {
        match self {
            FeatureSet::Table2 => "table2",
            FeatureSet::Structural => "structural",
        }
    }
}

/// Extract the full vector of a feature set from a module: the Table-2
/// block, optionally followed by the structural block.
pub fn extract_set(m: &Module, set: FeatureSet) -> Vec<i64> {
    let base: FeatureVector = extract(m);
    let mut out = base.to_vec();
    if set == FeatureSet::Structural {
        out.extend_from_slice(&extract_structural(m));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::{Type, Value};

    fn loop_module(depth: usize) -> Module {
        let mut m = Module::new("loops");
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        fn nest(b: &mut FunctionBuilder, depth: usize) {
            if depth == 0 {
                return;
            }
            b.counted_loop(Value::i32(4), |b, _| nest(b, depth - 1));
        }
        nest(&mut b, depth);
        b.ret(Some(Value::i32(0)));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn straightline_is_all_flat() {
        let mut m = Module::new("s");
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        b.ret(Some(Value::i32(0)));
        m.add_function(b.finish());
        let f = extract_structural(&m);
        assert_eq!(f[0], 0, "no loops");
        assert_eq!(f[4], 0, "no nest depth");
        assert_eq!(f[11], 0, "dom tree of one block has height 0");
        assert_eq!(f[12], 1, "entry is the only (leaf) block");
    }

    #[test]
    fn nest_depth_histogram() {
        let f = extract_structural(&loop_module(3));
        assert_eq!(f[0], 3, "three loops");
        assert_eq!(f[1], 1, "one top-level loop");
        assert_eq!(f[2], 1, "one depth-2 loop");
        assert_eq!(f[3], 1, "one depth-3 loop");
        assert_eq!(f[4], 3, "max nest depth");
        assert!(f[5] >= 3, "loop bodies counted");
        assert!(f[7] >= 3, "three back edges");
    }

    #[test]
    fn flat_loops_differ_from_nested_structurally_not_in_counts() {
        // The motivating case: same number of loops, different shape.
        let nested = loop_module(2);
        let mut flat = Module::new("flat");
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        b.counted_loop(Value::i32(4), |_, _| {});
        b.counted_loop(Value::i32(4), |_, _| {});
        b.ret(Some(Value::i32(0)));
        flat.add_function(b.finish());

        let sn = extract_structural(&nested);
        let sf = extract_structural(&flat);
        assert_eq!(sn[0], sf[0], "same loop count");
        assert_ne!(sn[4], sf[4], "different max nest depth");
        assert_eq!(sn[4], 2);
        assert_eq!(sf[4], 1);
        assert_eq!(sf[1], 2, "both flat loops are depth 1");
        assert_eq!(sn[1], 1);
    }

    #[test]
    fn fanout_and_dom_shape() {
        // entry -> {a, b} (fanout 2), a -> j, b -> j.
        let mut m = Module::new("d");
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.icmp(autophase_ir::CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret(Some(Value::i32(0)));
        m.add_function(b.finish());
        let f = extract_structural(&m);
        assert_eq!(f[9], 2, "max fanout is the cond_br");
        assert_eq!(f[10], 0, "no >=3-way branches");
        assert_eq!(f[11], 1, "entry immediately dominates all three");
        assert_eq!(f[13], 3, "entry has three dom children");
        assert_eq!(f[12], 3, "t, e, j are dom leaves");
    }

    #[test]
    fn extract_set_widths_and_prefix() {
        let m = loop_module(2);
        let t2 = extract_set(&m, FeatureSet::Table2);
        let st = extract_set(&m, FeatureSet::Structural);
        assert_eq!(t2.len(), FeatureSet::Table2.len());
        assert_eq!(st.len(), FeatureSet::Structural.len());
        assert_eq!(st.len(), NUM_FEATURES + NUM_STRUCTURAL_FEATURES);
        assert_eq!(&st[..NUM_FEATURES], &t2[..], "structural extends Table 2");
        assert_eq!(&st[NUM_FEATURES..], &extract_structural(&m)[..]);
    }

    #[test]
    fn names_cover_and_aggregation_table_is_consistent() {
        let names = structural_feature_names();
        assert_eq!(names.len(), NUM_STRUCTURAL_FEATURES);
        let mut uniq: Vec<&str> = names.to_vec();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), NUM_STRUCTURAL_FEATURES);
        assert_eq!(STRUCTURAL_SUMMED.len(), NUM_STRUCTURAL_FEATURES);
    }

    #[test]
    fn feature_set_parse_round_trips() {
        for set in [FeatureSet::Table2, FeatureSet::Structural] {
            assert_eq!(FeatureSet::parse(set.name()), Some(set));
        }
        assert_eq!(FeatureSet::parse("bogus"), None);
        assert_eq!(FeatureSet::default(), FeatureSet::Table2);
    }

    #[test]
    fn multi_function_aggregation_sums_and_maxes() {
        // f: depth-2 nest; g: one flat loop. Counts sum, maxes max.
        let mut m = Module::new("mf");
        let mut b = FunctionBuilder::new("f", vec![], Type::I32);
        b.counted_loop(Value::i32(4), |b, _| {
            b.counted_loop(Value::i32(4), |_, _| {});
        });
        b.ret(Some(Value::i32(0)));
        m.add_function(b.finish());
        let mut b = FunctionBuilder::new("g", vec![], Type::I32);
        b.counted_loop(Value::i32(4), |_, _| {});
        b.ret(Some(Value::i32(0)));
        m.add_function(b.finish());
        let f = extract_structural(&m);
        assert_eq!(f[0], 3, "2 + 1 loops");
        assert_eq!(f[1], 2, "one top-level loop per function");
        assert_eq!(f[4], 2, "max depth across functions");
    }
}
