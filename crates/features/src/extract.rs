//! The 56-feature extractor (Table 2 of the paper).

use autophase_ir::cfg::Cfg;
use autophase_ir::{BinOp, CastOp, FuncId, Module, Opcode, Value};

/// Number of features (Table 2: indices 0–55).
pub const NUM_FEATURES: usize = 56;

/// A feature vector, indexed exactly as Table 2.
pub type FeatureVector = [i64; NUM_FEATURES];

/// Human-readable names, in Table-2 order.
pub fn feature_names() -> [&'static str; NUM_FEATURES] {
    [
        "Number of BB where total args for phi nodes > 5",
        "Number of BB where total args for phi nodes is [1,5]",
        "Number of BB's with 1 predecessor",
        "Number of BB's with 1 predecessor and 1 successor",
        "Number of BB's with 1 predecessor and 2 successors",
        "Number of BB's with 1 successor",
        "Number of BB's with 2 predecessors",
        "Number of BB's with 2 predecessors and 1 successor",
        "Number of BB's with 2 predecessors and successors",
        "Number of BB's with 2 successors",
        "Number of BB's with >2 predecessors",
        "Number of BB's with Phi node # in range (0,3]",
        "Number of BB's with more than 3 Phi nodes",
        "Number of BB's with no Phi nodes",
        "Number of Phi-nodes at beginning of BB",
        "Number of branches",
        "Number of calls that return an int",
        "Number of critical edges",
        "Number of edges",
        "Number of occurrences of 32-bit integer constants",
        "Number of occurrences of 64-bit integer constants",
        "Number of occurrences of constant 0",
        "Number of occurrences of constant 1",
        "Number of unconditional branches",
        "Number of Binary operations with a constant operand",
        "Number of AShr insts",
        "Number of Add insts",
        "Number of Alloca insts",
        "Number of And insts",
        "Number of BB's with instructions between [15,500]",
        "Number of BB's with less than 15 instructions",
        "Number of BitCast insts",
        "Number of Br insts",
        "Number of Call insts",
        "Number of GetElementPtr insts",
        "Number of ICmp insts",
        "Number of LShr insts",
        "Number of Load insts",
        "Number of Mul insts",
        "Number of Or insts",
        "Number of PHI insts",
        "Number of Ret insts",
        "Number of SExt insts",
        "Number of Select insts",
        "Number of Shl insts",
        "Number of Store insts",
        "Number of Sub insts",
        "Number of Trunc insts",
        "Number of Xor insts",
        "Number of ZExt insts",
        "Number of basic blocks",
        "Number of instructions (of all types)",
        "Number of memory instructions",
        "Number of non-external functions",
        "Total arguments to Phi nodes",
        "Number of Unary operations",
    ]
}

/// Extract the Table-2 feature vector from a module.
///
/// Defined as the element-wise sum of [`extract_function`] over all live
/// functions — the identity the incremental extractor
/// ([`crate::incremental::IncrementalFeatures`]) relies on.
pub fn extract(m: &Module) -> FeatureVector {
    let mut f = [0i64; NUM_FEATURES];
    for fid in m.func_ids() {
        accumulate(&mut f, &extract_function(m, fid));
    }
    f
}

/// Add `src` into `dst` element-wise.
pub fn accumulate(dst: &mut FeatureVector, src: &FeatureVector) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d += s;
    }
}

/// Subtract `src` from `dst` element-wise.
pub fn subtract(dst: &mut FeatureVector, src: &FeatureVector) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d -= s;
    }
}

// ---- vectorized (tally-based) instruction counting ----
//
// Instead of bumping up to four scattered `f[...]` slots per instruction
// through a 20-arm match, each instruction is classified once into a
// compact opcode class; a block tallies classes into a dense counter
// array (the "chunk"), and the chunk is scattered to feature indices in
// one pass over a constant class→features table. Exact integer counts —
// bit-identical to [`extract_function_reference`], which the
// `extract_diff` suite pins.

/// Compact opcode classes — one per distinct Table-2 counting behavior.
#[derive(Clone, Copy)]
#[repr(usize)]
enum OpClass {
    AShr = 0,
    Add,
    And,
    LShr,
    Mul,
    Or,
    Shl,
    Sub,
    Xor,
    OtherBin,
    ICmp,
    Select,
    Phi,
    Alloca,
    Load,
    Store,
    Gep,
    BitCast,
    SExt,
    Trunc,
    ZExt,
    CallInt,
    CallOther,
    Br,
    CondBr,
    Switch,
    Ret,
    Unreachable,
}

const NUM_OP_CLASSES: usize = OpClass::Unreachable as usize + 1;

/// Feature indices each class contributes one count to. Covers the plain
/// per-instruction counters (25–49), the aggregates (15 branches,
/// 23 unconditional, 32 Br insts, 33 calls, 16 int-returning calls,
/// 41 rets, 52 memory, 55 unary); φ-arg and constant-operand features
/// need operand payloads and are tallied separately.
const CLASS_FEATURES: [&[usize]; NUM_OP_CLASSES] = [
    &[25],         // AShr
    &[26],         // Add
    &[28],         // And
    &[36],         // LShr
    &[38],         // Mul
    &[39],         // Or
    &[44],         // Shl
    &[46],         // Sub
    &[48],         // Xor
    &[],           // other binary ops
    &[35],         // ICmp
    &[43],         // Select
    &[40],         // Phi
    &[27],         // Alloca
    &[37, 52, 55], // Load (memory, unary)
    &[45, 52],     // Store (memory)
    &[34],         // Gep
    &[31, 55],     // BitCast (unary)
    &[42, 55],     // SExt (unary)
    &[47, 55],     // Trunc (unary)
    &[49, 55],     // ZExt (unary)
    &[33, 16],     // Call returning int
    &[33],         // other Call
    &[15, 23, 32], // Br (branch, unconditional, Br inst)
    &[15, 32],     // CondBr (branch, Br inst)
    &[15],         // Switch (branch)
    &[41],         // Ret
    &[],           // Unreachable
];

#[inline]
fn classify(m: &Module, op: &Opcode) -> OpClass {
    match op {
        Opcode::Binary(op, ..) => match op {
            BinOp::AShr => OpClass::AShr,
            BinOp::Add => OpClass::Add,
            BinOp::And => OpClass::And,
            BinOp::LShr => OpClass::LShr,
            BinOp::Mul => OpClass::Mul,
            BinOp::Or => OpClass::Or,
            BinOp::Shl => OpClass::Shl,
            BinOp::Sub => OpClass::Sub,
            BinOp::Xor => OpClass::Xor,
            _ => OpClass::OtherBin,
        },
        Opcode::ICmp(..) => OpClass::ICmp,
        Opcode::Select { .. } => OpClass::Select,
        Opcode::Phi { .. } => OpClass::Phi,
        Opcode::Alloca { .. } => OpClass::Alloca,
        Opcode::Load { .. } => OpClass::Load,
        Opcode::Store { .. } => OpClass::Store,
        Opcode::Gep { .. } => OpClass::Gep,
        Opcode::Cast(op, _) => match op {
            CastOp::BitCast => OpClass::BitCast,
            CastOp::SExt => OpClass::SExt,
            CastOp::Trunc => OpClass::Trunc,
            CastOp::ZExt => OpClass::ZExt,
        },
        Opcode::Call { callee, .. } => {
            if m.func_exists(*callee) && m.func(*callee).ret_ty.is_int() {
                OpClass::CallInt
            } else {
                OpClass::CallOther
            }
        }
        Opcode::Br { .. } => OpClass::Br,
        Opcode::CondBr { .. } => OpClass::CondBr,
        Opcode::Switch { .. } => OpClass::Switch,
        Opcode::Ret { .. } => OpClass::Ret,
        Opcode::Unreachable => OpClass::Unreachable,
    }
}

/// One function's contribution to the module feature vector.
///
/// Almost every feature is function-local; the exception is feature 16
/// ("calls that return an int"), which consults the *callee's* return
/// type — so a function's vector is only stable while no callee
/// signature changes (the incremental extractor rebuilds from scratch on
/// any signature or structural change).
pub fn extract_function(m: &Module, fid: FuncId) -> FeatureVector {
    let mut f = [0i64; NUM_FEATURES];
    let func = m.func(fid);
    let cfg = Cfg::new(func);
    f[53] += 1; // non-external functions (all our functions have bodies)
    f[17] += cfg.critical_edges().len() as i64;
    f[18] += cfg.num_edges() as i64;

    for bb in func.block_ids() {
        f[50] += 1; // basic blocks
        let preds = cfg.preds(bb).len();
        let succs = cfg.succs(bb).len();

        // Phase 1: tally the block's instructions by class, plus the
        // operand-payload counters no class count can carry.
        let mut counts = [0i64; NUM_OP_CLASSES];
        let mut inst_count = 0i64;
        let mut phi_args = 0i64;
        let mut bin_const = 0i64;
        let mut const_i32 = 0i64;
        let mut const_i64 = 0i64;
        let mut const_zero = 0i64;
        let mut const_one = 0i64;
        for (_, inst) in func.insts_in(bb) {
            inst_count += 1;
            counts[classify(m, &inst.op) as usize] += 1;
            match &inst.op {
                Opcode::Binary(_, a, b) if a.is_const() || b.is_const() => bin_const += 1,
                Opcode::Phi { incoming } => phi_args += incoming.len() as i64,
                _ => {}
            }
            inst.for_each_operand(|v| {
                if let Value::ConstInt(ty, c) = v {
                    match ty {
                        autophase_ir::Type::I32 => const_i32 += 1,
                        autophase_ir::Type::I64 => const_i64 += 1,
                        _ => {}
                    }
                    if c == 0 {
                        const_zero += 1;
                    } else if v.is_one() {
                        const_one += 1;
                    }
                }
            });
        }

        // Phase 2: scatter the chunk to feature indices.
        for (cls, &cnt) in counts.iter().enumerate() {
            if cnt != 0 {
                for &fi in CLASS_FEATURES[cls] {
                    f[fi] += cnt;
                }
            }
        }
        f[51] += inst_count;
        f[54] += phi_args;
        f[24] += bin_const;
        f[19] += const_i32;
        f[20] += const_i64;
        f[21] += const_zero;
        f[22] += const_one;

        // Block-shape features.
        let phi_count = counts[OpClass::Phi as usize];
        if phi_args > 5 {
            f[0] += 1;
        } else if phi_args >= 1 {
            f[1] += 1;
        }
        if preds == 1 {
            f[2] += 1;
            if succs == 1 {
                f[3] += 1;
            }
            if succs == 2 {
                f[4] += 1;
            }
        }
        if succs == 1 {
            f[5] += 1;
        }
        if preds == 2 {
            f[6] += 1;
            if succs == 1 {
                f[7] += 1;
            }
            if succs == 2 {
                f[8] += 1;
            }
        }
        if succs == 2 {
            f[9] += 1;
        }
        if preds > 2 {
            f[10] += 1;
        }
        if phi_count == 0 {
            f[13] += 1;
        } else if phi_count <= 3 {
            f[11] += 1;
        } else {
            f[12] += 1;
        }
        f[14] += phi_count;
        if (15..=500).contains(&inst_count) {
            f[29] += 1;
        } else if inst_count < 15 {
            f[30] += 1;
        }
    }
    f
}

/// The original per-instruction match-dispatch extractor, kept verbatim
/// as the differential reference for the tally-based
/// [`extract_function`] (see `tests/extract_diff.rs`).
#[doc(hidden)]
pub fn extract_function_reference(m: &Module, fid: FuncId) -> FeatureVector {
    let mut f = [0i64; NUM_FEATURES];
    {
        let func = m.func(fid);
        let cfg = Cfg::new(func);
        f[53] += 1; // non-external functions (all our functions have bodies)
        f[17] += cfg.critical_edges().len() as i64;
        f[18] += cfg.num_edges() as i64;

        for bb in func.block_ids() {
            f[50] += 1; // basic blocks
            let preds = cfg.preds(bb).len();
            let succs = cfg.succs(bb).len();
            let mut phi_count = 0i64;
            let mut phi_args = 0i64;
            let mut inst_count = 0i64;

            for (_, inst) in func.insts_in(bb) {
                inst_count += 1;
                f[51] += 1;
                match &inst.op {
                    Opcode::Binary(op, a, b) => {
                        if a.is_const() || b.is_const() {
                            f[24] += 1;
                        }
                        match op {
                            BinOp::AShr => f[25] += 1,
                            BinOp::Add => f[26] += 1,
                            BinOp::And => f[28] += 1,
                            BinOp::LShr => f[36] += 1,
                            BinOp::Mul => f[38] += 1,
                            BinOp::Or => f[39] += 1,
                            BinOp::Shl => f[44] += 1,
                            BinOp::Sub => f[46] += 1,
                            BinOp::Xor => f[48] += 1,
                            _ => {}
                        }
                    }
                    Opcode::ICmp(..) => f[35] += 1,
                    Opcode::Select { .. } => f[43] += 1,
                    Opcode::Phi { incoming } => {
                        f[40] += 1;
                        phi_count += 1;
                        phi_args += incoming.len() as i64;
                        f[54] += incoming.len() as i64;
                    }
                    Opcode::Alloca { .. } => f[27] += 1,
                    Opcode::Load { .. } => {
                        f[37] += 1;
                        f[52] += 1;
                    }
                    Opcode::Store { .. } => {
                        f[45] += 1;
                        f[52] += 1;
                    }
                    Opcode::Gep { .. } => f[34] += 1,
                    Opcode::Cast(op, _) => match op {
                        CastOp::BitCast => f[31] += 1,
                        CastOp::SExt => f[42] += 1,
                        CastOp::Trunc => f[47] += 1,
                        CastOp::ZExt => f[49] += 1,
                    },
                    Opcode::Call { callee, .. } => {
                        f[33] += 1;
                        if m.func_exists(*callee) && m.func(*callee).ret_ty.is_int() {
                            f[16] += 1;
                        }
                    }
                    Opcode::Br { .. } => {
                        f[15] += 1;
                        f[23] += 1;
                        f[32] += 1;
                    }
                    Opcode::CondBr { .. } => {
                        f[15] += 1;
                        f[32] += 1;
                    }
                    Opcode::Switch { .. } => f[15] += 1,
                    Opcode::Ret { .. } => f[41] += 1,
                    Opcode::Unreachable => {}
                }
                // Unary operations: single-operand value computations.
                if matches!(inst.op, Opcode::Cast(..) | Opcode::Load { .. }) {
                    f[55] += 1;
                }
                // Constant occurrences.
                inst.for_each_operand(|v| {
                    if let Value::ConstInt(ty, c) = v {
                        match ty {
                            autophase_ir::Type::I32 => f[19] += 1,
                            autophase_ir::Type::I64 => f[20] += 1,
                            _ => {}
                        }
                        if c == 0 {
                            f[21] += 1;
                        } else if v.is_one() {
                            f[22] += 1;
                        }
                    }
                });
            }

            // Block-shape features.
            if phi_args > 5 {
                f[0] += 1;
            } else if phi_args >= 1 {
                f[1] += 1;
            }
            if preds == 1 {
                f[2] += 1;
                if succs == 1 {
                    f[3] += 1;
                }
                if succs == 2 {
                    f[4] += 1;
                }
            }
            if succs == 1 {
                f[5] += 1;
            }
            if preds == 2 {
                f[6] += 1;
                if succs == 1 {
                    f[7] += 1;
                }
                if succs == 2 {
                    f[8] += 1;
                }
            }
            if succs == 2 {
                f[9] += 1;
            }
            if preds > 2 {
                f[10] += 1;
            }
            if phi_count == 0 {
                f[13] += 1;
            } else if phi_count <= 3 {
                f[11] += 1;
            } else {
                f[12] += 1;
            }
            f[14] += phi_count;
            if (15..=500).contains(&inst_count) {
                f[29] += 1;
            } else if inst_count < 15 {
                f[30] += 1;
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::{CmpPred, Type};

    fn diamond_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let x = b.binary(BinOp::Add, b.arg(0), Value::i32(1));
        b.br(j);
        b.switch_to(e);
        let y = b.binary(BinOp::Sub, b.arg(0), Value::i32(1));
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I32, vec![(t, x), (e, y)]);
        b.ret(Some(p));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn diamond_features() {
        let f = extract(&diamond_module());
        assert_eq!(f[50], 4); // blocks
        assert_eq!(f[18], 4); // edges
        assert_eq!(f[17], 0); // no critical edges
        assert_eq!(f[15], 3); // branches (condbr + 2 br)
        assert_eq!(f[23], 2); // unconditional
        assert_eq!(f[32], 3); // Br insts (cond + uncond)
        assert_eq!(f[40], 1); // phi
        assert_eq!(f[54], 2); // phi args
        assert_eq!(f[1], 1); // BB with phi args in [1,5]
        assert_eq!(f[26], 1); // Add
        assert_eq!(f[46], 1); // Sub
        assert_eq!(f[35], 1); // ICmp
        assert_eq!(f[41], 1); // Ret
        assert_eq!(f[9], 1); // entry has 2 successors
        assert_eq!(f[6], 1); // join has 2 preds
        assert_eq!(f[53], 1); // one function
        assert_eq!(f[24], 2); // binary ops with const operand: add, sub
        assert_eq!(f[51], 8); // total instructions
    }

    #[test]
    fn constant_counting() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], Type::I64);
        let a = b.binary_ty(Type::I64, BinOp::Add, Value::i64(0), Value::i64(1));
        let c = b.binary_ty(Type::I64, BinOp::Mul, a, Value::i64(5));
        b.ret(Some(c));
        m.add_function(b.finish());
        let f = extract(&m);
        assert_eq!(f[20], 3); // three i64 constants
        assert_eq!(f[19], 0); // no i32 constants
        assert_eq!(f[21], 1); // one zero
        assert_eq!(f[22], 1); // one one
    }

    #[test]
    fn memory_and_alloca_features() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 4);
        let q = b.gep(p, Value::i32(1));
        b.store(q, Value::i32(7));
        let v = b.load(Type::I32, q);
        b.ret(Some(v));
        m.add_function(b.finish());
        let f = extract(&m);
        assert_eq!(f[27], 1); // alloca
        assert_eq!(f[34], 1); // gep
        assert_eq!(f[37], 1); // load
        assert_eq!(f[45], 1); // store
        assert_eq!(f[52], 2); // memory insts
    }

    #[test]
    fn mem2reg_changes_feature_profile() {
        // The φ/alloca trade-off the paper's RL agent observes.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(Value::i32(5), |b, i| {
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, i);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        m.add_function(b.finish());
        let before = extract(&m);
        autophase_passes::mem2reg::run(&mut m);
        let after = extract(&m);
        assert!(before[27] > after[27]); // allocas gone
        assert!(before[52] > after[52]); // memory ops gone
        assert!(after[40] > before[40]); // φs appeared
    }

    #[test]
    fn int_returning_call_counted() {
        let mut m = Module::new("t");
        let cv = {
            let mut b = FunctionBuilder::new("voidf", vec![], Type::Void);
            b.ret(None);
            m.add_function(b.finish())
        };
        let ci = {
            let mut b = FunctionBuilder::new("intf", vec![], Type::I32);
            b.ret(Some(Value::i32(1)));
            m.add_function(b.finish())
        };
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        b.call(cv, Type::Void, vec![]);
        let r = b.call(ci, Type::I32, vec![]);
        b.ret(Some(r));
        m.add_function(b.finish());
        let f = extract(&m);
        assert_eq!(f[33], 2); // calls
        assert_eq!(f[16], 1); // int-returning calls
        assert_eq!(f[53], 3); // functions
    }

    #[test]
    fn names_cover_all_features() {
        let names = feature_names();
        assert_eq!(names.len(), NUM_FEATURES);
        let mut uniq: Vec<&str> = names.to_vec();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), NUM_FEATURES);
    }

    #[test]
    fn critical_edge_feature() {
        // entry -> {a, join}, a -> join: one critical edge.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::Void);
        let a = b.new_block();
        let join = b.new_block();
        let c = b.icmp(CmpPred::Eq, b.arg(0), Value::i32(0));
        b.cond_br(c, a, join);
        b.switch_to(a);
        b.br(join);
        b.switch_to(join);
        b.ret(None);
        m.add_function(b.finish());
        assert_eq!(extract(&m)[17], 1);
    }
}
