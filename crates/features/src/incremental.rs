//! Incremental feature extraction: re-extract only dirty functions.
//!
//! [`extract`](crate::extract::extract) is the element-wise sum of
//! [`extract_function`](crate::extract::extract_function) over all live
//! functions, so a per-function decomposition can be maintained under
//! pass application: subtract the old vector of each dirty function, re-
//! extract it, add the new vector back. Clean functions cost nothing —
//! the `feature_extract_skipped_total` telemetry counter tracks how many.
//!
//! The decomposition is only stable while function ids and signatures are
//! stable (feature 16 reads callee return types), so callers must route
//! structural or signature changes through [`IncrementalFeatures::rebuild`].
//! The caller (the phase-ordering environment) derives that distinction
//! from the pass layer's `ChangeSet`.

use crate::extract::{accumulate, extract_function, subtract, FeatureVector, NUM_FEATURES};
use autophase_ir::{FuncId, Module};
use autophase_telemetry as telemetry;

/// Per-function feature decomposition summed into a module total.
///
/// Invariant (checked by `debug_assert` in tests and the differential
/// suite): `total == extract(m)` for the module it was last synced with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncrementalFeatures {
    /// Slot-indexed per-function vectors (`None` for empty slots).
    per_func: Vec<Option<FeatureVector>>,
    total: FeatureVector,
}

impl IncrementalFeatures {
    /// Build the decomposition from scratch (one full extraction).
    pub fn new(m: &Module) -> IncrementalFeatures {
        let mut inc = IncrementalFeatures {
            per_func: Vec::new(),
            total: [0i64; NUM_FEATURES],
        };
        inc.rebuild(m);
        inc
    }

    /// The module feature vector (bit-identical to `extract(m)` for the
    /// module this state is synced with).
    pub fn total(&self) -> FeatureVector {
        self.total
    }

    /// Re-extract everything. Required after structural changes (function
    /// slots added/removed) or signature changes (feature 16 depends on
    /// callee return types, so even clean callers may shift).
    pub fn rebuild(&mut self, m: &Module) {
        self.per_func.clear();
        self.per_func.resize(m.func_capacity(), None);
        self.total = [0i64; NUM_FEATURES];
        for fid in m.func_ids() {
            let f = extract_function(m, fid);
            accumulate(&mut self.total, &f);
            self.per_func[fid.index()] = Some(f);
        }
    }

    /// Re-extract only `dirty` functions; everything else is reused.
    ///
    /// Sound only when the change was non-structural with unchanged
    /// signatures — the caller is responsible for falling back to
    /// [`IncrementalFeatures::rebuild`] otherwise (see
    /// `ChangeSet::needs_full_rebuild` in the passes crate).
    pub fn update(&mut self, m: &Module, dirty: &[FuncId]) {
        for &fid in dirty {
            let slot = &mut self.per_func[fid.index()];
            if let Some(old) = slot.as_ref() {
                subtract(&mut self.total, old);
            }
            let f = extract_function(m, fid);
            accumulate(&mut self.total, &f);
            *slot = Some(f);
        }
        if telemetry::enabled() {
            let live = self.per_func.iter().filter(|s| s.is_some()).count();
            let skipped = live.saturating_sub(dirty.len()) as u64;
            telemetry::incr("feature_extract_skipped_total", "", skipped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::{BinOp, Type, Value};

    fn two_function_module() -> Module {
        let mut m = Module::new("t");
        let mut h = FunctionBuilder::new("helper", vec![Type::I32], Type::I32);
        let d = h.binary(BinOp::Mul, h.arg(0), Value::i32(2));
        h.ret(Some(d));
        let helper = m.add_function(h.finish());
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(3));
        let v = b.load(Type::I32, acc);
        let r = b.call(helper, Type::I32, vec![v]);
        b.ret(Some(r));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn new_matches_full_extract() {
        let m = two_function_module();
        let inc = IncrementalFeatures::new(&m);
        assert_eq!(inc.total(), extract(&m));
    }

    #[test]
    fn dirty_update_matches_full_extract() {
        let mut m = two_function_module();
        let mut inc = IncrementalFeatures::new(&m);
        let main = m.main().unwrap();
        // Mutate main only (mem2reg removes its alloca/load/store).
        assert!(autophase_passes::mem2reg::run(&mut m));
        inc.update(&m, &[main]);
        assert_eq!(inc.total(), extract(&m));
    }

    #[test]
    fn rebuild_after_structural_change_matches() {
        let mut m = two_function_module();
        let mut inc = IncrementalFeatures::new(&m);
        let helper = m.func_by_name("helper").unwrap();
        // Remove the call, then the callee (structural).
        assert!(autophase_passes::inline::run(&mut m));
        if m.func_exists(helper) {
            m.remove_function(helper);
        }
        inc.rebuild(&m);
        assert_eq!(inc.total(), extract(&m));
    }

    #[test]
    fn update_with_empty_dirty_set_is_identity() {
        let m = two_function_module();
        let mut inc = IncrementalFeatures::new(&m);
        let before = inc.clone();
        inc.update(&m, &[]);
        assert_eq!(inc, before);
    }
}
