//! Static program features (the paper's Table 2).
//!
//! [`extract`](mod@extract) computes the exact 56 features of Table 2 from a module —
//! basic-block shape counts, instruction-class counts, constant
//! occurrences, CFG edges and critical edges, φ-node statistics. These
//! form the RL observation (the "program features" observation space) and
//! feed the random-forest importance analysis of §4.
//!
//! [`normalize`] implements §5.3's two techniques: ① elementwise
//! `log1p`, and ② division by feature 51 (total instruction count).
//! [`filter_features`] keeps the paper's reduced feature subset used by the
//! `filtered-*` configurations in §6.2.
//!
//! # Example
//!
//! ```
//! use autophase_features::{extract, normalize_to_inst_count, NUM_FEATURES};
//! use autophase_ir::{builder::FunctionBuilder, Module, Type, Value};
//!
//! let mut b = FunctionBuilder::new("main", vec![], Type::I32);
//! let p = b.alloca(Type::I32, 1);
//! b.store(p, Value::i32(7));
//! let v = b.load(Type::I32, p);
//! b.ret(Some(v));
//! let mut m = Module::new("demo");
//! m.add_function(b.finish());
//!
//! let features = extract(&m);
//! assert_eq!(features.len(), NUM_FEATURES);
//! assert_eq!(features[27], 1); // one alloca
//! assert_eq!(features[52], 2); // one load + one store
//! let dist = normalize_to_inst_count(&features);
//! assert!((dist[51] - 1.0).abs() < 1e-12);
//! ```
#![warn(missing_docs)]

pub mod extract;
pub mod incremental;
pub mod normalize;
pub mod structural;

pub use extract::{extract, extract_function, feature_names, FeatureVector, NUM_FEATURES};
pub use incremental::IncrementalFeatures;
pub use normalize::{
    filter_features, inst_count_filtered, log_normalize, normalize_to_inst_count, FILTERED_FEATURES,
};
pub use structural::{
    extract_set, extract_structural, structural_feature_names, FeatureSet, NUM_STRUCTURAL_FEATURES,
};
