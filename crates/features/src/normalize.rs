//! Feature and reward normalization (§5.3) and the filtered feature
//! subset (§6.2).

use crate::extract::{FeatureVector, NUM_FEATURES};

/// Technique ①: elementwise `ln(1 + x)`. Squashes magnitudes and, as the
/// paper observes, makes the network correlate *products* of features.
pub fn log_normalize(f: &FeatureVector) -> Vec<f64> {
    f.iter().map(|&x| (1.0 + x.max(0) as f64).ln()).collect()
}

/// Technique ②: divide by feature 51 (total instruction count), turning
/// counts into the instruction-mix distribution.
pub fn normalize_to_inst_count(f: &FeatureVector) -> Vec<f64> {
    let total = f[51].max(1) as f64;
    f.iter().map(|&x| x as f64 / total).collect()
}

/// The reduced feature subset used by the `filtered-*` configurations.
///
/// Chosen per §4.1's importance analysis: CFG shape (branches, edges,
/// critical edges), φ statistics, memory traffic, the instruction classes
/// the forests rank highly (binary-with-constant, mul, load/store, icmp),
/// and size normalizers. Dropping weak features reduces variance across
/// programs, which is exactly why the paper's `filtered` runs converge
/// faster (Figure 8).
pub const FILTERED_FEATURES: [usize; 24] = [
    2,  // BBs with 1 pred
    5,  // BBs with 1 succ
    9,  // BBs with 2 succs
    14, // phis at block starts
    15, // branches
    17, // critical edges
    18, // edges
    21, // constant 0 occurrences
    22, // constant 1 occurrences
    24, // binary ops with constant operand
    26, // adds
    27, // allocas
    33, // calls
    34, // geps
    35, // icmps
    37, // loads
    38, // muls
    40, // phis
    45, // stores
    46, // subs
    50, // basic blocks
    51, // instructions
    52, // memory instructions
    54, // phi args
];

/// Project a (possibly normalized) full feature vector onto the filtered
/// subset.
pub fn filter_features(full: &[f64]) -> Vec<f64> {
    debug_assert_eq!(full.len(), NUM_FEATURES);
    FILTERED_FEATURES.iter().map(|&i| full[i]).collect()
}

/// Technique ② followed by the §4 filter in one call: the feature block
/// of the cross-program `Combined` observation, shared by training
/// configurations and the serving engine (which must reproduce the
/// training-time observation exactly for the policy to transfer).
pub fn inst_count_filtered(f: &FeatureVector) -> Vec<f64> {
    filter_features(&normalize_to_inst_count(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureVector {
        let mut f = [0i64; NUM_FEATURES];
        f[51] = 100;
        f[26] = 20;
        f[37] = 5;
        f
    }

    #[test]
    fn log_normalize_squashes() {
        let n = log_normalize(&sample());
        assert!((n[51] - (101f64).ln()).abs() < 1e-12);
        assert_eq!(n[0], 0.0);
        assert!(n.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn inst_count_normalization_is_a_distribution_scale() {
        let n = normalize_to_inst_count(&sample());
        assert!((n[51] - 1.0).abs() < 1e-12);
        assert!((n[26] - 0.2).abs() < 1e-12);
        assert!((n[37] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_inst_count_is_safe() {
        let f = [0i64; NUM_FEATURES];
        let n = normalize_to_inst_count(&f);
        assert!(n.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn filter_projects_in_order() {
        let mut f = [0i64; NUM_FEATURES];
        for (i, v) in f.iter_mut().enumerate() {
            *v = i as i64;
        }
        let full: Vec<f64> = f.iter().map(|&x| x as f64).collect();
        let filt = filter_features(&full);
        assert_eq!(filt.len(), FILTERED_FEATURES.len());
        for (k, &idx) in FILTERED_FEATURES.iter().enumerate() {
            assert_eq!(filt[k], idx as f64);
        }
    }

    #[test]
    fn filtered_indices_valid_and_unique() {
        let mut v = FILTERED_FEATURES.to_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), FILTERED_FEATURES.len());
        assert!(v.iter().all(|&i| i < NUM_FEATURES));
    }
}
