//! AutoPhase — facade crate.
//!
//! Re-exports every subsystem of the AutoPhase reproduction (MLSys 2020)
//! under one roof. See the README for the architecture overview and
//! `DESIGN.md` for the experiment index.
//!
//! # Example: one RL environment step
//!
//! ```
//! use autophase::core::{PhaseOrderEnv, env::EnvConfig};
//! use autophase::rl::env::Environment;
//!
//! let program = autophase::benchmarks::suite::by_name("gsm").expect("known benchmark");
//! let mut env = PhaseOrderEnv::single(program, EnvConfig::default());
//! let obs = env.reset();
//! assert_eq!(obs.len(), 56);            // Table-2 features
//! let step = env.step(38);              // apply -mem2reg
//! assert!(step.reward > 0.0);           // fewer cycles
//! ```

pub use autophase_benchmarks as benchmarks;
pub use autophase_core as core;
pub use autophase_features as features;
pub use autophase_forest as forest;
pub use autophase_hls as hls;
pub use autophase_ir as ir;
pub use autophase_nn as nn;
pub use autophase_passes as passes;
pub use autophase_progen as progen;
pub use autophase_rl as rl;
pub use autophase_search as search;
pub use autophase_telemetry as telemetry;
