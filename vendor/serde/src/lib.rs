//! Offline marker-trait subset of the `serde` API.
//!
//! The workspace annotates data types with `#[derive(Serialize,
//! Deserialize)]` so they stay wire-ready, but nothing in the repo
//! actually serializes through a serde `Serializer` yet (there is no
//! `serde_json` in the tree). Since the build environment cannot reach
//! crates.io, this vendored stand-in keeps those annotations compiling:
//! the traits are markers with blanket impls and the derives expand to
//! nothing. Swapping back to real serde later is a one-line change in the
//! workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// `serde::de` namespace stand-in.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// `serde::ser` namespace stand-in.
pub mod ser {
    pub use crate::Serialize;
}
