//! Offline micro-benchmark harness with criterion's surface API.
//!
//! Covers `Criterion::bench_function`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros. Timing is a simple
//! warmup + fixed-round mean over `std::time::Instant` — adequate for the
//! relative comparisons the workspace's benches make, with zero external
//! dependencies.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark timing loop handle.
pub struct Bencher {
    /// Mean wall-clock time per iteration, filled by [`Bencher::iter`].
    elapsed_per_iter: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Time `f` over enough iterations to fill the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: find an iteration count that runs ≥ ~0.2 s.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.elapsed_per_iter = total / iters as u32;
        self.iters_done = iters;
    }
}

/// Benchmark registry/driver (subset of criterion's `Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark and print its mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
            iters_done: 0,
        };
        f(&mut b);
        println!(
            "bench {name:<50} {:>12.3} µs/iter ({} iters)",
            b.elapsed_per_iter.as_secs_f64() * 1e6,
            b.iters_done,
        );
        self
    }
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
