//! Offline mini property-testing framework.
//!
//! Implements the subset of the `proptest` API this workspace's tests
//! use: the [`proptest!`] macro (with an optional `#![proptest_config]`
//! inner attribute), `prop_assert!` / `prop_assert_eq!`, integer-range
//! and [`Just`] strategies, [`any`], [`prop_oneof!`], and
//! [`collection::vec`].
//!
//! Differences from upstream, chosen for an offline, deterministic CI:
//! - Cases are generated from a seed derived from the test's name, so
//!   every run explores the same inputs (reproducible failures without a
//!   regressions file).
//! - No shrinking: the failing input values are printed instead; with
//!   deterministic generation the case can be replayed under a debugger
//!   by re-running the test.

use std::ops::{Range, RangeInclusive};

// ------------------------------------------------------------------ rng

/// Deterministic generator for test-case production (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream for case number `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

// ----------------------------------------------------------- strategies

/// A generator of test-case values.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// Tuples of strategies are themselves strategies (generate left to
// right), mirroring upstream proptest's tuple support.
macro_rules! strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
strategy_for_tuple!(A: 0, B: 1);
strategy_for_tuple!(A: 0, B: 1, C: 2);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);

macro_rules! strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-range values of a primitive type.
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_for_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_for_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Strategy for any value of `A` (mirrors `proptest::arbitrary::any`).
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from a non-empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Box a strategy for use inside [`Union`] (helper for `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

// Strategies behind references, so `impl Strategy` returns compose.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)`: vectors with lengths in `len_range`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------- config

/// Runner configuration (the `cases` knob is the only one honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

// ---------------------------------------------------------------- macros

/// Assert inside a property; prints the message and panics on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skip the current case when an assumption does not hold.
///
/// The property body is expanded directly inside the per-case loop, so a
/// `continue` moves on to the next generated case. (Use at the top level
/// of the property body, not inside a nested loop.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// The property-test macro: expands each `fn name(arg in strategy, ...)`
/// into a `#[test]` that runs `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// One-stop imports (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, boxed, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        AnyStrategy, Arbitrary, Just, ProptestConfig, Strategy, TestRng, Union,
    };
    /// `prop::...` path alias used by some proptest idioms.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let v = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let w = (3usize..=4).generate(&mut rng);
            assert!((3..=4).contains(&w));
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a: i64 = any::<i64>().generate(&mut TestRng::for_case("x", 7));
        let b: i64 = any::<i64>().generate(&mut TestRng::for_case("x", 7));
        let c: i64 = any::<i64>().generate(&mut TestRng::for_case("x", 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = TestRng::for_case("oneof", 1);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_strategy_lengths() {
        let s = collection::vec(0usize..5, 1..4);
        let mut rng = TestRng::for_case("vec", 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        /// The macro itself works end-to-end.
        #[test]
        fn macro_roundtrip(a in 0u64..100, v in collection::vec(0usize..3, 1..5)) {
            prop_assert!(a < 100);
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
