//! No-op `Serialize` / `Deserialize` derives.
//!
//! The vendored `serde` crate's traits have blanket impls, so the derive
//! has nothing to generate — it only needs to exist (and to accept
//! `#[serde(...)]` attributes) for `#[derive(Serialize, Deserialize)]`
//! annotations across the workspace to compile offline.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` has a blanket impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` has a blanket impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
