//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: a seedable
//! [`rngs::StdRng`], the [`Rng`] extension methods (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom`] (`shuffle` / `choose`).
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 of upstream `rand`, so streams differ from upstream, but all
//! repo code only relies on *determinism for a fixed seed*, which this
//! guarantees (and locks in: the generator is specified by this file, so
//! seeded results never shift under us the way upstream version bumps
//! could shift them).

/// Low-level entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (only the `seed_from_u64` entry point of the
/// upstream trait is provided — it is the only one the workspace uses).
pub trait SeedableRng: Sized {
    /// Deterministically derive a generator state from a `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty float range in gen_range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// The user-facing extension trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value of an inferred type (`f64` in [0,1), full-range
    /// integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in a range (half-open or inclusive).
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator: xoshiro256++ over a SplitMix64
    /// seed expansion. Statistically solid, `Clone`-able, and stable
    /// forever (it is defined by this file, not an external crate).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace treats `SmallRng` and `StdRng` identically.
    pub type SmallRng = StdRng;
}

/// Sequence helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and choosing (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (None when empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude for `use rand::prelude::*` call sites.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(-64i64..64);
            assert!((-64..64).contains(&x));
            let y = r.gen_range(1usize..=30);
            assert!((1..=30).contains(&y));
            let z = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>(), "20 elements should move");
    }
}
