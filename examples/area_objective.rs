//! Optimize for circuit *area* instead of speed — the §5.1 alternative
//! objective ("the reward could be defined as the negative of the area"),
//! plus a weighted speed/area trade-off sweep.
//!
//! ```sh
//! cargo run --release --example area_objective [benchmark-name]
//! ```

use autophase::core::env::{sequence_cycles, EnvConfig, Objective, PhaseOrderEnv};
use autophase::hls::{profile::profile_module, HlsConfig};
use autophase::rl::env::Environment;
use autophase::search::{greedy, Objective as SearchObjective};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "aes".to_string());
    let program = autophase::benchmarks::suite::by_name(&name).expect("known benchmark name");
    let hls = HlsConfig::default();

    let stats = |m: &autophase::ir::Module| {
        let r = profile_module(m, &hls).expect("profiles");
        (r.cycles, r.area.total())
    };
    let (c0, a0) = stats(&program);
    println!("`{name}` unoptimized: {c0} cycles, {a0} area units\n");

    // Greedy search under three different objectives.
    for (label, objective) in [
        ("min cycles", Objective::Cycles),
        ("min area", Objective::Area),
        (
            "weighted 50/50",
            Objective::Weighted {
                cycle_weight: 1.0,
                area_weight: (c0 as f64) / (a0 as f64), // balance the scales
            },
        ),
    ] {
        let cfg = EnvConfig {
            objective,
            ..EnvConfig::default()
        };
        let mut obj = SearchObjective::new(|seq: &[usize]| {
            // Re-evaluate the chosen objective for a whole sequence.
            let mut env = PhaseOrderEnv::single(program.clone(), cfg.clone());
            env.reset();
            for &p in seq {
                env.step(p);
            }
            env.last_cycles() as f64
        });
        let r = greedy::search(&mut obj, 45, 10, 400, None);
        // Report both metrics for the found ordering.
        let mut m = program.clone();
        autophase::passes::registry::apply_sequence(&mut m, &r.best_sequence);
        let (c, a) = stats(&m);
        let seq_names: Vec<&str> = r
            .best_sequence
            .iter()
            .map(|&p| autophase::passes::registry::pass_name(p))
            .collect();
        println!(
            "{label:<16} → {c:>6} cycles ({:+5.1}%), {a:>6} area ({:+5.1}%)",
            (c0 as f64 - c as f64) / c0 as f64 * 100.0,
            (a0 as f64 - a as f64) / a0 as f64 * 100.0,
        );
        println!("                 ordering: {}\n", seq_names.join(" "));
    }
    let _ = sequence_cycles(&program, &[], &hls);
}
