//! Quickstart: build a program, estimate its circuit speed, apply passes,
//! and watch the cycle count drop.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use autophase::hls::{profile::profile_module, HlsConfig};
use autophase::ir::builder::FunctionBuilder;
use autophase::ir::{BinOp, Module, Type, Value};
use autophase::passes::registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dot-product kernel, written the way a C frontend would emit it:
    // locals behind allocas, a top-tested loop.
    let mut module = Module::new("quickstart");
    let mut b = FunctionBuilder::new("main", vec![], Type::I32);
    let xs = b.alloca(Type::I32, 32);
    let ys = b.alloca(Type::I32, 32);
    b.counted_loop(Value::i32(32), |b, i| {
        let px = b.gep(xs, i);
        b.store(px, i);
        let doubled = b.binary(BinOp::Mul, i, Value::i32(2));
        let py = b.gep(ys, i);
        b.store(py, doubled);
    });
    let acc = b.alloca(Type::I32, 1);
    b.store(acc, Value::i32(0));
    b.counted_loop(Value::i32(32), |b, i| {
        let px = b.gep(xs, i);
        let x = b.load(Type::I32, px);
        let py = b.gep(ys, i);
        let y = b.load(Type::I32, py);
        let prod = b.binary(BinOp::Mul, x, y);
        let cur = b.load(Type::I32, acc);
        let next = b.binary(BinOp::Add, cur, prod);
        b.store(acc, next);
    });
    let result = b.load(Type::I32, acc);
    b.ret(Some(result));
    module.add_function(b.finish());

    // Baseline circuit estimate at 200 MHz (the paper's constraint).
    let hls = HlsConfig::default();
    let before = profile_module(&module, &hls)?;
    println!(
        "unoptimized: {} cycles ({} FSM states), returns {:?}",
        before.cycles, before.total_states, before.return_value
    );

    // Apply a hand-picked ordering: -mem2reg, -loop-rotate, -instcombine,
    // -simplifycfg (Table-1 indices 38, 23, 30, 31).
    for pass in [38usize, 23, 30, 31] {
        let changed = registry::apply(&mut module, pass);
        println!(
            "applied {:<14} changed={}",
            registry::pass_name(pass),
            changed
        );
    }

    let after = profile_module(&module, &hls)?;
    println!(
        "optimized:   {} cycles ({} FSM states), returns {:?}",
        after.cycles, after.total_states, after.return_value
    );
    println!(
        "speedup: {:.2}x (behaviour identical: {})",
        before.cycles as f64 / after.cycles as f64,
        before.return_value == after.return_value
    );
    Ok(())
}
