//! Tune a CHStone-style benchmark with every strategy and compare:
//! -O0, -O3, insertion greedy, the OpenTuner-style ensemble, and a PPO
//! agent — the workflow of the paper's Figure 7 for one program.
//!
//! ```sh
//! cargo run --release --example tune_benchmark [benchmark-name]
//! ```

use autophase::core::algorithms::{run_algorithm, Algorithm, Budget};
use autophase::hls::HlsConfig;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gsm".to_string());
    let program = autophase::benchmarks::suite::by_name(&name).unwrap_or_else(|| {
        panic!(
            "unknown benchmark {name}; try adpcm/aes/blowfish/dhrystone/gsm/matmul/mpeg2/qsort/sha"
        )
    });
    let hls = HlsConfig::default();
    let budget = Budget::default();

    println!("tuning `{name}` at 200 MHz\n");
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "algorithm", "cycles", "vs -O3", "samples"
    );
    for alg in [
        Algorithm::O0,
        Algorithm::O3,
        Algorithm::Greedy,
        Algorithm::OpenTuner,
        Algorithm::RlPpo2,
    ] {
        let r = run_algorithm(alg, &program, &budget, &hls, 1);
        println!(
            "{:<14} {:>10} {:>9.1}% {:>10}",
            alg.name(),
            r.cycles,
            r.improvement_over_o3 * 100.0,
            r.samples
        );
    }
}
