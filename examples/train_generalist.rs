//! Train a generalist PPO agent on random programs and apply it, one
//! compilation per program, to the real benchmark suite — the paper's
//! §6.2 generalization workflow in miniature.
//!
//! ```sh
//! cargo run --release --example train_generalist
//! ```

use autophase::core::env::{o3_cycles, FeatureNorm};
use autophase::core::experiment::{infer_sequence, train_generalist};
use autophase::hls::HlsConfig;
use autophase::progen::{program_batch, GenConfig};

fn main() {
    let hls = HlsConfig::default();

    println!("generating training programs (CSmith stand-in)…");
    let train = program_batch(&GenConfig::default(), 2024, 8);

    println!("training filtered-norm2 PPO generalist…");
    let (agent, env_cfg) = train_generalist(&train, FeatureNorm::InstCount, true, 6, 7);

    println!("\none-shot inference on the nine benchmarks:");
    println!(
        "{:<12} {:>10} {:>10} {:>8}  sequence",
        "benchmark", "-O3", "agent", "vs -O3"
    );
    let mut total = 0.0;
    let suite = autophase::benchmarks::suite();
    let n = suite.len();
    for b in suite {
        let o3 = o3_cycles(&b.module, &hls);
        let (seq, cycles) = infer_sequence(&agent, &env_cfg, &b.module);
        let imp = (o3 as f64 - cycles as f64) / o3 as f64;
        total += imp;
        let names: Vec<&str> = seq
            .iter()
            .take(6)
            .map(|&p| autophase::passes::registry::pass_name(p))
            .collect();
        println!(
            "{:<12} {:>10} {:>10} {:>7.1}%  {}…",
            b.name,
            o3,
            cycles,
            imp * 100.0,
            names.join(" ")
        );
    }
    println!(
        "\nmean improvement over -O3: {:+.1}%",
        total / n as f64 * 100.0
    );
}
