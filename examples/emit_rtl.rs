//! Compile a benchmark all the way to Verilog RTL, before and after
//! optimization, and show how the FSM shrinks — the LegUp-style back end
//! of the AutoPhase flow.
//!
//! ```sh
//! cargo run --example emit_rtl [benchmark-name]
//! ```

use autophase::hls::{profile::profile_module, rtl, HlsConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "matmul".to_string());
    let module = autophase::benchmarks::suite::by_name(&name).ok_or("unknown benchmark name")?;
    let hls = HlsConfig::default();

    let report = profile_module(&module, &hls)?;
    let verilog = rtl::emit_module(&module, &hls);
    println!(
        "`{name}` unoptimized: {} cycles, {} FSM states, {} lines of RTL",
        report.cycles,
        report.total_states,
        verilog.lines().count()
    );

    let mut optimized = module.clone();
    autophase::passes::o3::o3(&mut optimized);
    let report2 = profile_module(&optimized, &hls)?;
    let verilog2 = rtl::emit_module(&optimized, &hls);
    println!(
        "`{name}` after -O3: {} cycles, {} FSM states, {} lines of RTL",
        report2.cycles,
        report2.total_states,
        verilog2.lines().count()
    );
    println!(
        "area estimate: {} → {} units\n",
        report.area.total(),
        report2.area.total()
    );

    println!("--- first 40 lines of the optimized design ---");
    for line in verilog2.lines().take(40) {
        println!("{line}");
    }
    Ok(())
}
