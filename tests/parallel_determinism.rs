//! Determinism guarantees of the parallel rollout engine and the
//! evaluation cache (tier 1).
//!
//! The contract this suite pins down:
//!
//! 1. **Worker-count invariance** — collecting episodes on 1, 2, or 3
//!    worker environments produces bit-identical batches, because
//!    collection is episode-indexed: episode `i` always runs on a fresh
//!    reset with an RNG stream derived from `(seed, i)` alone.
//! 2. **Cache transparency** — attaching an [`EvalCache`] changes how
//!    often the profiler runs, never what any caller observes: rewards,
//!    observations, cycle counts, and trained agents are identical with
//!    and without it.
//! 3. **Thread safety** — hammering one cache from several threads loses
//!    no updates and never yields a value that was not inserted for that
//!    exact key.

use autophase::core::env::{EnvConfig, FeatureNorm, ObservationKind, PhaseOrderEnv, RewardKind};
use autophase::core::multi::{MultiActionAgent, MultiConfig};
use autophase::core::{CacheEntry, CacheKey, EvalCache};
use autophase::hls::HlsConfig;
use autophase::progen::{program_batch, GenConfig};
use autophase::rl::env::Environment;
use autophase::rl::ppo::{PpoAgent, PpoConfig};
use autophase::rl::rollout::{self, Batch};
use std::sync::Arc;

const EPISODE_LEN: usize = 8;

fn env_config() -> EnvConfig {
    EnvConfig {
        observation: ObservationKind::Combined,
        feature_norm: FeatureNorm::InstCount,
        reward: RewardKind::Log,
        episode_len: EPISODE_LEN,
        filtered_features: true,
        filtered_passes: true,
        ..EnvConfig::default()
    }
}

fn programs() -> Vec<autophase::ir::Module> {
    program_batch(&GenConfig::default(), 77, 2)
}

fn fresh_agent(env: &PhaseOrderEnv) -> PpoAgent {
    let cfg = PpoConfig {
        hidden: vec![16, 16],
        max_episode_len: EPISODE_LEN,
        ..PpoConfig::default()
    };
    PpoAgent::new(env.observation_dim(), env.num_actions(), &cfg, 3)
}

fn assert_batches_identical(a: &Batch, b: &Batch, what: &str) {
    assert_eq!(a.episode_returns, b.episode_returns, "{what}: returns");
    assert_eq!(a.transitions.len(), b.transitions.len(), "{what}: length");
    for (i, (x, y)) in a.transitions.iter().zip(&b.transitions).enumerate() {
        assert_eq!(x.obs, y.obs, "{what}: obs of transition {i}");
        assert_eq!(x.action, y.action, "{what}: action of transition {i}");
        assert_eq!(x.reward, y.reward, "{what}: reward of transition {i}");
        assert_eq!(x.logp, y.logp, "{what}: logp of transition {i}");
        assert_eq!(x.value, y.value, "{what}: value of transition {i}");
        assert_eq!(x.done, y.done, "{what}: done of transition {i}");
    }
}

/// Serial and parallel collection agree transition-for-transition on the
/// real phase-ordering environment, for several worker counts.
#[test]
fn parallel_rollout_matches_serial_on_phase_env() {
    let ps = programs();
    let mut serial_env = PhaseOrderEnv::new(ps.clone(), env_config());
    let agent = fresh_agent(&serial_env);
    let n_episodes = 6;
    let reference = rollout::collect_episodes(
        &mut serial_env,
        &agent.policy,
        &agent.value,
        n_episodes,
        0,
        EPISODE_LEN,
        41,
    );
    assert_eq!(reference.episode_returns.len(), n_episodes);

    for workers in [1usize, 2, 3] {
        let mut envs: Vec<Box<dyn Environment + Send>> = (0..workers)
            .map(|_| {
                Box::new(PhaseOrderEnv::new(ps.clone(), env_config()))
                    as Box<dyn Environment + Send>
            })
            .collect();
        let batch = rollout::collect_episodes_parallel(
            &mut envs,
            &agent.policy,
            &agent.value,
            n_episodes,
            0,
            EPISODE_LEN,
            41,
        );
        assert_batches_identical(&reference, &batch, &format!("{workers} workers"));
    }
}

/// The cache changes profiler traffic, not results: cached workers
/// produce the same batch as uncached ones, while provably skipping
/// compilations.
#[test]
fn cached_rollout_matches_uncached() {
    let ps = programs();
    // Full-recompute configuration on both sides: the incremental layer
    // (DESIGN.md §4f) skips profiler runs on its own, which would blur
    // the books this test keeps on the *shared* cache. Its equivalence
    // gates live in `incremental_diff.rs` and `rollout_bench`.
    let cfg = EnvConfig {
        incremental: false,
        ..env_config()
    };
    let mut plain_env = PhaseOrderEnv::new(ps.clone(), cfg.clone());
    let agent = fresh_agent(&plain_env);
    let n_episodes = 8;
    let collect = |env: &mut PhaseOrderEnv| -> Batch {
        rollout::collect_episodes(
            env,
            &agent.policy,
            &agent.value,
            n_episodes,
            0,
            EPISODE_LEN,
            99,
        )
    };
    let reference = collect(&mut plain_env);

    let cache = Arc::new(EvalCache::default());
    let mut cached_env = PhaseOrderEnv::with_cache(ps, cfg, Arc::clone(&cache));
    let batch = collect(&mut cached_env);

    assert_batches_identical(&reference, &batch, "cached vs uncached");
    assert!(
        cached_env.samples() < plain_env.samples(),
        "cache saved no profiler runs ({} vs {})",
        cached_env.samples(),
        plain_env.samples()
    );
    assert_eq!(
        cached_env.samples() + cache.hits(),
        plain_env.samples(),
        "every skipped profile must be a cache hit"
    );
}

/// Same-seed environments replayed step-for-step report identical cycle
/// counts with and without a cache, and training the §5.2 multi-action
/// agent through the cache reproduces the uncached result exactly.
#[test]
fn cached_cycles_and_training_are_identical() {
    let program = programs().remove(0);
    let hls = HlsConfig::default();
    let seq = [23usize, 33, 10, 0, 15, 38];

    let plain = autophase::core::env::sequence_cycles(&program, &seq, &hls);
    let cache = EvalCache::default();
    let fp = autophase::core::eval_cache::fingerprint_module(&program);
    for _ in 0..3 {
        let cached = autophase::core::env::sequence_cycles_cached(&program, fp, &seq, &hls, &cache);
        assert_eq!(plain, cached);
    }
    assert!(cache.hits() >= 2, "repeat evaluations should hit");

    let cfg = MultiConfig {
        seq_len: 5,
        episode_len: 2,
        episodes_per_iter: 2,
        ..MultiConfig::default()
    };
    let mut a = MultiActionAgent::new(&cfg, 5);
    let uncached = a.train(&program, &hls, 2);
    let cache = EvalCache::default();
    let mut b = MultiActionAgent::new(&cfg, 5);
    let cached = b.train_cached(&program, &hls, 2, &cache);
    assert_eq!(uncached, cached, "train_cached diverged from train");
    assert!(b.samples() < a.samples(), "cache saved no compilations");
}

/// Concurrent mixed insert/get traffic: no lost updates, no cross-key
/// leakage, and the cache stays within its capacity bound.
#[test]
fn concurrent_cache_stress() {
    let cache = Arc::new(EvalCache::with_shards(256, 8));
    let threads = 4;
    let keys_per_thread = 200u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for i in 0..keys_per_thread {
                    // Half the keys are shared across threads, half private.
                    let shared = i % 2 == 0;
                    let program = if shared { i } else { t * 10_000 + i };
                    let key = CacheKey { program, seq: i };
                    let entry = CacheEntry {
                        module_fingerprint: program,
                        features: [program as i64; autophase::features::NUM_FEATURES],
                        cycles: program * 3 + 1,
                        area: Default::default(),
                        total_states: i,
                        insts_executed: i,
                        return_value: Some(program as i64),
                    };
                    cache.insert(key, entry);
                    // Whatever we read back (ours or a racing twin for the
                    // shared key) must carry that exact key's payload.
                    if let Some(e) = cache.get(&key) {
                        assert_eq!(e.cycles, e.module_fingerprint * 3 + 1);
                        if shared {
                            assert_eq!(e.module_fingerprint, program);
                        }
                    }
                }
            });
        }
    });
    assert!(
        cache.len() <= 256,
        "capacity bound violated: {}",
        cache.len()
    );
    let stats = cache.stats();
    assert_eq!(stats.len, cache.len());
    assert!(stats.hits + stats.misses > 0);
}
