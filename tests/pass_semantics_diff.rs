//! Differential testing of every registered pass (tier 1).
//!
//! Where `tests/semantics.rs` samples random pass *sequences*, this suite
//! systematically covers each of the 45 Table-1 passes in isolation, on a
//! corpus of generated programs, in two module states:
//!
//! * **pristine** — the pass is the first thing that touches the program;
//! * **warmed** — the pass runs after a canonicalizing prefix, so passes
//!   whose interesting behaviour only triggers on pre-optimized IR (e.g.
//!   cleanups that need `-mem2reg` to have run) are exercised too.
//!
//! For every `(program, state, pass)` triple the oracle is differential:
//! the interpreter's observable output must be identical before and after
//! the pass, the verifier must accept the transformed module, and the
//! pass's change flag must be honest — `apply() == false` must mean the
//! printed IR is byte-for-byte unchanged. These are exactly the
//! assumptions the evaluation cache builds on (a no-op pass shares its
//! predecessor's cache entry; see `crates/core/src/eval_cache.rs`).

use autophase::ir::interp::run_main;
use autophase::ir::printer::print_module;
use autophase::ir::verify::verify_module;
use autophase::ir::Module;
use autophase::passes::registry::{self, NUM_PASSES, TERMINATE};
use autophase::progen::{generate_valid, GenConfig};

const FUEL: u64 = 4_000_000;

/// Deterministic program corpus. Seeds are arbitrary but fixed so a
/// failure names a reproducible program.
const CORPUS_SEEDS: [u64; 5] = [11, 94, 233, 1042, 4711];

/// A short canonicalizing prefix for the "warmed" state: promote memory,
/// simplify, then fold — the openers most real orderings start with.
const WARM_PREFIX: [usize; 3] = [23, 33, 10];

fn corpus() -> Vec<(u64, Module)> {
    let cfg = GenConfig::default();
    CORPUS_SEEDS
        .iter()
        .map(|&s| (s, generate_valid(&cfg, s)))
        .collect()
}

fn warmed(m: &Module) -> Module {
    let mut w = m.clone();
    for &p in &WARM_PREFIX {
        registry::apply(&mut w, p);
    }
    w
}

/// Apply one pass to one module state and check the full differential
/// contract.
fn check_pass(label: &str, seed: u64, pass: usize, m0: &Module) {
    let expect = run_main(m0, FUEL)
        .unwrap_or_else(|e| panic!("{label} seed {seed}: baseline failed: {e}"))
        .observable();
    let before = print_module(m0);

    let mut m = m0.clone();
    let changed = registry::apply(&mut m, pass);
    let name = registry::pass_name(pass);

    if let Err(e) = verify_module(&m) {
        panic!("{label} seed {seed}: verifier rejects IR after {name}: {e}");
    }
    let got = run_main(&m, FUEL)
        .unwrap_or_else(|e| panic!("{label} seed {seed}: {name} broke execution: {e}"))
        .observable();
    assert_eq!(
        got, expect,
        "{label} seed {seed}: {name} changed the observable output"
    );

    let after = print_module(&m);
    if changed {
        assert_ne!(
            before, after,
            "{label} seed {seed}: {name} reported a change but printed IR is identical"
        );
    } else {
        assert_eq!(
            before, after,
            "{label} seed {seed}: {name} reported no change but mutated the module"
        );
    }
}

#[test]
fn registry_covers_the_papers_45_passes() {
    assert_eq!(NUM_PASSES, 45, "Table 1 lists 45 passes");
    assert_eq!(registry::pass_count(), NUM_PASSES + 1); // + -terminate
                                                        // Every pass has a printable name; the only duplicate is
                                                        // `-functionattrs`, which Table 1 itself lists twice (indices 19
                                                        // and 40).
    let names: Vec<&str> = (0..NUM_PASSES).map(registry::pass_name).collect();
    assert!(names.iter().all(|n| n.starts_with('-')), "{names:?}");
    let mut dedup = names.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len() - 1, "duplicates: {names:?}");
    assert_eq!(registry::pass_name(19), "-functionattrs");
    assert_eq!(registry::pass_name(40), "-functionattrs");
}

#[test]
fn every_pass_is_sound_on_pristine_programs() {
    for (seed, m) in corpus() {
        for pass in 0..NUM_PASSES {
            check_pass("pristine", seed, pass, &m);
        }
    }
}

#[test]
fn every_pass_is_sound_on_warmed_programs() {
    for (seed, m) in corpus() {
        let w = warmed(&m);
        for pass in 0..NUM_PASSES {
            check_pass("warmed", seed, pass, &w);
        }
    }
}

#[test]
fn terminate_is_a_structural_noop() {
    for (seed, m) in corpus() {
        let before = print_module(&m);
        let mut t = m.clone();
        let changed = registry::apply(&mut t, TERMINATE);
        assert!(!changed, "seed {seed}: -terminate reported a change");
        assert_eq!(
            before,
            print_module(&t),
            "seed {seed}: -terminate mutated the module"
        );
    }
}

#[test]
fn change_flag_is_stable_under_repetition() {
    // A pass that just ran to a fixed point and reports "no change" must
    // keep reporting "no change" (the environment's cache key relies on
    // no-ops being absorbing).
    for (seed, m) in corpus().into_iter().take(2) {
        for pass in 0..NUM_PASSES {
            let mut x = m.clone();
            // Run to fixed point (bounded — passes must not oscillate).
            let mut budget = 16;
            while registry::apply(&mut x, pass) && budget > 0 {
                budget -= 1;
            }
            assert!(
                budget > 0,
                "seed {seed}: {} never reached a fixed point",
                registry::pass_name(pass)
            );
            let before = print_module(&x);
            assert!(
                !registry::apply(&mut x, pass),
                "seed {seed}: {} changed again after reporting a fixed point",
                registry::pass_name(pass)
            );
            assert_eq!(before, print_module(&x));
        }
    }
}
