//! Shape-level checks of the paper's qualitative claims, on our simulated
//! substrate (EXPERIMENTS.md records the quantitative side).

use autophase::core::env::sequence_cycles;
use autophase::hls::HlsConfig;
use autophase::ir::Module;

fn cycles(p: &Module, seq: &[usize]) -> u64 {
    sequence_cycles(p, seq, &HlsConfig::default())
}

/// §4.2: "-loop-rotate is very helpful and should be included if not
/// applied before" — on mem2reg'd benchmarks, adding -loop-rotate helps.
#[test]
fn loop_rotate_helps_after_mem2reg() {
    let mut helped = 0;
    let mut total = 0;
    for b in autophase::benchmarks::suite() {
        let base = cycles(&b.module, &[38]); // -mem2reg
        let rotated = cycles(&b.module, &[38, 23]); // + -loop-rotate
        total += 1;
        if rotated < base {
            helped += 1;
        }
        assert!(
            rotated <= base,
            "{}: rotate hurt ({} -> {})",
            b.name,
            base,
            rotated
        );
    }
    assert!(helped * 2 >= total, "rotate helped only {helped}/{total}");
}

/// §4.2: "applying pass 33 (-loop-unroll) after pass 23 (-loop-rotate)
/// was much more useful compared to applying these two passes in the
/// opposite order."
#[test]
fn unroll_after_rotate_beats_opposite_order() {
    let mut rotate_first_better = 0;
    let mut opposite_better = 0;
    for b in autophase::benchmarks::suite() {
        let ru = cycles(&b.module, &[38, 29, 23, 33]); // rotate then unroll
        let ur = cycles(&b.module, &[38, 29, 33, 23]); // unroll then rotate
        if ru < ur {
            rotate_first_better += 1;
        } else if ur < ru {
            opposite_better += 1;
        }
    }
    assert!(
        rotate_first_better > opposite_better,
        "rotate→unroll better on {rotate_first_better}, opposite on {opposite_better}"
    );
}

/// §2.1/§6.1: the Figure-1/2/3 interaction — inlining plus
/// -functionattrs lets LICM hoist a pure helper call out of a loop.
#[test]
fn inline_enables_licm_on_call_heavy_code() {
    use autophase::ir::builder::FunctionBuilder;
    use autophase::ir::{BinOp, Type, Value};
    // The paper's norm(): a loop calling a pure helper with loop-invariant
    // arguments.
    let mut m = Module::new("norm_example");
    let mag = {
        let mut b = FunctionBuilder::new("mag", vec![Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(0), |b, i| {
            let sq = b.binary(BinOp::Mul, i, i);
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, sq);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        m.add_function(b.finish())
    };
    let mut b = FunctionBuilder::new("main", vec![], Type::I32);
    let out = b.alloca(Type::I32, 16);
    b.counted_loop(Value::i32(16), |b, i| {
        let denom = b.call(mag, Type::I32, vec![Value::i32(16)]); // invariant!
        let scaled = b.binary(BinOp::Mul, i, Value::i32(1000));
        let v = b.binary(BinOp::SDiv, scaled, denom);
        let p = b.gep(out, i);
        b.store(p, v);
    });
    let acc = b.alloca(Type::I32, 1);
    b.store(acc, Value::i32(0));
    b.counted_loop(Value::i32(16), |b, i| {
        let p = b.gep(out, i);
        let v = b.load(Type::I32, p);
        let c = b.load(Type::I32, acc);
        let n = b.binary(BinOp::Add, c, v);
        b.store(acc, n);
    });
    let r = b.load(Type::I32, acc);
    b.ret(Some(r));
    m.add_function(b.finish());

    let hls = HlsConfig::default();
    let baseline = sequence_cycles(&m, &[], &hls);
    // functionattrs (19) marks mag readnone → licm (36) hoists the call
    // (after loop-simplify 29).
    let licm_only = sequence_cycles(&m, &[29, 36], &hls);
    let attrs_then_licm = sequence_cycles(&m, &[19, 29, 36], &hls);
    assert!(
        attrs_then_licm < baseline,
        "attrs+licm must beat baseline: {attrs_then_licm} vs {baseline}"
    );
    assert!(
        attrs_then_licm < licm_only,
        "licm without functionattrs cannot hoist the call: {attrs_then_licm} vs {licm_only}"
    );
}

/// §3.2: the profiler tracks the frequency constraint — lower target
/// frequencies yield equal-or-better cycle counts (more chaining).
#[test]
fn lower_frequency_never_increases_cycles() {
    use autophase::hls::profile::cycle_count;
    for b in autophase::benchmarks::suite() {
        let at200 = cycle_count(&b.module, &HlsConfig::at_frequency_mhz(200.0)).unwrap();
        let at100 = cycle_count(&b.module, &HlsConfig::at_frequency_mhz(100.0)).unwrap();
        assert!(
            at100 <= at200,
            "{}: 100 MHz ({at100}) worse than 200 MHz ({at200})",
            b.name
        );
    }
}

/// §5.1: the search space is enormous — sanity-check the arithmetic the
/// paper quotes (2^247 ≈ 45^45 orderings for 45 passes of length 45).
#[test]
fn search_space_matches_paper_math() {
    let bits = 45.0f64.log2() * 45.0;
    assert!(bits > 247.0 && bits < 248.0, "45^45 = 2^{bits:.1}");
}

/// Table 1 / Table 2 cardinalities.
#[test]
fn action_and_feature_spaces_match_paper() {
    assert_eq!(autophase::passes::registry::NUM_PASSES, 45);
    assert_eq!(autophase::passes::registry::PASS_NAMES.len(), 46); // + -terminate
    assert_eq!(autophase::features::NUM_FEATURES, 56);
}

/// `-O0` vs `-O3`: the paper's Figure 7 shows -O0 at −23%; ours must at
/// least be distinctly negative across the suite.
#[test]
fn o0_is_markedly_worse_than_o3() {
    use autophase::core::env::{o0_cycles, o3_cycles};
    let hls = HlsConfig::default();
    let mut total = 0.0;
    let suite = autophase::benchmarks::suite();
    let n = suite.len() as f64;
    for b in suite {
        let o0 = o0_cycles(&b.module, &hls) as f64;
        let o3 = o3_cycles(&b.module, &hls) as f64;
        total += (o3 - o0) / o3;
    }
    let mean = total / n;
    assert!(mean < -0.15, "O0 only {:.1}% worse than O3", mean * 100.0);
}
