//! Cross-crate integration: the full AutoPhase flow from program to
//! trained agent to measured circuit, in miniature.

use autophase::core::algorithms::{run_algorithm, Algorithm, Budget};
use autophase::core::env::{o0_cycles, o3_cycles, EnvConfig, ObservationKind, PhaseOrderEnv};
use autophase::hls::{profile::profile_module, HlsConfig};
use autophase::rl::env::Environment;
use autophase::rl::ppo::{PpoAgent, PpoConfig};

#[test]
fn o3_beats_o0_on_every_benchmark() {
    let hls = HlsConfig::default();
    for b in autophase::benchmarks::suite() {
        let o0 = o0_cycles(&b.module, &hls);
        let o3 = o3_cycles(&b.module, &hls);
        assert!(o3 < o0, "{}: -O3 ({o3}) must beat -O0 ({o0})", b.name);
    }
}

#[test]
fn rl_environment_full_episode_on_benchmark() {
    let program = autophase::benchmarks::suite::by_name("matmul").unwrap();
    let cfg = EnvConfig {
        episode_len: 10,
        observation: ObservationKind::Combined,
        ..EnvConfig::default()
    };
    let mut env = PhaseOrderEnv::single(program, cfg);
    let mut obs = env.reset();
    let mut total_reward = 0.0;
    let mut agent = PpoAgent::new(
        env.observation_dim(),
        env.num_actions(),
        &PpoConfig::small(),
        3,
    );
    loop {
        let a = agent.act_sample(&obs);
        let r = env.step(a);
        total_reward += r.reward;
        obs = r.observation;
        if r.done {
            break;
        }
    }
    assert!(total_reward.is_finite());
    // The episode left the module in a verified, runnable state.
    autophase::ir::verify::verify_module(env.module()).unwrap();
    profile_module(env.module(), &HlsConfig::default()).unwrap();
}

#[test]
fn trained_ppo_beats_random_policy_on_gsm() {
    let program = autophase::benchmarks::suite::by_name("gsm").unwrap();
    let hls = HlsConfig::default();
    let budget = Budget {
        rl_iterations: 6,
        rl_horizon: 36,
        episode_len: 12,
        ..Budget::tiny()
    };
    // Seed 5 gives the trained agent a clear margin over the control at
    // this miniature budget (the control also explores and keeps its best
    // find, so a seed where learning barely edges luck is a coin-flip;
    // seeds 3 and 5 are robust across 6–10 iterations).
    let trained = run_algorithm(Algorithm::RlPpo2, &program, &budget, &hls, 5);
    // Zero-reward control with the same budget.
    let control = run_algorithm(Algorithm::RlPpo1, &program, &budget, &hls, 5);
    // Both explore, so both find something; the trained agent should not
    // be worse (and usually is strictly better).
    assert!(
        trained.cycles <= control.cycles,
        "reward-driven PPO ({}) lost to zero-reward control ({})",
        trained.cycles,
        control.cycles
    );
}

#[test]
fn greedy_matches_exhaustive_on_restricted_space() {
    // On a 3-pass candidate set with length-2 sequences, compare greedy
    // against brute force.
    use autophase::core::env::sequence_cycles;
    use autophase::search::{greedy, Objective};
    let program = autophase::benchmarks::suite::by_name("gsm").unwrap();
    let hls = HlsConfig::default();
    let candidates = [38usize, 23, 31]; // mem2reg, loop-rotate, simplifycfg

    // Brute force over all sequences of length ≤ 2 from the candidate set.
    let mut best = u64::MAX;
    for &a in &candidates {
        best = best.min(sequence_cycles(&program, &[a], &hls));
        for &b in &candidates {
            best = best.min(sequence_cycles(&program, &[a, b], &hls));
        }
    }

    let mut obj = Objective::new(|seq: &[usize]| sequence_cycles(&program, seq, &hls) as f64);
    let r = greedy::search(&mut obj, 45, 2, 10_000, Some(&candidates));
    assert!(
        (r.best_cost as u64) <= best,
        "greedy ({}) worse than exhaustive ({best})",
        r.best_cost
    );
}

#[test]
fn multi_action_agent_runs_on_benchmark() {
    use autophase::core::multi::{MultiActionAgent, MultiConfig};
    let program = autophase::benchmarks::suite::by_name("mpeg2").unwrap();
    let hls = HlsConfig::default();
    let cfg = MultiConfig {
        seq_len: 8,
        episode_len: 4,
        episodes_per_iter: 1,
        ..MultiConfig::default()
    };
    let mut agent = MultiActionAgent::new(&cfg, 2);
    let (seq, cycles) = agent.train(&program, &hls, 2);
    assert_eq!(seq.len(), 8);
    assert!(cycles > 0);
}

#[test]
fn search_beats_o3_given_budget_on_some_benchmark() {
    // The paper's headline: good orderings beat -O3. With a modest budget
    // the ensemble tuner should find a better-than-O3 ordering on at
    // least one of two benchmarks.
    let hls = HlsConfig::default();
    let budget = Budget {
        opentuner_budget: 250,
        episode_len: 12,
        ..Budget::tiny()
    };
    let mut wins = 0;
    for name in ["gsm", "matmul"] {
        let p = autophase::benchmarks::suite::by_name(name).unwrap();
        let r = run_algorithm(Algorithm::OpenTuner, &p, &budget, &hls, 5);
        if r.improvement_over_o3 > 0.0 {
            wins += 1;
        }
    }
    assert!(wins >= 1, "no search beat -O3 on gsm or matmul");
}
