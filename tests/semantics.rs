//! The repository's central invariant, driven by property testing:
//! **every pass sequence applied to every program preserves behaviour and
//! structural well-formedness.**
//!
//! Programs come from the CSmith-style generator; sequences are arbitrary
//! words over the full Table-1 action space (including the no-ops and
//! `-terminate`). The oracle is the interpreter's observable result.

use autophase::ir::interp::run_main;
use autophase::ir::verify::verify_module;
use autophase::passes::registry;
use autophase::progen::{generate_valid, GenConfig};
use proptest::prelude::*;

const FUEL: u64 = 4_000_000;

proptest! {
    #![proptest_config(ProptestConfig {
        // 48 cases keep the debug-profile run quick; override with e.g.
        // `AUTOPHASE_PT_CASES=1000 cargo test --release --test semantics`
        // for a stress run.
        cases: std::env::var("AUTOPHASE_PT_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(48),
        .. ProptestConfig::default()
    })]

    /// Random program × random 12-pass sequence: verifies + same result.
    #[test]
    fn random_sequences_preserve_semantics(
        seed in 0u64..5000,
        seq in proptest::collection::vec(0usize..registry::pass_count(), 1..12),
    ) {
        let cfg = GenConfig::default();
        let m0 = generate_valid(&cfg, seed);
        let expect = run_main(&m0, FUEL).expect("valid program runs").observable();

        let mut m = m0.clone();
        for (i, &p) in seq.iter().enumerate() {
            registry::apply(&mut m, p);
            if let Err(e) = verify_module(&m) {
                panic!(
                    "seed {seed}: verifier failed after {:?} (step {i}, {}): {e}",
                    &seq[..=i],
                    registry::pass_name(p),
                );
            }
        }
        let got = run_main(&m, FUEL)
            .unwrap_or_else(|e| panic!("seed {seed}: {seq:?} made program fail: {e}"))
            .observable();
        prop_assert_eq!(got, expect, "seed {} seq {:?}", seed, seq);
    }

    /// Pass idempotence-ish sanity: applying the same pass twice is as
    /// safe as once (the RL agent repeats actions constantly).
    #[test]
    fn repeated_single_pass_safe(
        seed in 0u64..2000,
        pass in 0usize..registry::pass_count(),
        reps in 1usize..5,
    ) {
        let m0 = generate_valid(&GenConfig::default(), seed);
        let expect = run_main(&m0, FUEL).unwrap().observable();
        let mut m = m0;
        for _ in 0..reps {
            registry::apply(&mut m, pass);
        }
        verify_module(&m).unwrap();
        let got = run_main(&m, FUEL).unwrap().observable();
        prop_assert_eq!(got, expect);
    }

    /// The HLS profiler accepts every optimized form and cycle counts stay
    /// positive and sane.
    #[test]
    fn hls_profiles_all_optimized_forms(
        seed in 0u64..2000,
        seq in proptest::collection::vec(0usize..registry::pass_count(), 0..8),
    ) {
        use autophase::hls::{profile::profile_module, HlsConfig};
        let mut m = generate_valid(&GenConfig::default(), seed);
        for &p in &seq {
            registry::apply(&mut m, p);
        }
        let hls = HlsConfig::default();
        let report = profile_module(&m, &hls).expect("profiler accepts optimized module");
        prop_assert!(report.cycles > 0);
        prop_assert!(report.total_states >= 1);
        // A circuit can't finish in fewer states than dynamic blocks allow:
        // cycles at least the number of executed instructions / generous ILP.
        prop_assert!(report.cycles as f64 >= report.insts_executed as f64 / 16.0);
    }

    /// Feature extraction is consistent: per-class counts never exceed the
    /// total instruction count, and block-shape counts never exceed the
    /// block count.
    #[test]
    fn feature_vector_internally_consistent(
        seed in 0u64..2000,
        seq in proptest::collection::vec(0usize..registry::pass_count(), 0..6),
    ) {
        use autophase::features::extract;
        let mut m = generate_valid(&GenConfig::default(), seed);
        for &p in &seq {
            registry::apply(&mut m, p);
        }
        let f = extract(&m);
        let total = f[51];
        // All single-instruction-class features (25..=49) bounded by total.
        for (idx, &v) in f.iter().enumerate().take(50).skip(25) {
            prop_assert!(v <= total, "feature {} exceeds total", idx);
        }
        prop_assert!(f[52] <= total); // memory insts
        prop_assert_eq!(f[37] + f[45], f[52], "loads + stores = memory insts");
        let blocks = f[50];
        for idx in [0usize, 1, 2, 5, 6, 9, 10, 11, 12, 13, 29, 30] {
            prop_assert!(f[idx] <= blocks, "block feature {} exceeds blocks", idx);
        }
        prop_assert_eq!(f[11] + f[12] + f[13], blocks, "phi-shape partition covers blocks");
        prop_assert!(f[15] >= f[23], "branches include unconditional ones");
        prop_assert_eq!(f[54], f[14].max(f[54]).min(f[54])); // phi args total present
    }
}
