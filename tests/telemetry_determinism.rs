//! Telemetry is observational only (tier 1 guard for the telemetry
//! layer).
//!
//! PR 1's contract is that serial and parallel rollout collection are
//! bit-identical for any worker count. The telemetry layer instruments
//! those exact code paths (pass application, HLS profiling, the eval
//! cache, the rollout engine), so this suite proves the instrumentation
//! never feeds back into behaviour: batches collected with telemetry
//! enabled are bit-identical to batches collected with it disabled, and
//! the serial == parallel property holds in both states.
//!
//! The whole suite is one `#[test]`: the telemetry enable flag is global
//! to the process, so the on/off phases must run in a fixed order.

use autophase::core::env::{EnvConfig, FeatureNorm, ObservationKind, PhaseOrderEnv, RewardKind};
use autophase::core::EvalCache;
use autophase::progen::{program_batch, GenConfig};
use autophase::rl::env::Environment;
use autophase::rl::ppo::{PpoAgent, PpoConfig};
use autophase::rl::rollout::{self, Batch};
use autophase::telemetry;
use std::sync::Arc;

const EPISODE_LEN: usize = 8;
const N_EPISODES: usize = 6;
const SEED: u64 = 41;

fn env_config() -> EnvConfig {
    EnvConfig {
        observation: ObservationKind::Combined,
        feature_norm: FeatureNorm::InstCount,
        reward: RewardKind::Log,
        episode_len: EPISODE_LEN,
        filtered_features: true,
        filtered_passes: true,
        ..EnvConfig::default()
    }
}

fn assert_batches_identical(a: &Batch, b: &Batch, what: &str) {
    assert_eq!(a.episode_returns, b.episode_returns, "{what}: returns");
    assert_eq!(a.transitions.len(), b.transitions.len(), "{what}: length");
    for (i, (x, y)) in a.transitions.iter().zip(&b.transitions).enumerate() {
        assert_eq!(x.obs, y.obs, "{what}: obs of transition {i}");
        assert_eq!(x.action, y.action, "{what}: action of transition {i}");
        assert_eq!(x.reward, y.reward, "{what}: reward of transition {i}");
        assert_eq!(x.logp, y.logp, "{what}: logp of transition {i}");
        assert_eq!(x.value, y.value, "{what}: value of transition {i}");
        assert_eq!(x.done, y.done, "{what}: done of transition {i}");
    }
}

fn collect_serial(agent: &PpoAgent, programs: &[autophase::ir::Module]) -> Batch {
    let mut env = PhaseOrderEnv::new(programs.to_vec(), env_config());
    rollout::collect_episodes(
        &mut env,
        &agent.policy,
        &agent.value,
        N_EPISODES,
        0,
        EPISODE_LEN,
        SEED,
    )
}

fn collect_parallel(agent: &PpoAgent, programs: &[autophase::ir::Module], workers: usize) -> Batch {
    let cache = Arc::new(EvalCache::default());
    let mut envs: Vec<Box<dyn Environment + Send>> = (0..workers)
        .map(|_| {
            Box::new(PhaseOrderEnv::with_cache(
                programs.to_vec(),
                env_config(),
                Arc::clone(&cache),
            )) as Box<dyn Environment + Send>
        })
        .collect();
    rollout::collect_episodes_parallel(
        &mut envs,
        &agent.policy,
        &agent.value,
        N_EPISODES,
        0,
        EPISODE_LEN,
        SEED,
    )
}

#[test]
fn batches_are_bit_identical_with_telemetry_on_and_off() {
    let programs = program_batch(&GenConfig::default(), 55, 2);
    let probe = PhaseOrderEnv::new(programs.clone(), env_config());
    let cfg = PpoConfig {
        hidden: vec![16, 16],
        max_episode_len: EPISODE_LEN,
        ..PpoConfig::default()
    };
    let agent = PpoAgent::new(probe.observation_dim(), probe.num_actions(), &cfg, 13);

    // Reference: telemetry off, the exact pre-telemetry code path.
    telemetry::disable();
    let reference = collect_serial(&agent, &programs);

    // Telemetry on: serial and parallel (several worker counts) all match
    // the disabled-path reference bit for bit.
    telemetry::enable();
    let serial_on = collect_serial(&agent, &programs);
    assert_batches_identical(&reference, &serial_on, "serial, telemetry on vs off");
    for workers in [1usize, 2, 3] {
        let parallel_on = collect_parallel(&agent, &programs, workers);
        assert_batches_identical(
            &reference,
            &parallel_on,
            &format!("parallel x{workers}, telemetry on"),
        );
    }
    // And the instrumentation did actually record something meanwhile —
    // this is a telemetry test, not a telemetry no-op test.
    let snap = telemetry::snapshot();
    assert!(
        snap.counters
            .iter()
            .any(|c| c.name == "rollout.steps" && c.value > 0),
        "expected rollout.steps to have recorded"
    );
    assert!(
        snap.histograms
            .iter()
            .any(|h| h.name == "pass.apply_ns" && h.count > 0),
        "expected per-pass timing to have recorded"
    );

    // Back off: still identical (toggling leaves no residue).
    telemetry::disable();
    telemetry::reset();
    for workers in [1usize, 3] {
        let parallel_off = collect_parallel(&agent, &programs, workers);
        assert_batches_identical(
            &reference,
            &parallel_off,
            &format!("parallel x{workers}, telemetry off"),
        );
    }
    assert!(
        telemetry::span_events().is_empty(),
        "disabled runs must record no span events"
    );
}
