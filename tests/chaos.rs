//! Chaos suite: full evaluations driven through deterministic injected
//! faults (`--features fault-injection`; run via `make chaos`).
//!
//! The fault-isolation contract this suite pins down end to end:
//!
//! 1. **Rollback** — a faulted pass application (panic, IR corruption,
//!    fuel exhaustion) restores the verified pre-pass module and scores
//!    as a zero-reward no-op.
//! 2. **Survival** — a full PPO training run completes through a plan
//!    injecting faults into several distinct passes, and the
//!    `pass_fault_total` / `rollback_total` telemetry counters record
//!    every isolated fault.
//! 3. **Containment** — faults scoped to specific episodes leave every
//!    *other* episode bit-identical to a fault-free run, at any worker
//!    count, because injection is keyed to per-episode apply counters
//!    (never to thread scheduling or cache warmth).
//! 4. **Quarantine** — a chronic offender crosses the shared quarantine
//!    threshold mid-run and is masked out of the action space for that
//!    program, after which it can no longer fault.
//!
//! The fault plan is process-global, so every test here holds
//! [`fault::test_guard`] for its full duration.
#![cfg(feature = "fault-injection")]

use autophase::core::env::{
    apply_and_profile, EnvConfig, FeatureNorm, ObservationKind, PhaseOrderEnv, RewardKind,
};
use autophase::core::Quarantine;
use autophase::features::extract;
use autophase::hls::HlsConfig;
use autophase::ir::fingerprint::{fingerprint_function, fingerprint_module};
use autophase::ir::printer::print_module;
use autophase::ir::verify::verify_module;
use autophase::ir::Module;
use autophase::passes::checked::FaultKind;
use autophase::passes::fault::{self, FaultPlan, FaultSpec};
use autophase::passes::registry;
use autophase::progen::{program_batch, GenConfig};
use autophase::rl::env::Environment;
use autophase::rl::ppo::{PpoAgent, PpoConfig};
use autophase::rl::rollout::{self, Batch};
use autophase::telemetry;
use std::sync::Arc;

const EPISODE_LEN: usize = 8;

fn programs() -> Vec<Module> {
    program_batch(&GenConfig::default(), 77, 2)
}

fn env_config() -> EnvConfig {
    EnvConfig {
        observation: ObservationKind::Combined,
        feature_norm: FeatureNorm::InstCount,
        reward: RewardKind::Log,
        episode_len: EPISODE_LEN,
        filtered_features: true,
        ..EnvConfig::default()
    }
}

fn assert_batches_identical(a: &Batch, b: &Batch, what: &str) {
    assert_eq!(a.episode_returns, b.episode_returns, "{what}: returns");
    assert_eq!(a.transitions.len(), b.transitions.len(), "{what}: length");
    for (i, (x, y)) in a.transitions.iter().zip(&b.transitions).enumerate() {
        assert_eq!(x.obs, y.obs, "{what}: obs of transition {i}");
        assert_eq!(x.action, y.action, "{what}: action of transition {i}");
        assert_eq!(x.reward, y.reward, "{what}: reward of transition {i}");
        assert_eq!(x.logp, y.logp, "{what}: logp of transition {i}");
        assert_eq!(x.value, y.value, "{what}: value of transition {i}");
        assert_eq!(x.done, y.done, "{what}: done of transition {i}");
    }
}

/// A seeded plan across three distinct passes and all three fault kinds:
/// every faulted apply must restore the exact verified pre-pass module.
#[test]
fn seeded_faults_roll_back_to_verified_prepass_modules() {
    let _g = fault::test_guard();
    fault::quiet_panic_hook();
    // Any-context specs (episodes = 0): nth ∈ 1..=3 per pass, kinds
    // cycling Panic / CorruptIr / ExhaustFuel — all from one seed.
    let plan = fault::install_plan(FaultPlan::seeded(0xC0FFEE, &[38, 25, 31], 0));
    assert_eq!(plan.specs().len(), 3);
    let program = programs().remove(0);

    for spec in plan.specs() {
        // Default config: action index == Table-1 pass id.
        let mut env = PhaseOrderEnv::single(program.clone(), EnvConfig::default());
        env.reset();
        // Shadow the env with unchecked applies up to the planned fault.
        let mut shadow = program.clone();
        for _ in 1..spec.nth {
            env.step(spec.pass);
            registry::apply(&mut shadow, spec.pass);
        }
        let before = print_module(&shadow);
        let r = env.step(spec.pass);
        assert_eq!(
            r.reward,
            0.0,
            "faulted {} apply #{} must score zero",
            registry::pass_name(spec.pass),
            spec.nth
        );
        assert_eq!(
            print_module(env.module()),
            before,
            "faulted {} apply #{} must roll back",
            registry::pass_name(spec.pass),
            spec.nth
        );
        verify_module(env.module()).unwrap();
    }
    assert_eq!(plan.fired(), 3, "every planned fault must have fired");
    fault::clear_plan();
}

/// A full parallel PPO run completes through always-armed faults on three
/// distinct passes, telemetry counts every isolated fault, and the shared
/// quarantine masks offenders mid-run.
#[test]
fn ppo_training_survives_injected_faults_and_quarantines_offenders() {
    let _g = fault::test_guard();
    fault::quiet_panic_hook();
    // nth=1, any episode: the first apply of each target pass faults in
    // *every* episode (until quarantined).
    const KINDS: [FaultKind; 3] = [
        FaultKind::Panic,
        FaultKind::CorruptIr,
        FaultKind::ExhaustFuel,
    ];
    let specs = [38usize, 31, 30]
        .iter()
        .zip(KINDS)
        .map(|(&pass, kind)| FaultSpec {
            pass,
            nth: 1,
            episode: None,
            kind,
        })
        .collect();
    let plan = fault::install_plan(FaultPlan::new(specs));

    telemetry::enable();
    telemetry::reset();
    let ps = programs();
    let quarantine = Arc::new(Quarantine::new(1));
    let mut envs: Vec<Box<dyn Environment + Send>> = (0..2)
        .map(|_| {
            let mut e = PhaseOrderEnv::new(ps.clone(), env_config());
            e.set_quarantine(Arc::clone(&quarantine));
            Box::new(e) as Box<dyn Environment + Send>
        })
        .collect();
    let ppo_cfg = PpoConfig {
        hidden: vec![16, 16],
        max_episode_len: EPISODE_LEN,
        ..PpoConfig::default()
    };
    let mut agent = PpoAgent::new(
        envs[0].observation_dim(),
        envs[0].num_actions(),
        &ppo_cfg,
        3,
    );
    let curve = agent.train_parallel(&mut envs, 6, 2);

    assert_eq!(curve.len(), 2, "both PPO iterations must complete");
    assert!(
        curve.iter().all(|r| r.is_finite()),
        "reward curve stayed finite: {curve:?}"
    );
    assert!(
        plan.fired() >= 3,
        "expected several faults across the run, got {}",
        plan.fired()
    );
    assert!(
        !quarantine.is_empty(),
        "threshold-1 quarantine must have masked at least one offender"
    );

    let snap = telemetry::snapshot();
    let total = |name: &str| -> u64 {
        snap.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    };
    assert!(
        total("pass_fault_total") >= plan.fired(),
        "every injected fault is counted"
    );
    assert_eq!(
        total("pass_fault_total"),
        total("rollback_total"),
        "every fault implies exactly one rollback"
    );
    telemetry::disable();
    telemetry::reset();
    fault::clear_plan();
}

/// Rollback restores more than the module: the per-function incremental
/// machinery — fingerprints, the feature decomposition, and the
/// content-addressed profile memo — must stay in lock-step with the
/// rolled-back state, or every post-fault step would be evaluated
/// against stale caches.
#[test]
fn rollback_restores_incremental_state_and_caches() {
    let _g = fault::test_guard();
    fault::quiet_panic_hook();
    let program = programs().remove(0);
    let hls = HlsConfig::default();
    // PREFIX + fault + SUFFIX fills one default-length episode head.
    const PREFIX: [usize; 4] = [38, 23, 33, 30];
    const TARGET: usize = 31;
    const SUFFIX: [usize; 3] = [44, 7, 28];

    // The full sync contract, checked after every probe point: the
    // incremental state must describe exactly the module the env holds.
    let assert_in_sync = |env: &mut PhaseOrderEnv, what: &str| {
        let m = env.module().clone();
        let inc = env
            .incremental_state()
            .expect("incremental evaluation is on by default");
        assert_eq!(inc.features(), extract(&m), "{what}: feature decomposition");
        assert_eq!(
            inc.module_fp(),
            fingerprint_module(&m),
            "{what}: module fingerprint"
        );
        for fid in m.func_ids() {
            assert_eq!(
                inc.func_fp(fid),
                Some(fingerprint_function(m.func(fid))),
                "{what}: fingerprint of function {fid:?}"
            );
        }
        m
    };

    for kind in [
        FaultKind::Panic,
        FaultKind::CorruptIr,
        FaultKind::ExhaustFuel,
    ] {
        let plan = fault::install_plan(FaultPlan::new(vec![FaultSpec {
            pass: TARGET,
            nth: 1,
            episode: None,
            kind,
        }]));
        let mut env = PhaseOrderEnv::single(program.clone(), EnvConfig::default());
        env.reset();
        for &p in &PREFIX {
            env.step(p);
        }
        let before = print_module(env.module());
        let r = env.step(TARGET);
        assert_eq!(plan.fired(), 1, "{kind:?}: the planned fault must fire");
        assert_eq!(r.reward, 0.0, "{kind:?}: faulted apply scores zero");

        let m = assert_in_sync(&mut env, "post-fault");
        assert_eq!(
            print_module(&m),
            before,
            "{kind:?}: module must roll back to the pre-pass state"
        );
        // The memoized profile of the restored state must equal a fresh,
        // cache-free profile of the very same module.
        assert_eq!(
            env.cycles(),
            apply_and_profile(&m, &[], &hls).1,
            "{kind:?}: cached cycles of the rolled-back state"
        );

        // The episode continues against the restored state exactly as if
        // the faulted apply had never been attempted.
        fault::clear_plan();
        for &p in &SUFFIX {
            env.step(p);
        }
        let end = assert_in_sync(&mut env, "end of faulted episode");
        let mut shadow = PhaseOrderEnv::single(program.clone(), EnvConfig::default());
        shadow.reset();
        for &p in PREFIX.iter().chain(&SUFFIX) {
            shadow.step(p);
        }
        assert_eq!(
            print_module(&end),
            print_module(shadow.module()),
            "{kind:?}: post-fault trajectory must match a fault-free walk"
        );
    }
}

/// Episode-scoped faults are contained: every non-targeted episode stays
/// bit-identical to the fault-free run, and the faulted batches themselves
/// are bit-identical across worker counts.
#[test]
fn non_faulted_episodes_are_bit_identical_at_any_worker_count() {
    let _g = fault::test_guard();
    fault::quiet_panic_hook();
    fault::clear_plan();
    let ps = programs();
    let n_episodes = 6usize;
    let make_env = || PhaseOrderEnv::new(ps.clone(), EnvConfig::default());
    let mut serial = make_env();
    let ppo_cfg = PpoConfig {
        hidden: vec![16, 16],
        max_episode_len: EPISODE_LEN,
        ..PpoConfig::default()
    };
    let agent = PpoAgent::new(serial.observation_dim(), serial.num_actions(), &ppo_cfg, 3);
    let clean = rollout::collect_episodes(
        &mut serial,
        &agent.policy,
        &agent.value,
        n_episodes,
        0,
        EPISODE_LEN,
        41,
    );
    assert_eq!(clean.transitions.len(), n_episodes * EPISODE_LEN);

    // Target episodes 1 and 4 at a step that provably changes the module
    // (nonzero reward in the clean run): the injected fault zeroes that
    // reward, so the targeted trajectories must demonstrably diverge.
    let target_episodes = [1u64, 4];
    let specs = target_episodes
        .iter()
        .zip([FaultKind::Panic, FaultKind::CorruptIr])
        .map(|(&ep, kind)| {
            let lo = ep as usize * EPISODE_LEN;
            let j = (lo..lo + EPISODE_LEN)
                .find(|&j| clean.transitions[j].reward != 0.0)
                .expect("clean episode has a changing step");
            let action = clean.transitions[j].action;
            let nth = (lo..=j)
                .filter(|&k| clean.transitions[k].action == action)
                .count() as u32;
            FaultSpec {
                pass: action, // default config: action index == pass id
                nth,
                episode: Some(ep),
                kind,
            }
        })
        .collect();
    let plan = fault::install_plan(FaultPlan::new(specs));

    let mut batches = Vec::new();
    for workers in [1usize, 2, 3] {
        let mut envs: Vec<Box<dyn Environment + Send>> = (0..workers)
            .map(|_| Box::new(make_env()) as Box<dyn Environment + Send>)
            .collect();
        batches.push(rollout::collect_episodes_parallel(
            &mut envs,
            &agent.policy,
            &agent.value,
            n_episodes,
            0,
            EPISODE_LEN,
            41,
        ));
    }
    assert_eq!(plan.fired(), 2 * 3, "both faults fired in each of 3 runs");
    fault::clear_plan();

    for (b, workers) in batches.iter().zip([1usize, 2, 3]).skip(1) {
        assert_batches_identical(&batches[0], b, &format!("{workers} workers vs 1"));
    }
    let faulted = &batches[0];
    for ep in 0..n_episodes as u64 {
        let range = ep as usize * EPISODE_LEN..(ep as usize + 1) * EPISODE_LEN;
        if target_episodes.contains(&ep) {
            assert_ne!(
                &faulted.transitions[range.clone()],
                &clean.transitions[range],
                "episode {ep}: the injected fault must change the trajectory"
            );
        } else {
            assert_eq!(
                faulted.episode_returns[ep as usize], clean.episode_returns[ep as usize],
                "episode {ep}: return must match the fault-free run"
            );
            assert_eq!(
                &faulted.transitions[range.clone()],
                &clean.transitions[range],
                "episode {ep}: non-faulted trajectory must be bit-identical"
            );
        }
    }
}
