# Local CI gate. Run `make ci` before pushing; it is exactly what the
# repository expects to stay green.

CARGO ?= cargo

.PHONY: ci build test clippy fmt fmt-fix bench

ci: build test clippy fmt

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

fmt:
	$(CARGO) fmt --check

fmt-fix:
	$(CARGO) fmt

bench:
	$(CARGO) run --release -p autophase-bench --bin rollout_bench
