# Local CI gate. Run `make ci` before pushing; it is exactly what the
# repository expects to stay green.

CARGO ?= cargo

.PHONY: ci build test clippy fmt fmt-fix bench telemetry chaos perf-smoke serve-smoke trace-smoke corpus-smoke durability-smoke online-smoke simd-matrix

ci: build test telemetry chaos perf-smoke serve-smoke trace-smoke corpus-smoke durability-smoke online-smoke simd-matrix clippy fmt

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings
	$(CARGO) clippy --features fault-injection --all-targets -- -D warnings
	$(CARGO) clippy -p autophase-serve --features fault-injection --all-targets -- -D warnings

fmt:
	$(CARGO) fmt --check

fmt-fix:
	$(CARGO) fmt

# The telemetry layer's own gates: instrument property/concurrency
# tests, span-nesting across the worker pool, the observational-only
# determinism suite, and the release-mode overhead guard (enabled
# apply_sequence must stay within a generous bound of disabled).
telemetry:
	$(CARGO) test -q -p autophase-telemetry
	$(CARGO) test -q -p autophase-rl --test telemetry_spans
	$(CARGO) test -q --test telemetry_determinism
	$(CARGO) test -q --release -p autophase-passes --test telemetry_overhead

# Chaos suite (DESIGN.md §4e): full PPO runs driven through seeded
# fault-injection plans — rollback, survival, episode containment, and
# quarantine. Release mode: the suite trains real agents.
chaos:
	$(CARGO) test -q --release --features fault-injection --test chaos

bench:
	$(CARGO) run --release -p autophase-bench --bin rollout_bench

# Compile-service smoke (DESIGN.md §4g): a real daemon on a real socket
# under mixed warm/cold load — zero failed requests, store hits
# observed, chaos-injected policy faults degraded to baseline, clean
# shutdown, and the persistent store surviving a restart.
serve-smoke:
	$(CARGO) test -q --release -p autophase-serve --test smoke

# Live-introspection smoke (DESIGN.md §4i): a chaos-armed daemon under
# mixed traffic, then STATS parsed over the wire (per-stage p50/p95/p99
# present and summing to end-to-end latency), TRACE returning
# well-formed trace JSONL, and the injected fault leaving a flight-dump
# artifact that names the faulting stage.
trace-smoke:
	$(CARGO) test -q --release -p autophase-serve --test trace_smoke

# Corpus smoke (DESIGN.md §4h): build a 200-program deduplicated
# corpus, verify the manifest regenerates it bit-identically, and
# replay it store-cold through a live serve daemon. Stays under a
# minute end to end.
corpus-smoke:
	$(CARGO) run --release -p autophase-bench --bin corpus_bench -- --smoke

# Durability smoke (DESIGN.md §4j): the APSTORE2 crash-recovery
# property matrix plus live-daemon self-healing tests (engine respawn,
# checkpoint armor, client retry), the disk-fault chaos suite, and a
# kill -9 restart drill with the reopen-scaling check. Under a minute.
durability-smoke:
	$(CARGO) test -q --release -p autophase-serve --test durability
	$(CARGO) test -q --release -p autophase-serve --features fault-injection --test faultfs_chaos
	$(CARGO) run --release -p autophase-bench --bin durability_bench -- --smoke

# Online-learning smoke (DESIGN.md §4l): the end-to-end learner loop on
# a live daemon (train -> publish -> auto-promote), admin-gated
# PROMOTE with A/B serving, the registry's manifest property tests, and
# the corrupt/NaN candidate armor; then online_bench measures online
# improvement on an unseen corpus plus hot-swap latency under live load
# and refreshes BENCH_online.json. Under 30 seconds end to end.
online-smoke:
	$(CARGO) test -q --release -p autophase-rl --test registry_props
	$(CARGO) test -q --release -p autophase-serve --test online
	$(CARGO) run --release -p autophase-bench --bin online_bench -- --smoke

# Incremental-evaluation perf gate (DESIGN.md §4f): the differential
# suite proves the per-function caches are bit-invisible across every
# Table-1 pass, then rollout_bench enforces the single-worker speedup
# floor and refreshes BENCH_incremental.json. gemm_bench re-checks the
# SIMD kernels bitwise and enforces the single-op GEMM floor
# (DESIGN.md §4k, ROADMAP item 2) while refreshing BENCH_gemm.json.
perf-smoke:
	$(CARGO) test -q --release -p autophase-features --test incremental_diff
	$(CARGO) run --release -p autophase-bench --bin rollout_bench -- --scale medium --telemetry jsonl --min-speedup 1.5
	$(CARGO) run --release -p autophase-bench --bin gemm_bench -- --min-speedup 4

# SIMD feature matrix (DESIGN.md §4k): the nn crate must build, test,
# and lint clean with the kernels at every width — default (`simd`),
# forced-scalar (`--no-default-features`), and the nightly `std::simd`
# backend when a nightly toolchain is installed (skipped on stable-only
# machines).
simd-matrix:
	$(CARGO) test -q -p autophase-nn
	$(CARGO) test -q -p autophase-nn --no-default-features
	$(CARGO) clippy -p autophase-nn --all-targets -- -D warnings
	$(CARGO) clippy -p autophase-nn --no-default-features --all-targets -- -D warnings
	@if rustup toolchain list 2>/dev/null | grep -q nightly; then \
		echo "nightly toolchain found: checking the std::simd backend"; \
		$(CARGO) +nightly clippy -p autophase-nn --features nightly-simd --all-targets -- -D warnings && \
		$(CARGO) +nightly test -q -p autophase-nn --features nightly-simd; \
	else \
		echo "no nightly toolchain: skipping the std::simd backend check"; \
	fi
