# Local CI gate. Run `make ci` before pushing; it is exactly what the
# repository expects to stay green.

CARGO ?= cargo

.PHONY: ci build test clippy fmt fmt-fix bench telemetry chaos

ci: build test telemetry chaos clippy fmt

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings
	$(CARGO) clippy --features fault-injection --all-targets -- -D warnings

fmt:
	$(CARGO) fmt --check

fmt-fix:
	$(CARGO) fmt

# The telemetry layer's own gates: instrument property/concurrency
# tests, span-nesting across the worker pool, the observational-only
# determinism suite, and the release-mode overhead guard (enabled
# apply_sequence must stay within a generous bound of disabled).
telemetry:
	$(CARGO) test -q -p autophase-telemetry
	$(CARGO) test -q -p autophase-rl --test telemetry_spans
	$(CARGO) test -q --test telemetry_determinism
	$(CARGO) test -q --release -p autophase-passes --test telemetry_overhead

# Chaos suite (DESIGN.md §4e): full PPO runs driven through seeded
# fault-injection plans — rollback, survival, episode containment, and
# quarantine. Release mode: the suite trains real agents.
chaos:
	$(CARGO) test -q --release --features fault-injection --test chaos

bench:
	$(CARGO) run --release -p autophase-bench --bin rollout_bench
